//! SPEX networks (Definition 3) and their tick-synchronous executor.
//!
//! A SPEX network is a DAG of transducers with one source (the input
//! transducer) and — for plain rpeq queries — one sink (the output
//! transducer; conjunctive queries, §VII, have one sink per head variable).
//! The executor realizes the paper's discipline that "at any time there is
//! only one \[document\] message in the network" (§III.2): each stream event
//! is one *tick*; within a tick every node, in topological order, consumes
//! the messages its predecessors produced and appends its output to its
//! successors' inboxes.

use crate::message::{DocEvent, Message, SymbolTable};
use crate::sink::ResultSink;
use crate::stats::EngineStats;
use crate::transducers::child::{Child, MatchLabel};
use crate::transducers::closure::Closure;
use crate::transducers::input::Input;
use crate::transducers::join::Join;
use crate::transducers::output::Output;
use crate::transducers::split::Split;
use crate::transducers::union_::Union;
use crate::transducers::var_creator::VarCreator;
use crate::transducers::var_determinant::VarDeterminant;
use crate::transducers::var_filter::VarFilter;
use crate::transducers::Transducer;
use spex_formula::{QualifierId, VarFactory};
use spex_query::Label;
use spex_xml::XmlEvent;
use std::cell::RefCell;
use std::rc::Rc;

/// The template of one network node — which transducer to instantiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// Input transducer IN (the source).
    Input,
    /// Child transducer CH(label).
    Child(Label),
    /// Closure transducer CL(label).
    Closure(Label),
    /// Following transducer FO(label) — the `following::` axis extension.
    Following(Label),
    /// Preceding transducer PR(label) — the `preceding::` axis extension;
    /// its speculative variables are minted under the qualifier id.
    Preceding(Label, QualifierId),
    /// Variable creator VC(q).
    VarCreator(QualifierId),
    /// Positive variable filter VF(q+); the pair is the id range of
    /// qualifiers nested inside this qualifier's sub-network.
    VarFilterPos(QualifierId, (u32, u32)),
    /// Negative variable filter VF(q−).
    VarFilterNeg(QualifierId),
    /// Variable determinant VD for a qualifier, with the same inner range.
    VarDeterminant(QualifierId, (u32, u32)),
    /// Split SP (two output tapes).
    Split,
    /// Join JO (two input tapes).
    Join,
    /// Union connector UN.
    Union,
    /// Output transducer OU (a sink).
    Output,
}

impl NodeSpec {
    /// Short description in the paper's notation, e.g. `CH(a)`, `VC(q0)`.
    pub fn describe(&self) -> String {
        match self {
            NodeSpec::Input => "IN".to_string(),
            NodeSpec::Child(l) => format!("CH({l})"),
            NodeSpec::Closure(l) => format!("CL({l})"),
            NodeSpec::Following(l) => format!("FO({l})"),
            NodeSpec::Preceding(l, q) => format!("PR({l},{q})"),
            NodeSpec::VarCreator(q) => format!("VC({q})"),
            NodeSpec::VarFilterPos(q, _) => format!("VF({q}+)"),
            NodeSpec::VarFilterNeg(q) => format!("VF({q}-)"),
            NodeSpec::VarDeterminant(..) => "VD".to_string(),
            NodeSpec::Split => "SP".to_string(),
            NodeSpec::Join => "JO".to_string(),
            NodeSpec::Union => "UN".to_string(),
            NodeSpec::Output => "OU".to_string(),
        }
    }
}

/// A tape: the output of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tape {
    pub(crate) node: usize,
}

impl Tape {
    /// The producing node's id (stable within one builder; used as a memo
    /// key by the multi-query compiler).
    pub fn node(&self) -> usize {
        self.node
    }
}

/// An immutable, compiled network shape: nodes in topological order plus the
/// input wiring.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    pub(crate) nodes: Vec<NodeSpec>,
    /// For each node, its input tapes (upstream node ids) in port order.
    pub(crate) inputs: Vec<Vec<usize>>,
    /// Sink node ids (one per query head).
    pub(crate) sinks: Vec<usize>,
}

impl NetworkSpec {
    /// The network degree — the number of transducers (Definition 3 /
    /// Lemma V.1: linear in the query length).
    pub fn degree(&self) -> usize {
        self.nodes.len()
    }

    /// Node descriptions in topological order (used by tests and by the
    /// CLI's `--explain`).
    pub fn describe(&self) -> Vec<String> {
        self.nodes.iter().map(NodeSpec::describe).collect()
    }

    /// Human-readable wiring, one line per node.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let ins: Vec<String> = self.inputs[i].iter().map(|u| u.to_string()).collect();
            out.push_str(&format!("{i:3}: {} <- [{}]\n", n.describe(), ins.join(", ")));
        }
        out
    }
}

/// Builder used by the compiler (the σ of the denotational semantics).
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeSpec>,
    inputs: Vec<Vec<usize>>,
    sinks: Vec<usize>,
    qualifiers: u32,
}

impl NetworkBuilder {
    /// Start an empty network with its input transducer; returns the
    /// builder and the input's output tape.
    pub fn with_input() -> (NetworkBuilder, Tape) {
        let mut b = NetworkBuilder::default();
        let t = b.add(NodeSpec::Input, &[]);
        (b, t)
    }

    /// Add a node reading from the given tapes; returns its output tape.
    pub fn add(&mut self, spec: NodeSpec, inputs: &[Tape]) -> Tape {
        let id = self.nodes.len();
        for t in inputs {
            debug_assert!(t.node < id, "nodes must be added in topological order");
        }
        self.nodes.push(spec);
        self.inputs.push(inputs.iter().map(|t| t.node).collect());
        Tape { node: id }
    }

    /// Add a single-input node in a chain.
    pub fn chain(&mut self, spec: NodeSpec, input: Tape) -> Tape {
        self.add(spec, &[input])
    }

    /// Add a split; both output tapes are the same node (consumers attach to
    /// it independently, fan-out copies messages).
    pub fn split(&mut self, input: Tape) -> (Tape, Tape) {
        let t = self.chain(NodeSpec::Split, input);
        (t, t)
    }

    /// Add a join over two tapes.
    pub fn join(&mut self, left: Tape, right: Tape) -> Tape {
        self.add(NodeSpec::Join, &[left, right])
    }

    /// Mint a fresh qualifier id.
    pub fn fresh_qualifier(&mut self) -> QualifierId {
        let q = QualifierId(self.qualifiers);
        self.qualifiers += 1;
        q
    }

    /// Number of qualifier ids minted so far (used to compute a qualifier's
    /// inner id range).
    pub fn qualifier_count(&self) -> u32 {
        self.qualifiers
    }

    /// Terminate `tape` with an output transducer (a sink).
    pub fn add_sink(&mut self, tape: Tape) -> Tape {
        let t = self.chain(NodeSpec::Output, tape);
        self.sinks.push(t.node);
        t
    }

    /// Finish building.
    pub fn finish(self) -> NetworkSpec {
        debug_assert!(!self.sinks.is_empty(), "a network needs at least one sink");
        NetworkSpec { nodes: self.nodes, inputs: self.inputs, sinks: self.sinks }
    }
}

enum NodeInstance {
    Single(Box<dyn Transducer>),
    Join(Join),
    Output(Output),
}

/// A running instantiation of a network over one stream, pushing results
/// into borrowed sinks (one per network sink).
pub struct Run<'n, 's> {
    /// Kept for lifetime anchoring and future introspection APIs.
    #[allow(dead_code)]
    spec: &'n NetworkSpec,
    nodes: Vec<NodeInstance>,
    /// Which sink (index into `sinks`) each node feeds, for output nodes.
    sink_index: Vec<usize>,
    /// inbox[node][port] — messages for the current tick.
    inbox: Vec<Vec<Vec<Message>>>,
    /// consumers[node] — (downstream node, port) pairs.
    consumers: Vec<Vec<(usize, usize)>>,
    symbols: SymbolTable,
    factory: Rc<RefCell<VarFactory>>,
    sinks: Vec<&'s mut dyn ResultSink>,
    stats: EngineStats,
    tick: u64,
    depth: usize,
    tracing: bool,
}

impl<'n, 's> Run<'n, 's> {
    /// Instantiate `spec` with one sink per network sink node.
    pub fn new(spec: &'n NetworkSpec, sinks: Vec<&'s mut dyn ResultSink>) -> Self {
        assert_eq!(
            sinks.len(),
            spec.sinks.len(),
            "network has {} sink(s), {} provided",
            spec.sinks.len(),
            sinks.len()
        );
        let mut symbols = SymbolTable::new();
        let factory = Rc::new(RefCell::new(VarFactory::new()));
        let mut nodes = Vec::with_capacity(spec.nodes.len());
        let mut sink_index = vec![usize::MAX; spec.nodes.len()];
        for (i, n) in spec.nodes.iter().enumerate() {
            let inst = match n {
                NodeSpec::Input => NodeInstance::Single(Box::new(Input::new())),
                NodeSpec::Child(l) => NodeInstance::Single(Box::new(Child::new(
                    MatchLabel::resolve(l, &mut symbols),
                ))),
                NodeSpec::Closure(l) => NodeInstance::Single(Box::new(Closure::new(
                    MatchLabel::resolve(l, &mut symbols),
                ))),
                NodeSpec::Following(l) => NodeInstance::Single(Box::new(
                    crate::transducers::following::Following::new(MatchLabel::resolve(
                        l,
                        &mut symbols,
                    )),
                )),
                NodeSpec::Preceding(l, q) => NodeInstance::Single(Box::new(
                    crate::transducers::preceding::Preceding::new(
                        MatchLabel::resolve(l, &mut symbols),
                        *q,
                        factory.clone(),
                    ),
                )),
                NodeSpec::VarCreator(q) => {
                    NodeInstance::Single(Box::new(VarCreator::new(*q, factory.clone())))
                }
                NodeSpec::VarFilterPos(q, inner) => {
                    NodeInstance::Single(Box::new(VarFilter::positive(*q, inner.0..inner.1)))
                }
                NodeSpec::VarFilterNeg(q) => {
                    NodeInstance::Single(Box::new(VarFilter::negative(*q)))
                }
                NodeSpec::VarDeterminant(q, inner) => {
                    NodeInstance::Single(Box::new(VarDeterminant::new(*q, inner.0..inner.1)))
                }
                NodeSpec::Split => NodeInstance::Single(Box::new(Split::new())),
                NodeSpec::Union => NodeInstance::Single(Box::new(Union::new())),
                NodeSpec::Join => NodeInstance::Join(Join::new()),
                NodeSpec::Output => {
                    let idx = spec
                        .sinks
                        .iter()
                        .position(|s| *s == i)
                        .expect("output node registered as sink");
                    sink_index[i] = idx;
                    NodeInstance::Output(Output::new())
                }
            };
            nodes.push(inst);
        }
        // Wire consumers: node u feeds (v, port) for each input edge of v.
        let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); spec.nodes.len()];
        for (v, ins) in spec.inputs.iter().enumerate() {
            for (port, u) in ins.iter().enumerate() {
                consumers[*u].push((v, port));
            }
        }
        let inbox = spec
            .inputs
            .iter()
            .map(|ins| vec![Vec::new(); ins.len().max(1)])
            .collect();
        Run {
            spec,
            nodes,
            sink_index,
            inbox,
            consumers,
            symbols,
            factory,
            sinks,
            stats: EngineStats::default(),
            tick: 0,
            depth: 0,
            tracing: false,
        }
    }

    /// Enable transition tracing on every node (for the golden paper-trace
    /// tests).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for n in &mut self.nodes {
            match n {
                NodeInstance::Single(t) => t.set_tracing(on),
                NodeInstance::Join(j) => j.set_tracing(on),
                NodeInstance::Output(_) => {}
            }
        }
    }

    /// Drain per-node transition traces fired since the last call, rendered
    /// in the paper's `"1,5"` style, indexed by node id.
    pub fn take_traces(&mut self) -> Vec<String> {
        self.nodes
            .iter_mut()
            .map(|n| match n {
                NodeInstance::Single(t) => {
                    crate::transducers::format_transitions(&t.take_transitions())
                }
                NodeInstance::Join(j) => {
                    crate::transducers::format_transitions(&j.take_transitions())
                }
                NodeInstance::Output(_) => String::new(),
            })
            .collect()
    }

    /// Feed one stream event through the network (one tick).
    pub fn push(&mut self, event: XmlEvent) {
        let doc = match &event {
            XmlEvent::StartDocument => DocEvent::Open {
                label: crate::message::DOC_SYMBOL,
                payload: Rc::new(event),
            },
            XmlEvent::EndDocument => DocEvent::Close {
                label: crate::message::DOC_SYMBOL,
                payload: Rc::new(event),
            },
            XmlEvent::StartElement { name, .. } => {
                let label = self.symbols.intern(name);
                DocEvent::Open { label, payload: Rc::new(event) }
            }
            XmlEvent::EndElement { name } => {
                let label = self.symbols.intern(name);
                DocEvent::Close { label, payload: Rc::new(event) }
            }
            _ => DocEvent::Item { payload: Rc::new(event) },
        };
        match &doc {
            DocEvent::Open { .. } => {
                self.depth += 1;
                self.stats.max_stream_depth = self.stats.max_stream_depth.max(self.depth);
            }
            DocEvent::Close { .. } => self.depth = self.depth.saturating_sub(1),
            DocEvent::Item { .. } => {}
        }
        self.inbox[0][0].push(Message::Doc(doc));
        self.run_tick();
        self.tick += 1;
    }

    fn run_tick(&mut self) {
        let mut outbuf: Vec<Message> = Vec::new();
        for id in 0..self.nodes.len() {
            outbuf.clear();
            match &mut self.nodes[id] {
                NodeInstance::Single(t) => {
                    let msgs = std::mem::take(&mut self.inbox[id][0]);
                    for m in msgs {
                        self.stats.messages += 1;
                        self.stats.observe_formula(m.formula_size());
                        t.step(m, &mut outbuf);
                    }
                    let (d, c) = t.stack_sizes();
                    self.stats.observe_stacks(d, c);
                }
                NodeInstance::Join(j) => {
                    let left = std::mem::take(&mut self.inbox[id][0]);
                    let right = std::mem::take(&mut self.inbox[id][1]);
                    self.stats.messages += (left.len() + right.len()) as u64;
                    j.step2(left, right, &mut outbuf);
                }
                NodeInstance::Output(_) => {
                    let msgs = std::mem::take(&mut self.inbox[id][0]);
                    let sink_idx = self.sink_index[id];
                    // Split borrow: re-borrow the node mutably inside.
                    if let NodeInstance::Output(o) = &mut self.nodes[id] {
                        for m in msgs {
                            self.stats.messages += 1;
                            self.stats.observe_formula(m.formula_size());
                            o.step(m, self.sinks[sink_idx], self.tick, &mut self.stats);
                        }
                    }
                    continue;
                }
            }
            // Fan out to consumers; the last consumer takes ownership.
            let consumers = &self.consumers[id];
            match consumers.len() {
                0 => {}
                1 => {
                    let (v, p) = consumers[0];
                    self.inbox[v][p].append(&mut outbuf);
                }
                _ => {
                    for (v, p) in &consumers[..consumers.len() - 1] {
                        self.inbox[*v][*p].extend(outbuf.iter().cloned());
                    }
                    let (v, p) = consumers[consumers.len() - 1];
                    self.inbox[v][p].append(&mut outbuf);
                }
            }
        }
    }

    /// End of stream: flush the output transducer(s) and return the
    /// collected statistics.
    pub fn finish(mut self) -> EngineStats {
        for id in 0..self.nodes.len() {
            let sink_idx = self.sink_index[id];
            if let NodeInstance::Output(o) = &mut self.nodes[id] {
                o.finish(self.sinks[sink_idx], self.tick, &mut self.stats);
            }
        }
        self.stats.ticks = self.tick;
        self.stats.vars_created = u64::from(self.factory.borrow().minted());
        self.stats
    }

    /// Statistics so far (final values come from [`Run::finish`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The current tick number (document messages pushed so far).
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FragmentCollector;

    /// Hand-build the IN → CH(a) → CH(c) → OU network of example III.1 and
    /// run the Fig. 1 stream through the executor.
    #[test]
    fn hand_built_child_chain() {
        let (mut b, t) = NetworkBuilder::with_input();
        let t = b.chain(NodeSpec::Child(Label::name("a")), t);
        let t = b.chain(NodeSpec::Child(Label::name("c")), t);
        b.add_sink(t);
        let spec = b.finish();
        assert_eq!(spec.degree(), 4);
        assert_eq!(spec.describe(), vec!["IN", "CH(a)", "CH(c)", "OU"]);

        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><a><c/></a><b/><c/></a>").unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        assert_eq!(sink.fragments(), ["<c></c>".to_string()]);
        assert_eq!(stats.results, 1);
        assert_eq!(stats.ticks, 12);
    }

    /// A hand-built split/join pair is transparent for plain streams.
    #[test]
    fn split_join_is_transparent() {
        let (mut b, t) = NetworkBuilder::with_input();
        let (t1, t2) = b.split(t);
        let t = b.join(t1, t2);
        let t = b.chain(NodeSpec::Union, t);
        let t = b.chain(NodeSpec::Child(Label::name("b")), t);
        b.add_sink(t);
        let spec = b.finish();

        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><b>x</b><c/></a>").unwrap() {
            run.push(ev);
        }
        run.finish();
        // `b` is not a child of the root (the root is `a`), so no results…
        assert!(sink.fragments().is_empty());

        // …but a `CH(a)`-prefixed network selects it.
        let (mut b2, t) = NetworkBuilder::with_input();
        let t = b2.chain(NodeSpec::Child(Label::name("a")), t);
        let (t1, t2) = b2.split(t);
        let t = b2.join(t1, t2);
        let t = b2.chain(NodeSpec::Union, t);
        let t = b2.chain(NodeSpec::Child(Label::name("b")), t);
        b2.add_sink(t);
        let spec2 = b2.finish();
        let mut sink2 = FragmentCollector::new();
        let mut run2 = Run::new(&spec2, vec![&mut sink2]);
        for ev in spex_xml::reader::parse_events("<a><b>x</b><c/></a>").unwrap() {
            run2.push(ev);
        }
        run2.finish();
        assert_eq!(sink2.fragments(), ["<b>x</b>".to_string()]);
    }

    #[test]
    fn stats_track_depth_and_messages() {
        let (mut b, t) = NetworkBuilder::with_input();
        let t = b.chain(NodeSpec::Child(Label::name("x")), t);
        b.add_sink(t);
        let spec = b.finish();
        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><b><c/></b></a>").unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        assert_eq!(stats.max_stream_depth, 4); // $, a, b, c
        assert!(stats.messages >= 8 * 3);
        assert!(stats.max_depth_stack <= 4);
    }

    #[test]
    #[should_panic(expected = "sink")]
    fn sink_count_mismatch_panics() {
        let (mut b, t) = NetworkBuilder::with_input();
        b.add_sink(t);
        let spec = b.finish();
        let _ = Run::new(&spec, vec![]);
    }
}
