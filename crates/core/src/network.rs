//! SPEX networks (Definition 3) and their tick-synchronous executor.
//!
//! A SPEX network is a DAG of transducers with one source (the input
//! transducer) and — for plain rpeq queries — one sink (the output
//! transducer; conjunctive queries, §VII, have one sink per head variable).
//! The executor realizes the paper's discipline that "at any time there is
//! only one \[document\] message in the network" (§III.2): each stream event
//! is one *tick*; within a tick every node, in topological order, consumes
//! the messages its predecessors produced and appends its output to its
//! successors' inboxes.

use crate::engine::EvalError;
use crate::limits::{LimitBreach, ResourceLimits};
use crate::message::{DocEvent, Message};
use crate::sink::{ResultSink, SinkGroup};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::stats::{EngineStats, Tap, TransducerStats};
use crate::transducers::child::{Child, MatchLabel};
use crate::transducers::closure::Closure;
use crate::transducers::input::Input;
use crate::transducers::join::Join;
use crate::transducers::output::Output;
use crate::transducers::split::Split;
use crate::transducers::union_::Union;
use crate::transducers::var_creator::VarCreator;
use crate::transducers::var_determinant::VarDeterminant;
use crate::transducers::var_filter::VarFilter;
use crate::transducers::Transducer;
use spex_formula::{QualifierId, VarFactory};
use spex_query::Label;
use spex_trace::{Histogram, Tracer, Value};
use spex_xml::{EventId, EventStore, StoredKind, XmlEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// The template of one network node — which transducer to instantiate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// Input transducer IN (the source).
    Input,
    /// Child transducer CH(label).
    Child(Label),
    /// Closure transducer CL(label).
    Closure(Label),
    /// Following transducer FO(label) — the `following::` axis extension.
    Following(Label),
    /// Preceding transducer PR(label) — the `preceding::` axis extension;
    /// its speculative variables are minted under the qualifier id.
    Preceding(Label, QualifierId),
    /// Variable creator VC(q).
    VarCreator(QualifierId),
    /// Positive variable filter VF(q+); the pair is the id range of
    /// qualifiers nested inside this qualifier's sub-network.
    VarFilterPos(QualifierId, (u32, u32)),
    /// Negative variable filter VF(q−).
    VarFilterNeg(QualifierId),
    /// Variable determinant VD for a qualifier, with the same inner range.
    VarDeterminant(QualifierId, (u32, u32)),
    /// Split SP (two output tapes).
    Split,
    /// Join JO (two input tapes).
    Join,
    /// Union connector UN.
    Union,
    /// Output transducer OU (a sink).
    Output,
}

impl NodeSpec {
    /// Short description in the paper's notation, e.g. `CH(a)`, `VC(q0)`.
    pub fn describe(&self) -> String {
        match self {
            NodeSpec::Input => "IN".to_string(),
            NodeSpec::Child(l) => format!("CH({l})"),
            NodeSpec::Closure(l) => format!("CL({l})"),
            NodeSpec::Following(l) => format!("FO({l})"),
            NodeSpec::Preceding(l, q) => format!("PR({l},{q})"),
            NodeSpec::VarCreator(q) => format!("VC({q})"),
            NodeSpec::VarFilterPos(q, _) => format!("VF({q}+)"),
            NodeSpec::VarFilterNeg(q) => format!("VF({q}-)"),
            NodeSpec::VarDeterminant(..) => "VD".to_string(),
            NodeSpec::Split => "SP".to_string(),
            NodeSpec::Join => "JO".to_string(),
            NodeSpec::Union => "UN".to_string(),
            NodeSpec::Output => "OU".to_string(),
        }
    }
}

/// A tape: the output of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tape {
    pub(crate) node: usize,
}

impl Tape {
    /// The producing node's id (stable within one builder; used as a memo
    /// key by the multi-query compiler).
    pub fn node(&self) -> usize {
        self.node
    }
}

/// An immutable, compiled network shape: nodes in topological order plus the
/// input wiring.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    pub(crate) nodes: Vec<NodeSpec>,
    /// For each node, its input tapes (upstream node ids) in port order.
    pub(crate) inputs: Vec<Vec<usize>>,
    /// Sink node ids (one per query head).
    pub(crate) sinks: Vec<usize>,
}

impl NetworkSpec {
    /// The network degree — the number of transducers (Definition 3 /
    /// Lemma V.1: linear in the query length).
    pub fn degree(&self) -> usize {
        self.nodes.len()
    }

    /// Number of sink (output transducer) nodes — the count of physical
    /// result streams a [`Run`] delivers.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Node descriptions in topological order (used by tests and by the
    /// CLI's `--explain`).
    pub fn describe(&self) -> Vec<String> {
        self.nodes.iter().map(NodeSpec::describe).collect()
    }

    /// Human-readable wiring, one line per node.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let ins: Vec<String> = self.inputs[i].iter().map(|u| u.to_string()).collect();
            out.push_str(&format!(
                "{i:3}: {} <- [{}]\n",
                n.describe(),
                ins.join(", ")
            ));
        }
        out
    }
}

/// Builder used by the compiler (the σ of the denotational semantics).
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    nodes: Vec<NodeSpec>,
    inputs: Vec<Vec<usize>>,
    sinks: Vec<usize>,
    qualifiers: u32,
}

impl NetworkBuilder {
    /// Start an empty network with its input transducer; returns the
    /// builder and the input's output tape.
    pub fn with_input() -> (NetworkBuilder, Tape) {
        let mut b = NetworkBuilder::default();
        let t = b.add(NodeSpec::Input, &[]);
        (b, t)
    }

    /// Add a node reading from the given tapes; returns its output tape.
    pub fn add(&mut self, spec: NodeSpec, inputs: &[Tape]) -> Tape {
        let id = self.nodes.len();
        for t in inputs {
            debug_assert!(t.node < id, "nodes must be added in topological order");
        }
        self.nodes.push(spec);
        self.inputs.push(inputs.iter().map(|t| t.node).collect());
        Tape { node: id }
    }

    /// Add a single-input node in a chain.
    pub fn chain(&mut self, spec: NodeSpec, input: Tape) -> Tape {
        self.add(spec, &[input])
    }

    /// Add a split; both output tapes are the same node (consumers attach to
    /// it independently, fan-out copies messages).
    pub fn split(&mut self, input: Tape) -> (Tape, Tape) {
        let t = self.chain(NodeSpec::Split, input);
        (t, t)
    }

    /// Add a join over two tapes.
    pub fn join(&mut self, left: Tape, right: Tape) -> Tape {
        self.add(NodeSpec::Join, &[left, right])
    }

    /// Mint a fresh qualifier id.
    pub fn fresh_qualifier(&mut self) -> QualifierId {
        let q = QualifierId(self.qualifiers);
        self.qualifiers += 1;
        q
    }

    /// Number of qualifier ids minted so far (used to compute a qualifier's
    /// inner id range).
    pub fn qualifier_count(&self) -> u32 {
        self.qualifiers
    }

    /// Terminate `tape` with an output transducer (a sink).
    pub fn add_sink(&mut self, tape: Tape) -> Tape {
        let t = self.chain(NodeSpec::Output, tape);
        self.sinks.push(t.node);
        t
    }

    /// Finish building.
    pub fn finish(self) -> NetworkSpec {
        debug_assert!(!self.sinks.is_empty(), "a network needs at least one sink");
        NetworkSpec {
            nodes: self.nodes,
            inputs: self.inputs,
            sinks: self.sinks,
        }
    }
}

enum NodeInstance {
    Single(Box<dyn Transducer>),
    Join(Join),
    Output(Box<Output>),
}

/// Instantiate every node of `spec`, resolving match labels against
/// `symbols`. Returns the instances plus, for output nodes, which sink slot
/// each one feeds. Shared by [`Run::new`] and [`Run::reset_session`] (the
/// latter rebuilds the instances so no per-document transducer state can
/// survive into the next document).
fn build_nodes(
    spec: &NetworkSpec,
    symbols: &mut spex_xml::SymbolTable,
    factory: &Rc<RefCell<VarFactory>>,
) -> (Vec<NodeInstance>, Vec<usize>) {
    let mut nodes = Vec::with_capacity(spec.nodes.len());
    let mut sink_index = vec![usize::MAX; spec.nodes.len()];
    for (i, n) in spec.nodes.iter().enumerate() {
        let inst = match n {
            NodeSpec::Input => NodeInstance::Single(Box::new(Input::new())),
            NodeSpec::Child(l) => {
                NodeInstance::Single(Box::new(Child::new(MatchLabel::resolve(l, symbols))))
            }
            NodeSpec::Closure(l) => {
                NodeInstance::Single(Box::new(Closure::new(MatchLabel::resolve(l, symbols))))
            }
            NodeSpec::Following(l) => NodeInstance::Single(Box::new(
                crate::transducers::following::Following::new(MatchLabel::resolve(l, symbols)),
            )),
            NodeSpec::Preceding(l, q) => {
                NodeInstance::Single(Box::new(crate::transducers::preceding::Preceding::new(
                    MatchLabel::resolve(l, symbols),
                    *q,
                    factory.clone(),
                )))
            }
            NodeSpec::VarCreator(q) => {
                NodeInstance::Single(Box::new(VarCreator::new(*q, factory.clone())))
            }
            NodeSpec::VarFilterPos(q, inner) => {
                NodeInstance::Single(Box::new(VarFilter::positive(*q, inner.0..inner.1)))
            }
            NodeSpec::VarFilterNeg(q) => NodeInstance::Single(Box::new(VarFilter::negative(*q))),
            NodeSpec::VarDeterminant(q, inner) => {
                NodeInstance::Single(Box::new(VarDeterminant::new(*q, inner.0..inner.1)))
            }
            NodeSpec::Split => NodeInstance::Single(Box::new(Split::new())),
            NodeSpec::Union => NodeInstance::Single(Box::new(Union::new())),
            NodeSpec::Join => NodeInstance::Join(Join::new()),
            NodeSpec::Output => {
                let idx = spec
                    .sinks
                    .iter()
                    .position(|s| *s == i)
                    .expect("output node registered as sink");
                sink_index[i] = idx;
                NodeInstance::Output(Box::new(Output::new()))
            }
        };
        nodes.push(inst);
    }
    (nodes, sink_index)
}

/// A running instantiation of a network over one stream, pushing results
/// into borrowed sinks (one per network sink).
pub struct Run<'n, 's> {
    spec: &'n NetworkSpec,
    nodes: Vec<NodeInstance>,
    /// Which sink (index into `sinks`) each node feeds, for output nodes.
    sink_index: Vec<usize>,
    /// inbox[node][port] — messages for the current tick.
    inbox: Vec<Vec<Vec<Message>>>,
    /// consumers[node] — (downstream node, port) pairs.
    consumers: Vec<Vec<(usize, usize)>>,
    /// The run's event arena: payload bytes live here exactly once; the
    /// network only moves [`spex_xml::EventId`] handles. Owns the symbol
    /// table (labels are interned at push time). Reset whenever no output
    /// transducer is buffering, so its high-water mark measures the bytes
    /// buffered for undetermined candidates (paper §VI).
    store: EventStore,
    factory: Rc<RefCell<VarFactory>>,
    sinks: Vec<SinkGroup<'s>>,
    stats: EngineStats,
    /// Per-node measurements, same indexing as `nodes`.
    node_stats: Vec<TransducerStats>,
    limits: ResourceLimits,
    /// The first limit breach, latched; further input is refused.
    exhausted: Option<LimitBreach>,
    tap: Option<Rc<RefCell<dyn Tap>>>,
    tick: u64,
    depth: usize,
    tracing: bool,
    /// Symbol-table size right after the query labels were resolved; session
    /// reuse truncates the table back to this baseline between documents.
    symbol_baseline: usize,
    /// Trace export handle (disabled by default; see [`Run::set_tracer`]).
    tracer: Tracer,
    /// Determination-latency histograms accumulated across
    /// [`Run::reset_session`] rebuilds, indexed like `nodes` (only output
    /// nodes ever record).
    det_latency: Vec<Histogram>,
}

impl<'n, 's> Run<'n, 's> {
    /// Instantiate `spec` with one sink per network sink node.
    pub fn new(spec: &'n NetworkSpec, sinks: Vec<&'s mut dyn ResultSink>) -> Self {
        Self::with_sink_groups(spec, sinks.into_iter().map(SinkGroup::One).collect())
    }

    /// Instantiate `spec` with one [`SinkGroup`] per network sink node — a
    /// group may fan a shared physical sink out to several logical sinks
    /// (the combiner's aliased-query delivery; see
    /// [`SinkGroup::partition`]).
    pub fn with_sink_groups(spec: &'n NetworkSpec, sinks: Vec<SinkGroup<'s>>) -> Self {
        assert_eq!(
            sinks.len(),
            spec.sinks.len(),
            "network has {} sink(s), {} provided",
            spec.sinks.len(),
            sinks.len()
        );
        let mut store = EventStore::new();
        let factory = Rc::new(RefCell::new(VarFactory::new()));
        let (nodes, sink_index) = build_nodes(spec, store.symbols_mut(), &factory);
        let symbol_baseline = store.symbols().len();
        // Wire consumers: node u feeds (v, port) for each input edge of v.
        let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); spec.nodes.len()];
        for (v, ins) in spec.inputs.iter().enumerate() {
            for (port, u) in ins.iter().enumerate() {
                consumers[*u].push((v, port));
            }
        }
        let inbox = spec
            .inputs
            .iter()
            .map(|ins| vec![Vec::new(); ins.len().max(1)])
            .collect();
        let node_stats = spec
            .nodes
            .iter()
            .enumerate()
            .map(|(node, n)| TransducerStats {
                node,
                kind: n.describe(),
                ..TransducerStats::default()
            })
            .collect();
        let det_latency = vec![Histogram::new(); spec.nodes.len()];
        Run {
            spec,
            nodes,
            sink_index,
            inbox,
            consumers,
            store,
            factory,
            sinks,
            stats: EngineStats::default(),
            node_stats,
            limits: ResourceLimits::default(),
            exhausted: None,
            tap: None,
            tick: 0,
            depth: 0,
            tracing: false,
            symbol_baseline,
            tracer: Tracer::disabled(),
            det_latency,
        }
    }

    /// Attach resource caps, checked after every tick (see
    /// [`crate::ResourceLimits`]).
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    /// Attach a live observability tap (see [`Tap`]).
    pub fn set_tap(&mut self, tap: Rc<RefCell<dyn Tap>>) {
        self.tap = Some(tap);
    }

    /// Attach a trace export handle. The engine's hot path is never
    /// instrumented per event; the tracer receives one batch of counters,
    /// gauges and histograms (per-node message counts, buffer high-water
    /// marks, determination latency) when the run finishes — see
    /// DESIGN.md §13 for the record schema.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The first limit breach, if any cap was exceeded.
    pub fn exhausted(&self) -> Option<LimitBreach> {
        self.exhausted
    }

    /// The network shape this run instantiates.
    pub fn spec(&self) -> &NetworkSpec {
        self.spec
    }

    /// Enable transition tracing on every node (for the golden paper-trace
    /// tests).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for n in &mut self.nodes {
            match n {
                NodeInstance::Single(t) => t.set_tracing(on),
                NodeInstance::Join(j) => j.set_tracing(on),
                NodeInstance::Output(_) => {}
            }
        }
    }

    /// Drain per-node transition traces fired since the last call, rendered
    /// in the paper's `"1,5"` style, indexed by node id.
    pub fn take_traces(&mut self) -> Vec<String> {
        self.nodes
            .iter_mut()
            .map(|n| match n {
                NodeInstance::Single(t) => {
                    crate::transducers::format_transitions(&t.take_transitions())
                }
                NodeInstance::Join(j) => {
                    crate::transducers::format_transitions(&j.take_transitions())
                }
                NodeInstance::Output(_) => String::new(),
            })
            .collect()
    }

    /// The run's event arena (for zero-copy producers:
    /// `reader.next_into(run.store_mut())` followed by
    /// [`Run::try_push_id`]).
    pub fn store_mut(&mut self) -> &mut EventStore {
        &mut self.store
    }

    /// Shared view of the run's event arena.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Feed one owned stream event through the network (one tick).
    ///
    /// Infallible variant of [`Run::try_push`]: once a resource limit has
    /// been breached the event is silently discarded (with no limits set —
    /// the default — nothing is ever discarded).
    pub fn push(&mut self, event: XmlEvent) {
        let _ = self.try_push(event);
    }

    /// Feed one owned stream event through the network: copies the event
    /// into the arena, then ticks via [`Run::try_push_id`]. Kept for
    /// producers that hold owned events (tests, the multi-query driver);
    /// the zero-copy path is `reader.next_into(run.store_mut())` +
    /// [`Run::try_push_id`].
    pub fn try_push(&mut self, event: XmlEvent) -> Result<(), EvalError> {
        if let Some(b) = self.exhausted {
            return Err(b.into());
        }
        let id = self.store.push_owned(&event);
        self.try_push_id(id)
    }

    /// Feed the arena event `id` through the network (one tick), then check
    /// the resource limits. On a breach the run aborts: results already
    /// determined are flushed to the sinks, undetermined buffers are
    /// released, and this and every further call return
    /// [`EvalError::ResourceExhausted`]. Statistics stay readable.
    pub fn try_push_id(&mut self, id: EventId) -> Result<(), EvalError> {
        if let Some(b) = self.exhausted {
            return Err(b.into());
        }
        if let Some(tap) = &self.tap {
            tap.borrow_mut().on_tick(self.tick, &self.store.get(id));
        }
        self.push_unchecked(id);
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(self.store.bytes_used());
        self.stats.interned_symbols = self.stats.interned_symbols.max(self.store.symbols().len());
        if let Err(b) = self.limits.check(&self.stats) {
            self.exhausted = Some(b);
            self.abort();
            return Err(b.into());
        }
        // Once no output transducer buffers any candidate event, every
        // outstanding handle is dead: recycle the arena (keeps symbols and
        // capacity). This is what bounds memory to the undetermined
        // fragments of the paper's §VI argument.
        if self.outputs_idle() {
            self.store.reset();
        }
        Ok(())
    }

    fn outputs_idle(&self) -> bool {
        self.nodes.iter().all(|n| match n {
            NodeInstance::Output(o) => o.buffered_events() == 0 && o.live_candidates() == 0,
            _ => true,
        })
    }

    fn push_unchecked(&mut self, id: EventId) {
        let rec = self.store.stored(id);
        let doc = match rec.kind {
            StoredKind::StartDocument | StoredKind::Start => DocEvent::Open {
                label: rec.sym,
                payload: id,
            },
            StoredKind::EndDocument | StoredKind::End => DocEvent::Close {
                label: rec.sym,
                payload: id,
            },
            StoredKind::Text | StoredKind::Comment | StoredKind::Pi => {
                DocEvent::Item { payload: id }
            }
        };
        match &doc {
            DocEvent::Open { .. } => {
                self.depth += 1;
                self.stats.max_stream_depth = self.stats.max_stream_depth.max(self.depth);
            }
            DocEvent::Close { .. } => self.depth = self.depth.saturating_sub(1),
            DocEvent::Item { .. } => {}
        }
        self.inbox[0][0].push(Message::Doc(doc));
        self.run_tick();
        self.tick += 1;
    }

    fn run_tick(&mut self) {
        let mut outbuf: Vec<Message> = Vec::new();
        let tap = self.tap.clone();
        for id in 0..self.nodes.len() {
            outbuf.clear();
            match &mut self.nodes[id] {
                NodeInstance::Single(t) => {
                    let msgs = std::mem::take(&mut self.inbox[id][0]);
                    for m in msgs {
                        self.stats.messages += 1;
                        self.node_stats[id].messages += 1;
                        let size = m.formula_size();
                        self.stats.observe_formula(size);
                        self.node_stats[id].max_formula_size =
                            self.node_stats[id].max_formula_size.max(size);
                        if let Some(tap) = &tap {
                            tap.borrow_mut().on_message(id, &m);
                        }
                        t.step(m, &mut outbuf);
                    }
                    let (d, c) = t.stack_sizes();
                    self.stats.observe_stacks(d, c);
                    self.node_stats[id].max_depth_stack =
                        self.node_stats[id].max_depth_stack.max(d);
                    self.node_stats[id].max_cond_stack = self.node_stats[id].max_cond_stack.max(c);
                }
                NodeInstance::Join(j) => {
                    let left = std::mem::take(&mut self.inbox[id][0]);
                    let right = std::mem::take(&mut self.inbox[id][1]);
                    self.stats.messages += (left.len() + right.len()) as u64;
                    self.node_stats[id].messages += (left.len() + right.len()) as u64;
                    if let Some(tap) = &tap {
                        for m in left.iter().chain(right.iter()) {
                            tap.borrow_mut().on_message(id, m);
                        }
                    }
                    j.step2(left, right, &mut outbuf);
                }
                NodeInstance::Output(_) => {
                    let msgs = std::mem::take(&mut self.inbox[id][0]);
                    let sink_idx = self.sink_index[id];
                    let (results_before, dropped_before) = (self.stats.results, self.stats.dropped);
                    // Split borrow: re-borrow the node mutably inside.
                    if let NodeInstance::Output(o) = &mut self.nodes[id] {
                        for m in msgs {
                            self.stats.messages += 1;
                            self.node_stats[id].messages += 1;
                            let size = m.formula_size();
                            self.stats.observe_formula(size);
                            self.node_stats[id].max_formula_size =
                                self.node_stats[id].max_formula_size.max(size);
                            if let Some(tap) = &tap {
                                tap.borrow_mut().on_message(id, &m);
                            }
                            o.step(
                                m,
                                &mut self.sinks[sink_idx],
                                self.tick,
                                &mut self.stats,
                                &self.store,
                            );
                        }
                    }
                    if let Some(tap) = &tap {
                        for _ in results_before..self.stats.results {
                            tap.borrow_mut().on_candidate_resolved(id, true, self.tick);
                        }
                        for _ in dropped_before..self.stats.dropped {
                            tap.borrow_mut().on_candidate_resolved(id, false, self.tick);
                        }
                    }
                    continue;
                }
            }
            // Fan out to consumers; the last consumer takes ownership.
            let consumers = &self.consumers[id];
            match consumers.len() {
                0 => {}
                1 => {
                    let (v, p) = consumers[0];
                    self.inbox[v][p].append(&mut outbuf);
                }
                _ => {
                    for (v, p) in &consumers[..consumers.len() - 1] {
                        self.inbox[*v][*p].extend(outbuf.iter().cloned());
                    }
                    let (v, p) = consumers[consumers.len() - 1];
                    self.inbox[v][p].append(&mut outbuf);
                }
            }
        }
    }

    /// Drain the run after a limit breach: flush already-determined results,
    /// release undetermined buffers, discard in-flight messages.
    fn abort(&mut self) {
        for id in 0..self.nodes.len() {
            let sink_idx = self.sink_index[id];
            if let NodeInstance::Output(o) = &mut self.nodes[id] {
                o.abort(
                    &mut self.sinks[sink_idx],
                    self.tick,
                    &mut self.stats,
                    &self.store,
                );
            }
        }
        for ports in &mut self.inbox {
            for p in ports {
                p.clear();
            }
        }
    }

    /// End of stream: flush the output transducer(s) and return the
    /// collected statistics.
    pub fn finish(self) -> EngineStats {
        self.finish_full().0
    }

    /// Like [`Run::finish`], also returning the per-transducer snapshots.
    pub fn finish_full(mut self) -> (EngineStats, Vec<TransducerStats>) {
        for id in 0..self.nodes.len() {
            let sink_idx = self.sink_index[id];
            if let NodeInstance::Output(o) = &mut self.nodes[id] {
                o.finish(
                    &mut self.sinks[sink_idx],
                    self.tick,
                    &mut self.stats,
                    &self.store,
                );
            }
        }
        self.stats.ticks = self.tick;
        self.stats.vars_created = u64::from(self.factory.borrow().minted());
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(self.store.peak_bytes());
        self.stats.interned_symbols = self.stats.interned_symbols.max(self.store.symbols().len());
        self.harvest_latency();
        if self.tracer.enabled() {
            self.emit_trace();
        }
        (self.stats, self.node_stats)
    }

    /// Fold the live output transducers' determination-latency histograms
    /// into the across-reset accumulators.
    fn harvest_latency(&mut self) {
        for (id, n) in self.nodes.iter().enumerate() {
            if let NodeInstance::Output(o) = n {
                self.det_latency[id].merge(o.determination_latency());
            }
        }
    }

    /// Determination-latency histograms, one `(node id, histogram)` pair per
    /// output node, including latencies accumulated across
    /// [`Run::reset_session`] rebuilds. See
    /// [`Output::determination_latency`](crate::transducers::output::Output::determination_latency)
    /// for the measure's definition.
    pub fn determination_latency(&self) -> Vec<(usize, Histogram)> {
        let mut out = Vec::new();
        for (id, n) in self.nodes.iter().enumerate() {
            if let NodeInstance::Output(o) = n {
                let mut h = self.det_latency[id].clone();
                h.merge(o.determination_latency());
                out.push((id, h));
            }
        }
        out
    }

    /// Export the end-of-run measurements as trace records (the engine
    /// section of the DESIGN.md §13 schema). Called once from
    /// [`Run::finish_full`] when a tracer is attached.
    fn emit_trace(&self) {
        let t = &self.tracer;
        t.counter("engine.ticks", self.stats.ticks);
        t.counter("engine.messages", self.stats.messages);
        t.counter("engine.results", self.stats.results);
        t.counter("engine.dropped", self.stats.dropped);
        t.counter("engine.candidates_created", self.stats.candidates_created);
        t.counter("engine.vars_created", self.stats.vars_created);
        t.gauge(
            "engine.peak_buffered_events",
            self.stats.peak_buffered_events as u64,
        );
        t.gauge(
            "engine.peak_live_candidates",
            self.stats.peak_live_candidates as u64,
        );
        t.gauge(
            "engine.peak_arena_bytes",
            self.stats.peak_arena_bytes as u64,
        );
        t.gauge(
            "engine.max_stream_depth",
            self.stats.max_stream_depth as u64,
        );
        for ns in &self.node_stats {
            t.counter_with(
                "engine.node.messages",
                ns.messages,
                &[
                    ("node", Value::U64(ns.node as u64)),
                    ("kind", Value::from(ns.kind.as_str())),
                ],
            );
        }
        // harvest_latency already folded the live outputs in; reading the
        // accumulators directly avoids double counting.
        for (id, n) in self.nodes.iter().enumerate() {
            if let NodeInstance::Output(_) = n {
                t.hist(
                    "engine.determination_latency",
                    &self.det_latency[id],
                    &[("node", Value::U64(id as u64)), ("kind", Value::from("OU"))],
                );
            }
        }
    }

    /// Reset the run for the next document of a long-lived session, keeping
    /// the compiled network, the accumulated statistics, and the arena's
    /// allocated capacity.
    ///
    /// Call at a document boundary. The reset releases everything the
    /// previous document could leak into the next one:
    ///
    /// * every transducer instance is rebuilt from the spec, so stale
    ///   candidate buffers, pending activations, and half-popped stacks
    ///   (e.g. after a truncated document) cannot survive,
    /// * in-flight inbox messages are discarded,
    /// * the arena's event bytes are recycled (the high-water mark is folded
    ///   into the stats),
    /// * interned symbols beyond the query-label baseline are forgotten, so
    ///   a session streaming documents with disjoint vocabularies cannot
    ///   grow the symbol table without bound.
    ///
    /// Accumulated statistics and the tick counter continue across the
    /// reset. A latched resource-limit breach is *not* cleared: an exhausted
    /// run stays exhausted (the session must be torn down).
    pub fn reset_session(&mut self) {
        // The rebuild below discards the output transducers (and with them
        // the per-document determination latencies) — fold them into the
        // across-reset accumulators first.
        self.harvest_latency();
        self.store.reset();
        self.store.symbols_mut().truncate(self.symbol_baseline);
        let (nodes, sink_index) = build_nodes(self.spec, self.store.symbols_mut(), &self.factory);
        self.nodes = nodes;
        self.sink_index = sink_index;
        for ports in &mut self.inbox {
            for p in ports {
                p.clear();
            }
        }
        self.depth = 0;
        if self.tracing {
            self.set_tracing(true);
        }
    }

    /// Capture the run's accumulator state as a [`Snapshot`], valid only at
    /// a quiescent document boundary (depth zero, no undetermined
    /// candidates, empty arena — the state right after
    /// [`Run::reset_session`]). At such a boundary the live transducer
    /// state equals a freshly built network's, so the snapshot carries only
    /// what `reset_session` preserves: statistics, per-node counters,
    /// determination-latency accumulators, the variable-serial high-water
    /// mark, limits, and the interned symbols. The returned snapshot has no
    /// session section; drivers attach one before encoding.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        if self.depth != 0 || !self.outputs_idle() || !self.store.is_empty() {
            return Err(SnapshotError::NotQuiescent);
        }
        // Merge live output latencies into a copy of the accumulators: this
        // is exactly what the continuing run folds in at its next
        // harvest, so checkpoint-then-restore and plain continuation agree.
        let mut det_latency = self.det_latency.clone();
        for (id, n) in self.nodes.iter().enumerate() {
            if let NodeInstance::Output(o) = n {
                det_latency[id].merge(o.determination_latency());
            }
        }
        let symbols = (0..self.store.symbols().len())
            .map(|i| self.store.symbols().name(i as u32).to_string())
            .collect();
        Ok(Snapshot {
            engine: crate::vm::Engine::Network,
            tick: self.tick,
            stats: self.stats.clone(),
            transducers: self.node_stats.clone(),
            minted: self.factory.borrow().minted(),
            det_latency,
            exhausted: self.exhausted,
            limits: self.limits,
            arena_peak: self.store.peak_bytes() as u64,
            symbols,
            arena: self.store.export_arena(),
            session: None,
        })
    }

    /// Restore a snapshot into this run. The run must be freshly built over
    /// the *same* network (same query set, same sink count); the snapshot's
    /// per-node kind list is verified against this run's nodes and its
    /// symbol list must extend this run's query-label baseline. Snapshots
    /// are engine-portable, so a VM-taken snapshot restores here and vice
    /// versa.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if self.tick != 0 || self.depth != 0 || !self.store.is_empty() {
            return Err(SnapshotError::NotQuiescent);
        }
        if snap.transducers.len() != self.node_stats.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} nodes, run has {}",
                snap.transducers.len(),
                self.node_stats.len()
            )));
        }
        for (t, mine) in snap.transducers.iter().zip(&self.node_stats) {
            if t.node != mine.node || t.kind != mine.kind {
                return Err(SnapshotError::Mismatch(format!(
                    "node {} is {} in the snapshot but {} in the run",
                    mine.node, t.kind, mine.kind
                )));
            }
        }
        if snap.det_latency.len() != self.det_latency.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} latency accumulators, run has {}",
                snap.det_latency.len(),
                self.det_latency.len()
            )));
        }
        let baseline = self.symbol_baseline;
        if snap.symbols.len() < baseline || self.store.symbols().len() != baseline {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} symbols, run baseline is {}",
                snap.symbols.len(),
                baseline
            )));
        }
        for i in 0..baseline {
            if snap.symbols[i] != self.store.symbols().name(i as u32) {
                return Err(SnapshotError::Mismatch(format!(
                    "symbol {i} is {:?} in the snapshot but {:?} in the run",
                    snap.symbols[i],
                    self.store.symbols().name(i as u32)
                )));
            }
        }
        for name in &snap.symbols[baseline..] {
            self.store.symbols_mut().intern(name);
        }
        self.tick = snap.tick;
        self.stats = snap.stats.clone();
        self.node_stats = snap.transducers.clone();
        self.det_latency = snap.det_latency.clone();
        self.exhausted = snap.exhausted;
        self.limits = snap.limits;
        self.factory.borrow_mut().restore_minted(snap.minted);
        self.store
            .restore_peak(usize::try_from(snap.arena_peak).unwrap_or(usize::MAX));
        self.store.import_arena(&snap.arena);
        Ok(())
    }

    /// Statistics so far (final values come from [`Run::finish`]).
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Per-transducer snapshots so far, indexed by node id (topological
    /// order). `sum(messages)` equals [`EngineStats::messages`].
    pub fn transducer_stats(&self) -> &[TransducerStats] {
        &self.node_stats
    }

    /// The current tick number (document messages pushed so far).
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::FragmentCollector;

    /// Hand-build the IN → CH(a) → CH(c) → OU network of example III.1 and
    /// run the Fig. 1 stream through the executor.
    #[test]
    fn hand_built_child_chain() {
        let (mut b, t) = NetworkBuilder::with_input();
        let t = b.chain(NodeSpec::Child(Label::name("a")), t);
        let t = b.chain(NodeSpec::Child(Label::name("c")), t);
        b.add_sink(t);
        let spec = b.finish();
        assert_eq!(spec.degree(), 4);
        assert_eq!(spec.describe(), vec!["IN", "CH(a)", "CH(c)", "OU"]);

        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><a><c/></a><b/><c/></a>").unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        assert_eq!(sink.fragments(), ["<c></c>".to_string()]);
        assert_eq!(stats.results, 1);
        assert_eq!(stats.ticks, 12);
    }

    /// A hand-built split/join pair is transparent for plain streams.
    #[test]
    fn split_join_is_transparent() {
        let (mut b, t) = NetworkBuilder::with_input();
        let (t1, t2) = b.split(t);
        let t = b.join(t1, t2);
        let t = b.chain(NodeSpec::Union, t);
        let t = b.chain(NodeSpec::Child(Label::name("b")), t);
        b.add_sink(t);
        let spec = b.finish();

        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><b>x</b><c/></a>").unwrap() {
            run.push(ev);
        }
        run.finish();
        // `b` is not a child of the root (the root is `a`), so no results…
        assert!(sink.fragments().is_empty());

        // …but a `CH(a)`-prefixed network selects it.
        let (mut b2, t) = NetworkBuilder::with_input();
        let t = b2.chain(NodeSpec::Child(Label::name("a")), t);
        let (t1, t2) = b2.split(t);
        let t = b2.join(t1, t2);
        let t = b2.chain(NodeSpec::Union, t);
        let t = b2.chain(NodeSpec::Child(Label::name("b")), t);
        b2.add_sink(t);
        let spec2 = b2.finish();
        let mut sink2 = FragmentCollector::new();
        let mut run2 = Run::new(&spec2, vec![&mut sink2]);
        for ev in spex_xml::reader::parse_events("<a><b>x</b><c/></a>").unwrap() {
            run2.push(ev);
        }
        run2.finish();
        assert_eq!(sink2.fragments(), ["<b>x</b>".to_string()]);
    }

    #[test]
    fn stats_track_depth_and_messages() {
        let (mut b, t) = NetworkBuilder::with_input();
        let t = b.chain(NodeSpec::Child(Label::name("x")), t);
        b.add_sink(t);
        let spec = b.finish();
        let mut sink = FragmentCollector::new();
        let mut run = Run::new(&spec, vec![&mut sink]);
        for ev in spex_xml::reader::parse_events("<a><b><c/></b></a>").unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        assert_eq!(stats.max_stream_depth, 4); // $, a, b, c
        assert!(stats.messages >= 8 * 3);
        assert!(stats.max_depth_stack <= 4);
    }

    #[test]
    fn per_transducer_messages_sum_to_global_count() {
        let net = crate::CompiledNetwork::compile(&"_*.a[b].c".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = net.run(&mut sink);
        for ev in spex_xml::reader::parse_events("<a><a><c/></a><b/><c/></a>").unwrap() {
            run.push(ev);
        }
        let per_node: u64 = run.transducer_stats().iter().map(|t| t.messages).sum();
        assert_eq!(per_node, run.stats().messages);
        // Snapshots carry the node descriptions, in topological order.
        let kinds: Vec<&str> = run
            .transducer_stats()
            .iter()
            .map(|t| t.kind.as_str())
            .collect();
        assert_eq!(kinds, net.spec().describe());
        assert_eq!(run.transducer_stats()[0].kind, "IN");
        // Every node's stacks obey the paper's per-transducer bound.
        let d = run.stats().max_stream_depth;
        for t in run.transducer_stats() {
            assert!(t.max_depth_stack <= d, "node {} ({})", t.node, t.kind);
        }
        let (stats, per) = run.finish_full();
        assert_eq!(per.iter().map(|t| t.messages).sum::<u64>(), stats.messages);
    }

    #[derive(Default)]
    struct RecordingTap {
        ticks: Vec<u64>,
        message_nodes: Vec<(u64, usize)>,
        resolved: Vec<(usize, bool, u64)>,
        current_tick: u64,
    }

    impl crate::stats::Tap for RecordingTap {
        fn on_tick(&mut self, tick: u64, _event: &spex_xml::RawEvent<'_>) {
            self.ticks.push(tick);
            self.current_tick = tick;
        }
        fn on_message(&mut self, node: usize, _msg: &Message) {
            self.message_nodes.push((self.current_tick, node));
        }
        fn on_candidate_resolved(&mut self, node: usize, accepted: bool, tick: u64) {
            self.resolved.push((node, accepted, tick));
        }
    }

    #[test]
    fn tap_fires_once_per_tick_in_dag_order() {
        let net = crate::CompiledNetwork::compile(&"_*.a[b].c".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = net.run(&mut sink);
        let tap = Rc::new(RefCell::new(RecordingTap::default()));
        run.set_tap(tap.clone());
        let events = spex_xml::reader::parse_events("<a><a><c/></a><b/><c/></a>").unwrap();
        let n_events = events.len();
        for ev in events {
            run.push(ev);
        }
        let messages = run.stats().messages;
        let sink_node = net.spec().describe().len() - 1;
        run.finish();
        let tap = tap.borrow();
        // on_tick fired exactly once per pushed event, in order.
        assert_eq!(tap.ticks, (0..n_events as u64).collect::<Vec<_>>());
        // on_message fired once per consumed message…
        assert_eq!(tap.message_nodes.len() as u64, messages);
        // …and, within each tick, in non-decreasing (topological) node
        // order.
        for w in tap.message_nodes.windows(2) {
            let ((t1, n1), (t2, n2)) = (w[0], w[1]);
            if t1 == t2 {
                assert!(n1 <= n2, "tick {t1}: node {n1} fired after {n2}");
            }
        }
        // §III.10: candidate₂ accepted, candidate₁ dropped, both at the sink.
        assert_eq!(tap.resolved.iter().filter(|(_, a, _)| *a).count(), 1);
        assert_eq!(tap.resolved.iter().filter(|(_, a, _)| !*a).count(), 1);
        assert!(tap.resolved.iter().all(|(n, _, _)| *n == sink_node));
    }

    #[test]
    fn limit_breach_drains_and_latches() {
        // `r.x` over a fan-out stream with a message cap low enough to trip
        // mid-stream: results decided before the breach were delivered.
        let net = crate::CompiledNetwork::compile(&"r.x".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = net.run(&mut sink);
        run.set_limits(crate::ResourceLimits::default().with_max_total_messages(40));
        let events =
            spex_xml::reader::parse_events("<r><x>1</x><x>2</x><x>3</x><x>4</x></r>").unwrap();
        let mut err = None;
        for ev in events {
            if let Err(e) = run.try_push(ev) {
                err = Some(e);
                break;
            }
        }
        let breach = run.exhausted().expect("cap must trip");
        assert_eq!(breach.kind, crate::LimitKind::TotalMessages);
        assert!(matches!(err, Some(EvalError::ResourceExhausted { .. })));
        // Latched: further input is refused with the same error.
        assert!(run.try_push(XmlEvent::text("late")).is_err());
        // Still queryable; finish() is safe after the drain.
        assert!(run.stats().messages > 40);
        let breach_tick = run.tick();
        let stats = run.finish();
        assert_eq!(stats.results + stats.dropped, stats.candidates_created);
        // Results decided before the breach reached the sink — delivered no
        // later than the tick the cap tripped on.
        assert!(!sink.fragments().is_empty());
        assert!(sink
            .timing
            .iter()
            .all(|(_, delivered)| *delivered <= breach_tick));
    }

    #[test]
    #[should_panic(expected = "sink")]
    fn sink_count_mismatch_panics() {
        let (mut b, t) = NetworkBuilder::with_input();
        b.add_sink(t);
        let spec = b.finish();
        let _ = Run::new(&spec, vec![]);
    }
}
