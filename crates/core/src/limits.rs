//! Resource guardrails for an evaluation run.
//!
//! §V of the paper bounds every SPEX resource by a stream or query measure:
//! stack heights by the stream depth *d*, condition formulas by *o(φ)*, the
//! output buffer by the undetermined part of the stream. [`crate::EngineStats`]
//! *measures* those quantities; [`ResourceLimits`] turns each measurement
//! into an *enforceable cap*. Limits are checked after every tick (one
//! document message through the whole network), at the exact points where
//! the statistics already observe the quantity — so a breached run overshoots
//! its cap by at most one tick's worth of allocation before it is aborted.
//!
//! A breached run is not poisoned: the output transducer emits every result
//! whose membership was already determined, releases all undetermined
//! buffers, and the run stays queryable (statistics, per-transducer
//! snapshots). Further input is refused with the same
//! [`crate::EvalError::ResourceExhausted`] error.
//!
//! ```
//! use spex_core::{CompiledNetwork, CountingSink, Evaluator, ResourceLimits};
//!
//! let net = CompiledNetwork::compile(&"_*.x".parse().unwrap());
//! let mut sink = CountingSink::new();
//! let limits = ResourceLimits::default().with_max_stream_depth(3);
//! let mut eval = Evaluator::with_limits(&net, &mut sink, limits);
//! assert!(eval.push_str("<a><b><c><d/></c></b></a>").is_err());
//! let stats = eval.finish(); // still queryable
//! assert!(stats.max_stream_depth >= 4);
//! ```

use crate::stats::EngineStats;
use std::fmt;

/// Which cap of a [`ResourceLimits`] was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Element nesting depth of the stream (the paper's *d*).
    StreamDepth,
    /// Events buffered by the output transducer for undetermined candidates.
    BufferedEvents,
    /// Bytes held by the run's event arena (payloads of the buffered
    /// events, measured rather than counted).
    BufferedBytes,
    /// Simultaneously live candidates in the output transducer.
    LiveCandidates,
    /// Size of a condition formula in an activation message (*o(φ)*).
    FormulaSize,
    /// Total messages processed across all transducers.
    TotalMessages,
}

impl LimitKind {
    /// Stable lowercase name (used by the CLI flags and JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            LimitKind::StreamDepth => "stream-depth",
            LimitKind::BufferedEvents => "buffered-events",
            LimitKind::BufferedBytes => "buffered-bytes",
            LimitKind::LiveCandidates => "live-candidates",
            LimitKind::FormulaSize => "formula-size",
            LimitKind::TotalMessages => "total-messages",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One observed limit violation: the cap and the measurement that broke it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimitBreach {
    /// The exceeded cap.
    pub kind: LimitKind,
    /// The configured cap value.
    pub limit: u64,
    /// The measured value that exceeded it.
    pub observed: u64,
}

impl fmt::Display for LimitBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource limit exceeded: {} {} > limit {}",
            self.kind, self.observed, self.limit
        )
    }
}

/// Caps on the resources an evaluation run may consume. Every field is
/// optional; the default is fully unlimited, which makes the guarded and
/// unguarded code paths byte-identical in behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Cap on the stream's element nesting depth (*d*).
    pub max_stream_depth: Option<usize>,
    /// Cap on events buffered for undetermined candidates.
    pub max_buffered_events: Option<usize>,
    /// Cap on the bytes held by the event arena (a size-based counterpart
    /// of `max_buffered_events`: long text nodes count by length, not 1).
    pub max_buffered_bytes: Option<usize>,
    /// Cap on simultaneously live output candidates.
    pub max_live_candidates: Option<usize>,
    /// Cap on the size of any condition formula.
    pub max_formula_size: Option<usize>,
    /// Cap on total messages processed across all transducers.
    pub max_total_messages: Option<u64>,
}

impl ResourceLimits {
    /// No caps at all (the default).
    pub fn unlimited() -> Self {
        ResourceLimits::default()
    }

    /// `true` when no cap is set (checking is then a no-op).
    pub fn is_unlimited(&self) -> bool {
        *self == ResourceLimits::default()
    }

    /// Cap the stream nesting depth.
    pub fn with_max_stream_depth(mut self, n: usize) -> Self {
        self.max_stream_depth = Some(n);
        self
    }

    /// Cap the output transducer's buffered events.
    pub fn with_max_buffered_events(mut self, n: usize) -> Self {
        self.max_buffered_events = Some(n);
        self
    }

    /// Cap the event arena's size in bytes.
    pub fn with_max_buffered_bytes(mut self, n: usize) -> Self {
        self.max_buffered_bytes = Some(n);
        self
    }

    /// Cap the number of live candidates.
    pub fn with_max_live_candidates(mut self, n: usize) -> Self {
        self.max_live_candidates = Some(n);
        self
    }

    /// Cap the condition formula size.
    pub fn with_max_formula_size(mut self, n: usize) -> Self {
        self.max_formula_size = Some(n);
        self
    }

    /// Cap the total message count.
    pub fn with_max_total_messages(mut self, n: u64) -> Self {
        self.max_total_messages = Some(n);
        self
    }

    /// Check the measured peaks against the caps. The peaks in
    /// [`EngineStats`] are monotone, so once a run breaches it keeps
    /// breaching — callers latch the first breach.
    pub fn check(&self, stats: &EngineStats) -> Result<(), LimitBreach> {
        fn over(kind: LimitKind, limit: Option<usize>, observed: usize) -> Result<(), LimitBreach> {
            match limit {
                Some(l) if observed > l => Err(LimitBreach {
                    kind,
                    limit: l as u64,
                    observed: observed as u64,
                }),
                _ => Ok(()),
            }
        }
        over(
            LimitKind::StreamDepth,
            self.max_stream_depth,
            stats.max_stream_depth,
        )?;
        over(
            LimitKind::BufferedEvents,
            self.max_buffered_events,
            stats.peak_buffered_events,
        )?;
        over(
            LimitKind::BufferedBytes,
            self.max_buffered_bytes,
            stats.peak_arena_bytes,
        )?;
        over(
            LimitKind::LiveCandidates,
            self.max_live_candidates,
            stats.peak_live_candidates,
        )?;
        over(
            LimitKind::FormulaSize,
            self.max_formula_size,
            stats.max_formula_size,
        )?;
        if let Some(l) = self.max_total_messages {
            if stats.messages > l {
                return Err(LimitBreach {
                    kind: LimitKind::TotalMessages,
                    limit: l,
                    observed: stats.messages,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_and_never_breaches() {
        let limits = ResourceLimits::default();
        assert!(limits.is_unlimited());
        let stats = EngineStats {
            max_stream_depth: usize::MAX,
            peak_buffered_events: usize::MAX,
            peak_live_candidates: usize::MAX,
            max_formula_size: usize::MAX,
            messages: u64::MAX,
            peak_arena_bytes: usize::MAX,
            ..EngineStats::default()
        };
        assert_eq!(limits.check(&stats), Ok(()));
    }

    #[test]
    fn each_cap_is_checked_against_its_peak() {
        let stats = EngineStats {
            max_stream_depth: 5,
            peak_buffered_events: 10,
            peak_live_candidates: 3,
            max_formula_size: 7,
            messages: 100,
            peak_arena_bytes: 4096,
            ..EngineStats::default()
        };
        let cases = [
            (
                ResourceLimits::default().with_max_stream_depth(4),
                LimitKind::StreamDepth,
                4,
                5,
            ),
            (
                ResourceLimits::default().with_max_buffered_events(9),
                LimitKind::BufferedEvents,
                9,
                10,
            ),
            (
                ResourceLimits::default().with_max_buffered_bytes(4095),
                LimitKind::BufferedBytes,
                4095,
                4096,
            ),
            (
                ResourceLimits::default().with_max_live_candidates(2),
                LimitKind::LiveCandidates,
                2,
                3,
            ),
            (
                ResourceLimits::default().with_max_formula_size(6),
                LimitKind::FormulaSize,
                6,
                7,
            ),
            (
                ResourceLimits::default().with_max_total_messages(99),
                LimitKind::TotalMessages,
                99,
                100,
            ),
        ];
        for (limits, kind, limit, observed) in cases {
            assert!(!limits.is_unlimited());
            assert_eq!(
                limits.check(&stats),
                Err(LimitBreach {
                    kind,
                    limit,
                    observed
                })
            );
        }
    }

    #[test]
    fn limits_at_the_peak_are_not_a_breach() {
        let stats = EngineStats {
            max_stream_depth: 5,
            ..EngineStats::default()
        };
        let limits = ResourceLimits::default().with_max_stream_depth(5);
        assert_eq!(limits.check(&stats), Ok(()));
    }

    #[test]
    fn breach_renders_kind_and_numbers() {
        let b = LimitBreach {
            kind: LimitKind::BufferedEvents,
            limit: 8,
            observed: 12,
        };
        assert_eq!(
            b.to_string(),
            "resource limit exceeded: buffered-events 12 > limit 8"
        );
    }
}
