//! # spex-core — the SPEX transducer network
//!
//! The primary contribution of the paper *An Evaluation of Regular Path
//! Expressions with Qualifiers against XML Streams*: a regular path
//! expression with qualifiers is translated — in time linear in the query
//! size (Lemma V.1) — into a DAG of communicating pushdown transducers, and
//! the XML stream is pushed through the network one message at a time.
//! Results are emitted progressively; a stream fragment is buffered only
//! while its membership in the result is still undetermined.
//!
//! ## Architecture
//!
//! * [`message`] — the three message kinds of Definition 2: document
//!   messages, activation messages `[f]`, and condition determination
//!   messages `{c,v}`,
//! * [`transducers`] — one module per transducer of §III, each implementing
//!   the *numbered transition tables* of the paper's figures (the numbers are
//!   recorded when tracing is on, so the example traces of Figs. 4, 5 and 13
//!   are reproduced verbatim by the test suite),
//! * [`network`] — the network DAG and its tick-synchronous executor
//!   (Definition 3; "at any time there is only one \[document\] message in the
//!   network", §III.2),
//! * [`compile`] — the denotational translation `C` of Fig. 11,
//! * [`engine`] — the user-facing [`Evaluator`] driving XML events through a
//!   compiled network,
//! * [`sink`] — result delivery (progressive fragments in document order),
//! * [`stats`] — instrumentation backing the §V complexity experiments,
//! * [`cq`] — conjunctive queries with regular path expressions (§VII),
//!   compiled to multi-sink networks via the translation `T` of Fig. 16,
//! * [`multi`] — the multi-query optimization named in the paper's
//!   conclusion: many queries share one network through common prefixes,
//! * [`vm`] — the compiled execution backend: the network lowered to a flat
//!   bytecode plan run by a small VM ([`Engine::Vm`], the default), kept
//!   byte-identical to the interpreter by a differential test rig
//!   (DESIGN.md §14).
//!
//! The repository-level DESIGN.md maps every module here to its paper
//! section (§1, the system inventory); §8 fixes the result semantics all
//! evaluators share, §9 the resource limits and per-transducer stats, §10
//! the recovery layer ([`evaluate_recovering`]), §11 the zero-copy event
//! pipeline, and §13 the trace records the engine emits when a
//! [`spex_trace::Tracer`] is attached ([`Evaluator::set_tracer`]).
//!
//! ## Quick start
//!
//! ```
//! use spex_core::evaluate_str;
//!
//! // The complete example of §III.10 of the paper: `_*.a[b].c` against the
//! // stream of Fig. 1 selects the second `c` (the `a` child of the root has
//! // a `b` child); the inner `c` is rejected because the inner `a` has none.
//! let results = evaluate_str("_*.a[b].c", "<a><a><c/></a><b/><c/></a>").unwrap();
//! assert_eq!(results, vec!["<c></c>".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod cq;
pub mod engine;
pub mod limits;
pub mod message;
pub mod multi;
pub mod network;
pub mod recover;
pub mod sink;
pub mod snapshot;
pub mod stats;
pub mod transducers;
pub mod vm;

pub use compile::{CompileError, CompiledNetwork};
pub use engine::{evaluate_events, evaluate_str, EvalError, Evaluator};
pub use limits::{LimitBreach, LimitKind, ResourceLimits};
pub use message::{DocEvent, Message, Symbol, SymbolTable};
pub use recover::{
    evaluate_recovering, evaluate_recovering_traced, evaluate_str_recovering, Quarantine,
    RecoveryOptions, RunReport, TruncationOutcome,
};
pub use sink::{
    CountingSink, FragmentCollector, FragmentFnSink, ResultMeta, ResultSink, SinkGroup,
    SpanCollector, StreamingSink,
};
pub use snapshot::{FragmentState, SessionState, Snapshot, SnapshotError};
pub use spex_xml::ScannerKind;
pub use stats::{json_escape, stats_json, EngineStats, Tap, TransducerStats};
pub use vm::{Engine, EngineRun, Plan, PlanRun};
