//! SPEX messages (Definition 2 of the paper) and label interning.
//!
//! Three kinds of messages travel through a SPEX network:
//!
//! * **document messages** `<a>` / `</a>` — the stream itself,
//! * **activation messages** `[f]` — "activate transducers with a condition
//!   formula f, i.e. make transducers return results when f becomes true",
//! * **condition determination messages** `{c,v}` — "signal the value v of a
//!   condition variable c".
//!
//! Element labels are interned to dense [`Symbol`]s at parse time (the
//! table lives in the stream layer, [`spex_xml::symbol`], and is owned by
//! the run's [`spex_xml::EventStore`]) so the label comparisons in the
//! child/closure transducers are integer compares. Event payloads live in
//! the run's append-only event arena; document messages carry a 4-byte
//! [`EventId`] handle, so fan-out through split transducers and candidate
//! buffering copy `u32`s, never text.

use spex_formula::{CondVar, Formula};
use spex_xml::EventId;
use std::fmt;

pub use spex_xml::{Symbol, SymbolTable, DOC_SYMBOL};

/// A document message as it travels through the network.
#[derive(Debug, Clone, Copy)]
pub enum DocEvent {
    /// `<l>` — an element (or `<$>`) opens. Affects tree depth.
    Open {
        /// Interned label ([`DOC_SYMBOL`] for `<$>`).
        label: Symbol,
        /// Arena handle of the original event.
        payload: EventId,
    },
    /// `</l>` — an element (or `</$>`) closes. Affects tree depth.
    Close {
        /// Interned label, matching the corresponding `Open`.
        label: Symbol,
        /// Arena handle of the original event.
        payload: EventId,
    },
    /// Depth-neutral content: text, comments, processing instructions. The
    /// paper omits these "for reasons of conciseness"; transducers forward
    /// them untouched and only the output transducer looks at them (they
    /// belong to result fragments).
    Item {
        /// Arena handle of the original event.
        payload: EventId,
    },
}

impl DocEvent {
    /// The arena handle of the underlying event (resolve it against the
    /// run's [`spex_xml::EventStore`]).
    pub fn payload(&self) -> EventId {
        match self {
            DocEvent::Open { payload, .. }
            | DocEvent::Close { payload, .. }
            | DocEvent::Item { payload } => *payload,
        }
    }

    /// The interned label for open/close messages.
    pub fn label(&self) -> Option<Symbol> {
        match self {
            DocEvent::Open { label, .. } | DocEvent::Close { label, .. } => Some(*label),
            DocEvent::Item { .. } => None,
        }
    }
}

/// The value carried by a condition determination message.
///
/// The paper's `{c,v}` messages carry `true` or `false`. Nested qualifiers
/// need a third, *conditional* form (see `transducers::var_determinant`):
/// a match of an outer qualifier's path may itself still depend on inner
/// qualifier instances, in which case the outer instance is satisfied only
/// if the residual formula `r` becomes true — the determination
/// `{c := c ∨ r}`. Substitution keeps `c` because other matches may yet
/// satisfy the instance unconditionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Determination {
    /// `{c,true}` — the instance is satisfied.
    True,
    /// `{c,false}` — the instance's scope closed unsatisfied.
    False,
    /// `{c := c ∨ r}` — satisfied if the residual `r` becomes true.
    Implied(Formula),
}

impl Determination {
    /// Apply this determination for variable `c` to a formula.
    pub fn apply(&self, c: CondVar, f: &Formula) -> Formula {
        match self {
            Determination::True => f.assign(c, true),
            Determination::False => f.assign(c, false),
            Determination::Implied(r) => f.substitute(c, &Formula::or(Formula::Var(c), r.clone())),
        }
    }
}

impl fmt::Display for Determination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Determination::True => write!(f, "true"),
            Determination::False => write!(f, "false"),
            Determination::Implied(r) => write!(f, "∨{r}"),
        }
    }
}

/// A message on a SPEX network tape (Definition 2).
#[derive(Debug, Clone)]
pub enum Message {
    /// A document message.
    Doc(DocEvent),
    /// An activation message `[f]`.
    Activate(Formula),
    /// A condition determination message `{c,v}`.
    Determine(CondVar, Determination),
}

impl Message {
    /// Is this a document message (as opposed to a control message)?
    pub fn is_doc(&self) -> bool {
        matches!(self, Message::Doc(_))
    }

    /// The formula size carried, for instrumentation (`o(φ)` of §V).
    pub fn formula_size(&self) -> usize {
        match self {
            Message::Activate(f) => f.size(),
            _ => 0,
        }
    }
}

impl fmt::Display for Message {
    /// Paper-style rendering: `[f]`, `{c,v}`. Document messages render as
    /// `<sym@id>` / `</sym@id>` — the payload text lives in the event arena,
    /// which a bare message cannot reach; use
    /// [`spex_xml::EventStore::get`] on the payload handle for the full
    /// paper notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Doc(DocEvent::Open { label, payload }) => write!(f, "<{label}{payload}>"),
            Message::Doc(DocEvent::Close { label, payload }) => write!(f, "</{label}{payload}>"),
            Message::Doc(DocEvent::Item { payload }) => write!(f, "({payload})"),
            Message::Activate(formula) => write!(f, "[{formula}]"),
            Message::Determine(c, v) => write!(f, "{{{c},{v}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_formula::Formula;
    use spex_xml::{EventStore, XmlEvent};

    #[test]
    fn symbol_table_interns_densely() {
        let mut t = SymbolTable::new();
        assert_eq!(t.name(DOC_SYMBOL), "$");
        let a = t.intern("a");
        let b = t.intern("b");
        let a2 = t.intern("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn doc_event_accessors() {
        let mut store = EventStore::new();
        let open_id = store.push_owned(&XmlEvent::open("x"));
        let open = DocEvent::Open {
            label: 3,
            payload: open_id,
        };
        assert_eq!(open.label(), Some(3));
        let text_id = store.push_owned(&XmlEvent::text("t"));
        let item = DocEvent::Item { payload: text_id };
        assert_eq!(item.label(), None);
        assert_eq!(store.get(item.payload()).to_string(), "t");
    }

    #[test]
    fn message_display_matches_paper() {
        let m = Message::Activate(Formula::True);
        assert_eq!(m.to_string(), "[true]");
        let d = Message::Determine(CondVar::new(1, 2), Determination::False);
        assert_eq!(d.to_string(), "{c1.2,false}");
        let i = Message::Determine(
            CondVar::new(1, 2),
            Determination::Implied(Formula::Var(CondVar::new(2, 3))),
        );
        assert_eq!(i.to_string(), "{c1.2,∨c2.3}");
        let mut store = EventStore::new();
        let id = store.push_owned(&XmlEvent::open("a"));
        let doc = Message::Doc(DocEvent::Open {
            label: 1,
            payload: id,
        });
        assert_eq!(doc.to_string(), "<1@0>");
        assert_eq!(store.get(id).to_string(), "<a>");
        assert!(doc.is_doc());
        assert!(!m.is_doc());
    }

    #[test]
    fn formula_size_instrumentation() {
        let f = Formula::and(
            Formula::Var(CondVar::new(0, 1)),
            Formula::Var(CondVar::new(0, 2)),
        );
        assert_eq!(Message::Activate(f).formula_size(), 2);
        assert_eq!(
            Message::Determine(CondVar::new(0, 1), Determination::True).formula_size(),
            0
        );
    }
}
