//! Conjunctive queries with regular path expressions — §VII of the paper.
//!
//! A conjunctive query has the form
//!
//! ```text
//! q(X̄) :- Y₁ r₁ Z₁, …, Yₙ rₙ Zₙ
//! ```
//!
//! where each `rᵢ` is an rpeq, the `Yᵢ`/`Zᵢ` are query variables, `Root` is
//! a special variable bound to the document root, and `X̄ ⊆ var(q)` are the
//! head variables. A SPEX network for a conjunctive query has **one sink per
//! head variable**; "a path in a conjunctive query that does not lead to a
//! head variable corresponds to a qualifier" — the translation `T` of
//! Fig. 16.
//!
//! Like the paper, this implementation supports *tree-shaped* queries: each
//! non-`Root` variable is defined (appears as a `Z`) exactly once, and every
//! atom's source variable must be defined before use. Identity joins between
//! variables reachable via distinct paths (the paper's "future work") are
//! rejected at translation time.
//!
//! ```
//! use spex_core::cq::ConjunctiveQuery;
//!
//! // q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3   — equivalent to
//! // the rpeq `_*.a[b].c` (the paper's §VII example).
//! let cq = ConjunctiveQuery::parse("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3").unwrap();
//! let results = cq.evaluate_str("<a><a><c/></a><b/><c/></a>").unwrap();
//! assert_eq!(results["X3"], vec!["<c></c>".to_string()]);
//! ```

use crate::compile::{translate, translate_qualifier};
use crate::network::{NetworkBuilder, NetworkSpec, Run, Tape};
use crate::sink::{FragmentCollector, ResultSink};
use crate::stats::EngineStats;
use spex_query::{ParseError, Rpeq};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// One atom `Y r Z`: from the bindings of `Y`, evaluate `r`, binding `Z`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Source variable (`Root` or a variable defined by an earlier atom).
    pub source: String,
    /// The regular path expression.
    pub path: Rpeq,
    /// Target variable, defined by this atom.
    pub target: String,
}

/// A conjunctive query. See the [module documentation](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Head variables, in declaration order.
    pub head: Vec<String>,
    /// Body atoms, in declaration order.
    pub atoms: Vec<Atom>,
}

/// Errors from conjunctive-query parsing or translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// Malformed query text.
    Parse(String),
    /// An embedded rpeq failed to parse.
    Rpeq(ParseError),
    /// An embedded rpeq lies outside the compilable fragment.
    Compile(crate::CompileError),
    /// The query is not tree-shaped / uses variables incorrectly.
    Shape(String),
    /// Stream error during evaluation.
    Xml(spex_xml::XmlError),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::Parse(m) => write!(f, "conjunctive query parse error: {m}"),
            CqError::Rpeq(e) => write!(f, "{e}"),
            CqError::Compile(e) => write!(f, "{e}"),
            CqError::Shape(m) => write!(f, "unsupported query shape: {m}"),
            CqError::Xml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CqError {}

impl From<ParseError> for CqError {
    fn from(e: ParseError) -> Self {
        CqError::Rpeq(e)
    }
}

impl From<spex_xml::XmlError> for CqError {
    fn from(e: spex_xml::XmlError) -> Self {
        CqError::Xml(e)
    }
}

impl From<crate::CompileError> for CqError {
    fn from(e: crate::CompileError) -> Self {
        CqError::Compile(e)
    }
}

impl ConjunctiveQuery {
    /// Parse the textual form
    /// `q(X1, X2) :- Root(rpeq) X1, X1(rpeq) X2, …`.
    pub fn parse(text: &str) -> Result<ConjunctiveQuery, CqError> {
        let (head_part, body_part) = text
            .split_once(":-")
            .ok_or_else(|| CqError::Parse("missing `:-`".into()))?;
        let head_part = head_part.trim();
        let open = head_part
            .find('(')
            .ok_or_else(|| CqError::Parse("missing head variable list".into()))?;
        let close = head_part
            .rfind(')')
            .ok_or_else(|| CqError::Parse("missing `)` in head".into()))?;
        if close < open {
            return Err(CqError::Parse("malformed head".into()));
        }
        let head: Vec<String> = head_part[open + 1..close]
            .split(',')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        if head.is_empty() {
            return Err(CqError::Parse("empty head variable list".into()));
        }

        let mut atoms = Vec::new();
        for atom_text in split_top_level_commas(body_part) {
            let atom_text = atom_text.trim();
            if atom_text.is_empty() {
                continue;
            }
            let open = atom_text
                .find('(')
                .ok_or_else(|| CqError::Parse(format!("atom `{atom_text}` missing `(`")))?;
            let close = find_matching_paren(atom_text, open)
                .ok_or_else(|| CqError::Parse(format!("atom `{atom_text}` missing `)`")))?;
            let source = atom_text[..open].trim().to_string();
            let path: Rpeq = atom_text[open + 1..close].trim().parse()?;
            let target = atom_text[close + 1..].trim().to_string();
            if source.is_empty() || target.is_empty() {
                return Err(CqError::Parse(format!(
                    "atom `{atom_text}` missing a variable"
                )));
            }
            atoms.push(Atom {
                source,
                path,
                target,
            });
        }
        if atoms.is_empty() {
            return Err(CqError::Parse("empty body".into()));
        }
        let cq = ConjunctiveQuery { head, atoms };
        cq.check_shape()?;
        Ok(cq)
    }

    /// Validate the tree-shape restrictions.
    fn check_shape(&self) -> Result<(), CqError> {
        let mut defined: HashSet<&str> = HashSet::new();
        defined.insert("Root");
        for a in &self.atoms {
            if !defined.contains(a.source.as_str()) {
                return Err(CqError::Shape(format!(
                    "variable `{}` used before being defined (atoms must be ordered; identity joins are future work)",
                    a.source
                )));
            }
            if a.target == "Root" {
                return Err(CqError::Shape("`Root` cannot be a target".into()));
            }
            if !defined.insert(a.target.as_str()) {
                return Err(CqError::Shape(format!(
                    "variable `{}` defined twice (identity joins are future work)",
                    a.target
                )));
            }
        }
        for h in &self.head {
            if !defined.contains(h.as_str()) {
                return Err(CqError::Shape(format!("head variable `{h}` is not bound")));
            }
        }
        Ok(())
    }

    /// Does variable `v` lie on a path leading to a head variable
    /// (the `reach` function of Fig. 16)?
    fn reaches_head(&self, v: &str) -> bool {
        if self.head.iter().any(|h| h == v) {
            return true;
        }
        self.atoms
            .iter()
            .filter(|a| a.source == v)
            .any(|a| self.reaches_head(&a.target))
    }

    /// Fold a non-head-reaching atom and its whole dependent subtree into a
    /// single rpeq qualifier expression: `Y(b)X2, X2(c)X3, X2(e)X5` becomes
    /// the qualifier `b[c][e]` on `Y`'s tape. (Existential semantics: the
    /// branch holds iff a witness for the entire subtree exists.)
    fn qualifier_expr(&self, atom: &Atom) -> Rpeq {
        let mut e = atom.path.clone();
        for child in self.atoms.iter().filter(|a| a.source == atom.target) {
            e = e.with_qualifier(self.qualifier_expr(child));
        }
        e
    }

    /// Translate to a multi-sink network (the function `T` of Fig. 16).
    /// Returns the network and, per sink, the head variable it collects.
    ///
    /// Realization notes (the paper "leaves out some issues" here):
    ///
    /// * every side branch — an atom whose target does not lead to a head
    ///   variable — is folded, together with its whole dependent subtree,
    ///   into one rpeq qualifier (see `qualifier_expr`),
    /// * a variable's qualifiers are applied to its tape *before* the first
    ///   main-path atom reads it, regardless of the textual atom order (the
    ///   conjunction is order-insensitive),
    /// * explicit split transducers are unnecessary: the network executor
    ///   fans a tape out to every consumer.
    pub fn compile(&self) -> Result<(NetworkSpec, Vec<String>), CqError> {
        for atom in &self.atoms {
            crate::compile::check_compilable(&atom.path)?;
            if !self.reaches_head(&atom.target) {
                // The branch becomes a qualifier, where `preceding::` is
                // not realizable (see `CompileError::PrecedingInQualifier`).
                crate::compile::check_compilable(
                    &Rpeq::Empty.with_qualifier(self.qualifier_expr(atom)),
                )?;
            }
        }
        let (mut builder, root_tape) = NetworkBuilder::with_input();
        // Environment: variable → tape.
        let mut env: HashMap<String, Tape> = HashMap::new();
        env.insert("Root".to_string(), root_tape);
        let mut sink_vars: Vec<String> = Vec::new();

        // Qualifier expressions per main-path source variable, in atom
        // order: the roots of side branches hanging off the main tree.
        let mut qualifiers_of: HashMap<&str, Vec<Rpeq>> = HashMap::new();
        for atom in &self.atoms {
            let on_main = atom.source == "Root" || self.reaches_head(&atom.source);
            if on_main && !self.reaches_head(&atom.target) {
                qualifiers_of
                    .entry(atom.source.as_str())
                    .or_default()
                    .push(self.qualifier_expr(atom));
            }
        }

        // Apply a variable's qualifiers (once) before its tape is read.
        let mut qualified: HashSet<String> = HashSet::new();
        fn ensure_qualified(
            var: &str,
            builder: &mut NetworkBuilder,
            env: &mut HashMap<String, Tape>,
            qualifiers_of: &HashMap<&str, Vec<Rpeq>>,
            qualified: &mut HashSet<String>,
        ) {
            if !qualified.insert(var.to_string()) {
                return;
            }
            if let Some(qs) = qualifiers_of.get(var) {
                let mut tape = env[var];
                for q in qs {
                    tape = translate_qualifier(q, builder, tape);
                }
                env.insert(var.to_string(), tape);
            }
        }

        for atom in self.atoms.iter().filter(|a| self.reaches_head(&a.target)) {
            if !env.contains_key(&atom.source) {
                return Err(CqError::Shape(format!("unbound `{}`", atom.source)));
            }
            ensure_qualified(
                &atom.source,
                &mut builder,
                &mut env,
                &qualifiers_of,
                &mut qualified,
            );
            let out = translate(&atom.path, &mut builder, env[&atom.source]);
            env.insert(atom.target.clone(), out);
            if self.head.contains(&atom.target) {
                ensure_qualified(
                    &atom.target,
                    &mut builder,
                    &mut env,
                    &qualifiers_of,
                    &mut qualified,
                );
                builder.add_sink(env[&atom.target]);
                sink_vars.push(atom.target.clone());
            }
        }
        if sink_vars.is_empty() {
            return Err(CqError::Shape("no head variable was reached".into()));
        }
        Ok((builder.finish(), sink_vars))
    }

    /// Evaluate against a complete XML document; returns the serialized
    /// fragments per head variable.
    pub fn evaluate_str(&self, xml: &str) -> Result<BTreeMap<String, Vec<String>>, CqError> {
        let (spec, sink_vars) = self.compile()?;
        let mut collectors: Vec<FragmentCollector> = (0..sink_vars.len())
            .map(|_| FragmentCollector::new())
            .collect();
        {
            let sinks: Vec<&mut dyn ResultSink> = collectors
                .iter_mut()
                .map(|c| c as &mut dyn ResultSink)
                .collect();
            let mut run = Run::new(&spec, sinks);
            for ev in spex_xml::Reader::from_bytes(xml.as_bytes().to_vec()) {
                run.push(ev?);
            }
            let _: EngineStats = run.finish();
        }
        Ok(sink_vars
            .into_iter()
            .zip(collectors)
            .map(|(v, c)| (v, c.into_fragments()))
            .collect())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q({}) :- ", self.head.join(", "))?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}({}) {}", a.source, a.path, a.target)?;
        }
        Ok(())
    }
}

/// Split on commas that are not inside parentheses or brackets.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn find_matching_paren(s: &str, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    #[test]
    fn paper_example_equivalent_to_rpeq() {
        // §VII: q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3  ≡  _*.a[b].c
        let cq = ConjunctiveQuery::parse("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3").unwrap();
        let results = cq.evaluate_str(FIG1).unwrap();
        assert_eq!(results["X3"], vec!["<c></c>".to_string()]);
        let rpeq_results = crate::evaluate_str("_*.a[b].c", FIG1).unwrap();
        assert_eq!(results["X3"], rpeq_results);
    }

    #[test]
    fn multiple_head_variables() {
        // Select both the a-nodes and their c-children.
        let cq = ConjunctiveQuery::parse("q(X1, X2) :- Root(_*.a) X1, X1(c) X2").unwrap();
        let results = cq.evaluate_str(FIG1).unwrap();
        assert_eq!(results["X1"].len(), 2); // both <a> elements
        assert_eq!(results["X2"].len(), 2); // both <c> elements
    }

    #[test]
    fn pure_chain_single_head() {
        let cq = ConjunctiveQuery::parse("q(X2) :- Root(a) X1, X1(c) X2").unwrap();
        let results = cq.evaluate_str(FIG1).unwrap();
        assert_eq!(results["X2"], vec!["<c></c>".to_string()]);
    }

    #[test]
    fn side_branch_becomes_qualifier() {
        // X2 is not on a head path → `[b]` qualifier semantics.
        let cq = ConjunctiveQuery::parse("q(X3) :- Root(a) X1, X1(b) X2, X1(c) X3").unwrap();
        let results = cq.evaluate_str(FIG1).unwrap();
        // Root child a has a b child, so its c child qualifies.
        assert_eq!(results["X3"], vec!["<c></c>".to_string()]);
        // Without the b — no result.
        let cq2 = ConjunctiveQuery::parse("q(X3) :- Root(a) X1, X1(nope) X2, X1(c) X3").unwrap();
        let results2 = cq2.evaluate_str(FIG1).unwrap();
        assert!(results2["X3"].is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            ConjunctiveQuery::parse("q(X1) Root(a) X1"),
            Err(CqError::Parse(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::parse("q() :- Root(a) X1"),
            Err(CqError::Parse(_))
        ));
        assert!(matches!(
            ConjunctiveQuery::parse("q(X1) :- Root(..a) X1"),
            Err(CqError::Rpeq(_))
        ));
    }

    #[test]
    fn shape_errors() {
        // Used before defined.
        assert!(matches!(
            ConjunctiveQuery::parse("q(X2) :- X1(a) X2, Root(b) X1"),
            Err(CqError::Shape(_))
        ));
        // Defined twice (identity join).
        assert!(matches!(
            ConjunctiveQuery::parse("q(X1) :- Root(a) X1, Root(b) X1"),
            Err(CqError::Shape(_))
        ));
        // Unbound head variable.
        assert!(matches!(
            ConjunctiveQuery::parse("q(X9) :- Root(a) X1"),
            Err(CqError::Shape(_))
        ));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let cq = ConjunctiveQuery::parse("q(X3) :- Root(_*.a) X1, X1(b) X2, X1(c) X3").unwrap();
        let printed = cq.to_string();
        let reparsed = ConjunctiveQuery::parse(&printed).unwrap();
        assert_eq!(cq, reparsed);
    }
}
