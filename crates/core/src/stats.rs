//! Engine instrumentation.
//!
//! §V of the paper bounds, per transducer, the depth-stack height (≤ stream
//! depth *d*), the condition-stack height (≤ *d*), the size of condition
//! formulas (*o(φ)*), and the output transducer's candidate buffer (worst
//! case linear in the stream size *s*, but only for fragments whose
//! membership is still undetermined). [`EngineStats`] records the measured
//! counterparts so the complexity experiments (E6/E7 in DESIGN.md) and the
//! bounded-memory tests on infinite streams (E11) can assert them.
//!
//! Two finer-grained observability surfaces complement the global counters:
//!
//! * [`TransducerStats`] — the same measurements broken down per network
//!   node, so a hot or stack-heavy transducer can be pinpointed (the paper
//!   states its bounds *per transducer*; this is their measured counterpart),
//! * [`Tap`] — callbacks fired by the executor as it runs, for live
//!   monitoring without waiting for the run to finish.

use crate::message::Message;
use spex_xml::RawEvent;

/// Measured resource usage of one evaluation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Document messages pushed through the network (one per tick).
    pub ticks: u64,
    /// Total messages processed across all transducers.
    pub messages: u64,
    /// Largest condition formula observed in any activation message
    /// (the paper's o(φ)).
    pub max_formula_size: usize,
    /// Largest condition stack across all transducers at any tick.
    pub max_cond_stack: usize,
    /// Largest depth stack across all transducers at any tick
    /// (bounded by the stream depth *d*).
    pub max_depth_stack: usize,
    /// Maximum element nesting depth seen in the stream (*d*).
    pub max_stream_depth: usize,
    /// Peak number of events buffered by the output transducer for
    /// undetermined candidates.
    pub peak_buffered_events: usize,
    /// Peak number of simultaneously live (undetermined or still-open)
    /// candidates in the output transducer.
    pub peak_live_candidates: usize,
    /// Result candidates ever created.
    pub candidates_created: u64,
    /// Candidates that became results.
    pub results: u64,
    /// Candidates dropped because their condition became false.
    pub dropped: u64,
    /// Condition variables (qualifier instances) minted.
    pub vars_created: u64,
    /// High-water mark of the run's event arena, in bytes (payload bytes
    /// plus the fixed per-event and per-attribute records). This is the
    /// measured counterpart of the output buffer bound of §V: the arena
    /// holds exactly the events still reachable from undetermined
    /// candidates, plus the current tick.
    pub peak_arena_bytes: usize,
    /// Distinct labels interned by the run's symbol table.
    pub interned_symbols: usize,
}

impl EngineStats {
    /// Record an observed formula size.
    pub fn observe_formula(&mut self, size: usize) {
        self.max_formula_size = self.max_formula_size.max(size);
    }

    /// Record observed stack heights of one transducer.
    pub fn observe_stacks(&mut self, depth_stack: usize, cond_stack: usize) {
        self.max_depth_stack = self.max_depth_stack.max(depth_stack);
        self.max_cond_stack = self.max_cond_stack.max(cond_stack);
    }

    /// Fold another run's statistics into this aggregate: throughput
    /// counters add up, peak/maximum measurements take the larger value.
    /// This is how `spex-serve` rolls per-session statistics into its
    /// server-wide totals.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.ticks += other.ticks;
        self.messages += other.messages;
        self.candidates_created += other.candidates_created;
        self.results += other.results;
        self.dropped += other.dropped;
        self.vars_created += other.vars_created;
        self.max_formula_size = self.max_formula_size.max(other.max_formula_size);
        self.max_cond_stack = self.max_cond_stack.max(other.max_cond_stack);
        self.max_depth_stack = self.max_depth_stack.max(other.max_depth_stack);
        self.max_stream_depth = self.max_stream_depth.max(other.max_stream_depth);
        self.peak_buffered_events = self.peak_buffered_events.max(other.peak_buffered_events);
        self.peak_live_candidates = self.peak_live_candidates.max(other.peak_live_candidates);
        self.peak_arena_bytes = self.peak_arena_bytes.max(other.peak_arena_bytes);
        self.interned_symbols = self.interned_symbols.max(other.interned_symbols);
    }
}

/// Escape `s` for inclusion in a JSON string literal (the workspace has no
/// serde dependency; every JSON producer hand-rolls through this).
pub fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Render run statistics as one line of JSON. This is *the* stats schema:
/// the one-shot CLI (`--stats-json`), the server's `STAT` frames and
/// `--stats-json` exit dump all emit exactly these bytes, so the bench
/// tooling parses every producer with one scanner. Under a recovery policy
/// a `faults` section is appended; plain runs emit no `faults` key at all.
pub fn stats_json(
    stats: &EngineStats,
    transducers: &[TransducerStats],
    report: Option<&crate::recover::RunReport>,
) -> String {
    let mut out = format!(
        "{{\"ticks\":{},\"messages\":{},\"max_formula_size\":{},\"max_cond_stack\":{},\
         \"max_depth_stack\":{},\"max_stream_depth\":{},\"peak_buffered_events\":{},\
         \"peak_live_candidates\":{},\"candidates_created\":{},\"results\":{},\
         \"dropped\":{},\"vars_created\":{},\"peak_arena_bytes\":{},\
         \"interned_symbols\":{},\"transducers\":[",
        stats.ticks,
        stats.messages,
        stats.max_formula_size,
        stats.max_cond_stack,
        stats.max_depth_stack,
        stats.max_stream_depth,
        stats.peak_buffered_events,
        stats.peak_live_candidates,
        stats.candidates_created,
        stats.results,
        stats.dropped,
        stats.vars_created,
        stats.peak_arena_bytes,
        stats.interned_symbols,
    );
    for (i, t) in transducers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"node\":{},\"kind\":\"{}\",\"messages\":{},\"max_depth_stack\":{},\
             \"max_cond_stack\":{},\"max_formula_size\":{}}}",
            t.node,
            json_escape(&t.kind),
            t.messages,
            t.max_depth_stack,
            t.max_cond_stack,
            t.max_formula_size,
        ));
    }
    out.push(']');
    if let Some(report) = report {
        out.push_str(&format!(
            ",\"faults\":{{\"total\":{},\"truncated\":{},\"delivered\":{},\"quarantined\":{},\
             \"by_kind\":{{",
            report.faults.len(),
            report.truncated,
            report.results,
            report.dropped,
        ));
        let mut first_kind = true;
        for kind in spex_xml::FaultKind::ALL {
            let n = report.fault_count(kind);
            if n == 0 {
                continue;
            }
            if !first_kind {
                out.push(',');
            }
            first_kind = false;
            out.push_str(&format!("\"{}\":{n}", kind.as_str()));
        }
        out.push('}');
        fn pos_json(label: &str, f: &spex_xml::Fault) -> String {
            format!(
                ",\"{label}\":{{\"kind\":\"{}\",\"offset\":{},\"line\":{},\"column\":{}}}",
                f.kind.as_str(),
                f.position.offset,
                f.position.line,
                f.position.column,
            )
        }
        if let (Some(first), Some(last)) = (report.faults.first(), report.faults.last()) {
            out.push_str(&pos_json("first", first));
            out.push_str(&pos_json("last", last));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Per-transducer measurements: one snapshot row per network node, in
/// topological order. The sum of `messages` over all rows equals
/// [`EngineStats::messages`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransducerStats {
    /// The node's id in the network (topological order).
    pub node: usize,
    /// The node's description in the paper's notation, e.g. `CH(a)`.
    pub kind: String,
    /// Messages this node consumed.
    pub messages: u64,
    /// Largest depth stack this node held at any tick.
    pub max_depth_stack: usize,
    /// Largest condition stack this node held at any tick.
    pub max_cond_stack: usize,
    /// Largest condition formula in any message this node consumed.
    pub max_formula_size: usize,
}

/// Live observability callbacks, keyed by transducer (node) id. Every method
/// has a no-op default, so an implementation overrides only what it needs.
/// Attach with [`crate::Evaluator::set_tap`] (or `Run::set_tap`).
pub trait Tap {
    /// A stream event is about to enter the network (once per tick). The
    /// event is a borrowed view into the run's event arena; call
    /// [`RawEvent::to_owned_event`] to keep it beyond the callback.
    fn on_tick(&mut self, _tick: u64, _event: &RawEvent<'_>) {}

    /// Node `node` is about to consume `msg`. Within one tick, nodes fire in
    /// topological (DAG) order.
    fn on_message(&mut self, _node: usize, _msg: &Message) {}

    /// The output transducer `node` decided a candidate: `accepted` is
    /// `true` for a result, `false` for a dropped candidate.
    fn on_candidate_resolved(&mut self, _node: usize, _accepted: bool, _tick: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_keep_maxima() {
        let mut s = EngineStats::default();
        s.observe_formula(3);
        s.observe_formula(1);
        assert_eq!(s.max_formula_size, 3);
        s.observe_stacks(2, 5);
        s.observe_stacks(4, 1);
        assert_eq!(s.max_depth_stack, 4);
        assert_eq!(s.max_cond_stack, 5);
    }
}
