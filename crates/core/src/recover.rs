//! Fault-tolerant evaluation: recovery policies, truncation handling and
//! the [`RunReport`] surfaced instead of a bare error.
//!
//! This is the engine half of the recovery layer (the reader half lives in
//! `spex_xml::recover`). [`evaluate_recovering`] drives a repaired event
//! stream through a compiled network while *quarantining* results whose
//! lifetime overlaps a repaired region:
//!
//! 1. The reader runs under a `Repair`/`SkipSubtree` policy and reports
//!    each fix as a [`Fault`] carrying a damage interval in event ticks.
//! 2. All result fragments are buffered (with their `[start_tick,
//!    last_delivery_tick]` lifetime) instead of being forwarded directly.
//! 3. At end of stream, fragments overlapping any damage interval are
//!    dropped; the rest are replayed into the caller's sink in order.
//!
//! Because the query language is purely structural and every repair's
//! damage interval conservatively covers the events whose tree position may
//! differ from the clean stream, the surviving fragments are — for the
//! fault classes produced by the mutators in `spex-bench` — a *subset* of
//! the clean-stream oracle results. `tests/recovery.rs` checks exactly
//! this, mutant by mutant.
//!
//! Truncation (unexpected EOF, or a failing transport mid-stream) gets a
//! dedicated knob, [`TruncationOutcome`]: candidates still undetermined
//! when the stream breaks off either drop ([`TruncationOutcome::Drop`],
//! the sound default) or resolve against the synthesized closes
//! ([`TruncationOutcome::ForceFalse`] — "the missing suffix contains
//! nothing", which can only turn qualifiers false, never fabricate them).

use crate::compile::CompiledNetwork;
use crate::engine::{EvalError, Evaluator};
use crate::limits::{LimitBreach, ResourceLimits};
use crate::sink::{ResultMeta, ResultSink};
use crate::stats::{EngineStats, TransducerStats};
use spex_xml::reader::Reader;
use spex_xml::{Fault, FaultKind, RawEvent, RecoveryPolicy, XmlEvent};
use std::io::Read;

/// How candidates still undetermined at an unexpected end of stream are
/// resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TruncationOutcome {
    /// Drop every fragment whose lifetime reaches the truncation point
    /// (the sound default: nothing is claimed about the missing suffix).
    #[default]
    Drop,
    /// Evaluate against the synthesized closes: conditions that needed the
    /// missing suffix resolve as if the stream ended there ("force false").
    /// Fragments already determined true are emitted, with their synthesized
    /// closes included.
    ForceFalse,
}

impl TruncationOutcome {
    /// Stable lowercase name (used by the CLI and in JSON output).
    pub fn as_str(&self) -> &'static str {
        match self {
            TruncationOutcome::Drop => "drop",
            TruncationOutcome::ForceFalse => "force-false",
        }
    }
}

impl std::fmt::Display for TruncationOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for TruncationOutcome {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "drop" => Ok(TruncationOutcome::Drop),
            "force-false" => Ok(TruncationOutcome::ForceFalse),
            other => Err(format!(
                "unknown truncation outcome `{other}` (expected drop or force-false)"
            )),
        }
    }
}

/// Configuration for a fault-tolerant run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryOptions {
    /// The reader-side repair policy.
    pub policy: RecoveryPolicy,
    /// What to do with fragments overlapping a truncation.
    pub on_truncation: TruncationOutcome,
    /// Treat the input as a sequence of documents (see
    /// [`spex_xml::Reader::multi_document`]).
    pub multi_document: bool,
    /// Which execution backend evaluates the repaired stream (see
    /// [`crate::Engine`]; defaults to the VM).
    pub engine: crate::Engine,
    /// Which byte-scanning strategy the reader uses (see
    /// [`spex_xml::ScannerKind`]; defaults to the SWAR fast path, with
    /// `Classic` retained as the differential oracle).
    pub scanner: spex_xml::ScannerKind,
}

/// The outcome of a fault-tolerant run: what was delivered, what was
/// repaired, and what had to be withheld.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Every fault repaired or contained by the reader, in stream order.
    pub faults: Vec<Fault>,
    /// Did the stream end prematurely (EOF / transport failure)?
    pub truncated: bool,
    /// Fragments delivered to the sink.
    pub results: u64,
    /// Fragments withheld because their lifetime overlapped a damage
    /// interval (quarantined).
    pub dropped: u64,
    /// A resource-limit breach, if the run was drained early (the report is
    /// still produced; see `ResourceLimits`).
    pub exhausted: Option<LimitBreach>,
    /// Engine statistics for the run.
    pub stats: EngineStats,
    /// Per-transducer statistics for the run.
    pub transducers: Vec<TransducerStats>,
}

impl RunReport {
    /// Count of recorded faults of `kind`.
    pub fn fault_count(&self, kind: FaultKind) -> usize {
        self.faults.iter().filter(|f| f.kind == kind).count()
    }
}

/// One buffered result fragment with its delivery lifetime.
struct BufferedFragment {
    start: u64,
    last: u64,
    delivered: u64,
    events: Vec<XmlEvent>,
}

/// Buffers all fragments until end of run so damaged ones can be withheld.
///
/// This is the quarantine half of [`evaluate_recovering`], exposed so other
/// drivers of a recovering run (the `spex-serve` sessions, which own their
/// reader loop and evaluate many queries over one stream) can reuse the
/// exact same damage-overlap logic: use one `Quarantine` as the
/// [`ResultSink`] per query, then [`Quarantine::drain_into`] the surviving
/// fragments once the reader's faults are known.
#[derive(Default)]
pub struct Quarantine {
    done: Vec<BufferedFragment>,
    current: Option<BufferedFragment>,
}

impl Quarantine {
    /// An empty quarantine buffer.
    #[must_use]
    pub fn new() -> Self {
        Quarantine::default()
    }

    /// Export the buffered fragments for a durable checkpoint.
    ///
    /// Only complete fragments are exported; checkpoints are taken at
    /// document boundaries, where no fragment is mid-delivery (`current` is
    /// `None`). The returned states round-trip through
    /// [`Quarantine::import_fragments`] so a restarted session withholds
    /// exactly the fragments the uninterrupted run would have.
    #[must_use]
    pub fn export_fragments(&self) -> Vec<crate::snapshot::FragmentState> {
        self.done
            .iter()
            .map(|f| crate::snapshot::FragmentState {
                start: f.start,
                last: f.last,
                delivered: f.delivered,
                events: f.events.clone(),
            })
            .collect()
    }

    /// Restore fragments exported by [`Quarantine::export_fragments`] into
    /// this (empty) buffer, ahead of any fragments the resumed stream
    /// produces.
    pub fn import_fragments(&mut self, frags: Vec<crate::snapshot::FragmentState>) {
        self.done
            .extend(frags.into_iter().map(|f| BufferedFragment {
                start: f.start,
                last: f.last,
                delivered: f.delivered,
                events: f.events,
            }));
    }

    /// Replay the buffered fragments into `sink` in document order,
    /// withholding every fragment whose `[start, last]` lifetime overlaps a
    /// damage interval in `faults`. With
    /// [`TruncationOutcome::ForceFalse`], truncation faults do not taint
    /// (the synthesized closes are part of the result). Returns
    /// `(delivered, dropped)` counts and leaves the buffer empty for the
    /// next document.
    pub fn drain_into(
        &mut self,
        faults: &[Fault],
        on_truncation: TruncationOutcome,
        sink: &mut dyn ResultSink,
    ) -> (u64, u64) {
        let exempt_truncation = on_truncation == TruncationOutcome::ForceFalse;
        let mut results = 0u64;
        let mut dropped = 0u64;
        self.current = None;
        for frag in self.done.drain(..) {
            let damaged = faults.iter().any(|f| {
                if exempt_truncation && f.kind == FaultKind::Truncated {
                    return false;
                }
                f.overlaps(frag.start, frag.last)
            });
            if damaged {
                dropped += 1;
                continue;
            }
            results += 1;
            sink.begin(
                ResultMeta {
                    start_tick: frag.start,
                },
                frag.delivered,
            );
            for event in &frag.events {
                sink.event(&RawEvent::from_event(event), frag.delivered);
            }
            sink.end(frag.last);
        }
        (results, dropped)
    }
}

impl ResultSink for Quarantine {
    fn begin(&mut self, meta: ResultMeta, now: u64) {
        self.current = Some(BufferedFragment {
            start: meta.start_tick,
            last: now,
            delivered: now,
            events: Vec::new(),
        });
    }

    fn event(&mut self, event: &RawEvent<'_>, now: u64) {
        if let Some(cur) = &mut self.current {
            // Quarantined fragments outlive the arena tick, so this sink is
            // the one place the engine still materializes owned events.
            cur.events.push(event.to_owned_event());
            cur.last = cur.last.max(now);
        }
    }

    fn end(&mut self, now: u64) {
        if let Some(mut cur) = self.current.take() {
            cur.last = cur.last.max(now);
            self.done.push(cur);
        }
    }
}

/// Evaluate a (possibly corrupted) XML byte stream against a compiled
/// network under a recovery policy, delivering surviving fragments to
/// `sink` and returning a [`RunReport`] instead of a bare error.
///
/// With [`RecoveryPolicy::Strict`] this behaves like a plain
/// [`Evaluator::push_reader`] run: the first input fault is returned as an
/// error. Under `Repair`/`SkipSubtree`, input faults are repaired by the
/// reader and any fragment whose lifetime overlaps a repaired region is
/// quarantined (counted in [`RunReport::dropped`], not delivered).
/// A resource-limit breach does not abort either: the run drains per PR 1's
/// accounting and the breach is reported in [`RunReport::exhausted`].
pub fn evaluate_recovering<R: Read>(
    network: &CompiledNetwork,
    input: R,
    options: RecoveryOptions,
    limits: ResourceLimits,
    sink: &mut dyn ResultSink,
) -> Result<RunReport, EvalError> {
    evaluate_recovering_traced(
        network,
        input,
        options,
        limits,
        sink,
        &spex_trace::Tracer::disabled(),
    )
}

/// [`evaluate_recovering`] with a [`spex_trace::Tracer`] attached: the
/// engine's end-of-run trace records (counters, buffer gauges and the
/// per-output determination-latency histograms) plus `xml.events` /
/// `xml.bytes` / `xml.faults` reader counters are emitted to the tracer's
/// sink. A disabled tracer makes this identical to the untraced entry point.
pub fn evaluate_recovering_traced<R: Read>(
    network: &CompiledNetwork,
    input: R,
    options: RecoveryOptions,
    limits: ResourceLimits,
    sink: &mut dyn ResultSink,
    tracer: &spex_trace::Tracer,
) -> Result<RunReport, EvalError> {
    let mut reader = Reader::new(input)
        .with_recovery(options.policy)
        .with_scanner(options.scanner);
    if options.multi_document {
        reader = reader.multi_document();
    }
    let mut quarantine = Quarantine::new();
    let mut exhausted = None;
    let (stats, transducers) = {
        let mut eval =
            Evaluator::with_engine_limits(network, &mut quarantine, options.engine, limits);
        eval.set_tracer(tracer.clone());
        // Zero-copy loop: repaired events land in the run's arena and are
        // pushed by handle, exactly like a clean `push_reader` run.
        match eval.push_from(&mut reader) {
            Ok(()) => {}
            Err(EvalError::ResourceExhausted { .. }) => {
                exhausted = eval.exhausted();
            }
            Err(e) => return Err(e),
        }
        eval.finish_full()
    };
    if tracer.enabled() {
        tracer.counter("xml.events", reader.events_emitted());
        tracer.counter("xml.bytes", reader.position().offset);
        tracer.counter("xml.faults", reader.faults().len() as u64);
    }
    let faults = reader.take_faults();
    let truncated = faults.iter().any(|f| f.kind == FaultKind::Truncated);
    let (results, dropped) = quarantine.drain_into(&faults, options.on_truncation, sink);
    Ok(RunReport {
        faults,
        truncated,
        results,
        dropped,
        exhausted,
        stats,
        transducers,
    })
}

/// Convenience wrapper: compile `query`, run [`evaluate_recovering`] over
/// `xml`, and return the surviving fragments (serialized) plus the report.
pub fn evaluate_str_recovering(
    query: &str,
    xml: &str,
    options: RecoveryOptions,
) -> Result<(Vec<String>, RunReport), EvalError> {
    let q: spex_query::Rpeq = query.parse()?;
    let network = CompiledNetwork::compile(&q);
    let mut collector = crate::sink::FragmentCollector::new();
    let report = evaluate_recovering(
        &network,
        std::io::Cursor::new(xml.as_bytes().to_vec()),
        options,
        ResourceLimits::default(),
        &mut collector,
    )?;
    Ok((collector.into_fragments(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_str;

    fn repair() -> RecoveryOptions {
        RecoveryOptions {
            policy: RecoveryPolicy::Repair,
            ..RecoveryOptions::default()
        }
    }

    #[test]
    fn clean_stream_matches_plain_evaluation() {
        let xml = "<a><a><c/></a><b/><c/></a>";
        let query = "_*.a[b].c";
        let (frags, report) = evaluate_str_recovering(query, xml, repair()).unwrap();
        assert_eq!(frags, evaluate_str(query, xml).unwrap());
        assert!(report.faults.is_empty());
        assert!(!report.truncated);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.results, 1);
    }

    #[test]
    fn strict_policy_surfaces_errors() {
        let err =
            evaluate_str_recovering("a", "<a><b></a>", RecoveryOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Xml(_)));
    }

    #[test]
    fn damaged_fragments_are_quarantined() {
        // `</b>` deleted: the close of `a` auto-closes `b`; the root's
        // fragment contains repaired events and is withheld, while the
        // clean sibling `<c/>` result survives.
        let xml = "<a><b><x/><c/></a>";
        let (frags, report) = evaluate_str_recovering("_*.c", xml, repair()).unwrap();
        // `<c/>` sits inside the damaged region (its position moved), so
        // even it is quarantined: subset-soundness over completeness.
        assert!(frags.is_empty(), "got {frags:?}");
        assert_eq!(report.dropped, 1);
        assert_eq!(report.fault_count(FaultKind::MismatchedClose), 1);
    }

    #[test]
    fn fragments_before_the_damage_survive() {
        // A stray close taints back to the *innermost open* element's start
        // (`<x>` here) — the earlier sibling subtree `<a>` closed before
        // that, so its fragment survives the quarantine.
        let xml = "<r><a><b/></a><x></nope></x></r>";
        let (frags, report) = evaluate_str_recovering("r.a", xml, repair()).unwrap();
        assert_eq!(frags, vec!["<a><b></b></a>"]);
        assert_eq!(report.fault_count(FaultKind::StrayClose), 1);
        assert_eq!(report.results, 1);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn truncation_drop_withholds_open_candidates() {
        // The stream breaks off inside `<b>`: under `Drop`, candidates
        // reaching the truncation point are withheld.
        let xml = "<a><c/><b><x/>";
        let (frags, report) = evaluate_str_recovering("a.b", xml, repair()).unwrap();
        assert!(frags.is_empty());
        assert!(report.truncated);
        assert_eq!(report.dropped, 1);
    }

    #[test]
    fn truncation_force_false_emits_repaired_fragments() {
        let xml = "<a><c/><b><x/>";
        let options = RecoveryOptions {
            policy: RecoveryPolicy::Repair,
            on_truncation: TruncationOutcome::ForceFalse,
            ..RecoveryOptions::default()
        };
        let (frags, report) = evaluate_str_recovering("a.b", xml, options).unwrap();
        // The synthesized `</b>` completes the fragment.
        assert_eq!(frags, vec!["<b><x></x></b>"]);
        assert!(report.truncated);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn completed_results_survive_a_later_truncation() {
        // `a.c` matched and closed before the stream broke: emitted under
        // both truncation outcomes.
        let xml = "<a><c><y/></c><b>";
        for outcome in [TruncationOutcome::Drop, TruncationOutcome::ForceFalse] {
            let options = RecoveryOptions {
                policy: RecoveryPolicy::Repair,
                on_truncation: outcome,
                ..RecoveryOptions::default()
            };
            let (frags, report) = evaluate_str_recovering("a.c", xml, options).unwrap();
            assert_eq!(frags, vec!["<c><y></y></c>"], "under {outcome}");
            assert!(report.truncated);
        }
    }

    #[test]
    fn resource_breach_is_reported_not_raised() {
        let xml = "<a><b><c><d><e/></d></c></b></a>";
        let q: spex_query::Rpeq = "_*.e".parse().unwrap();
        let network = CompiledNetwork::compile(&q);
        let mut collector = crate::sink::FragmentCollector::new();
        let report = evaluate_recovering(
            &network,
            std::io::Cursor::new(xml.as_bytes().to_vec()),
            repair(),
            ResourceLimits::default().with_max_stream_depth(3),
            &mut collector,
        )
        .unwrap();
        assert!(report.exhausted.is_some());
    }

    #[test]
    fn quarantine_fragments_survive_export_import() {
        let xml = "<a><b/><c/></a>";
        let q: spex_query::Rpeq = "a._".parse().unwrap();
        let network = CompiledNetwork::compile(&q);
        let mut quarantine = Quarantine::new();
        evaluate_recovering(
            &network,
            std::io::Cursor::new(xml.as_bytes().to_vec()),
            repair(),
            ResourceLimits::default(),
            &mut quarantine,
        )
        .unwrap();
        let exported = quarantine.export_fragments();
        assert_eq!(exported.len(), 2);
        let mut restored = Quarantine::new();
        restored.import_fragments(exported.clone());
        assert_eq!(restored.export_fragments(), exported);
        let mut collector = crate::sink::FragmentCollector::new();
        restored.drain_into(&[], TruncationOutcome::Drop, &mut collector);
        assert_eq!(collector.into_fragments(), vec!["<b></b>", "<c></c>"]);
    }

    #[test]
    fn truncation_outcome_round_trips_through_str() {
        for o in [TruncationOutcome::Drop, TruncationOutcome::ForceFalse] {
            assert_eq!(o.as_str().parse::<TruncationOutcome>().unwrap(), o);
        }
        assert!("bogus".parse::<TruncationOutcome>().is_err());
    }
}
