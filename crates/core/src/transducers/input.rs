//! The input transducer IN (§III.2).
//!
//! The source of every SPEX network. It "has the task of sending an
//! activation message on the start document message and of forwarding one
//! document message at a time": when `<$>` arrives it emits `[true]`
//! followed by `<$>`; every other message is forwarded unchanged. The
//! one-message-at-a-time discipline is realized by the tick-synchronous
//! network executor.

use super::{Trace, Transducer};
use crate::message::{DocEvent, Message, DOC_SYMBOL};
use spex_formula::Formula;

/// The network source. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Input {
    trace: Trace,
}

impl Input {
    /// Create an input transducer.
    pub fn new() -> Self {
        Input::default()
    }
}

impl Transducer for Input {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        if let Message::Doc(DocEvent::Open {
            label: DOC_SYMBOL, ..
        }) = &msg
        {
            self.trace.fire(1);
            out.push(Message::Activate(Formula::True));
        }
        out.push(msg);
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::test_util::fig1_stream;
    use spex_xml::EventStore;

    #[test]
    fn activation_sent_on_start_document() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let mut t = Input::new();
        let mut out = Vec::new();
        t.step(stream[0].clone(), &mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Message::Activate(f) if f.is_true()));
        assert!(matches!(
            &out[1],
            Message::Doc(DocEvent::Open { label: 0, .. })
        ));
    }

    #[test]
    fn other_messages_forwarded_verbatim() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let mut t = Input::new();
        for msg in &stream[1..] {
            let mut out = Vec::new();
            t.step(msg.clone(), &mut out);
            assert_eq!(out.len(), 1);
        }
    }
}
