//! The SPEX transducers of §III.
//!
//! Every transducer is a deterministic pushdown machine with (up to) two
//! stacks — a *depth stack* counting tree levels and a *condition stack*
//! holding condition formulas — implemented exactly as the numbered
//! transition tables of the paper's figures:
//!
//! | Transducer | Figure | Module |
//! |---|---|---|
//! | input IN | §III.2 | [`input`] |
//! | child CH(l) | Fig. 2 | [`child`] |
//! | closure CL(l) | Fig. 3 | [`closure`] |
//! | following FO(l) (extension, §I) | — | [`following`] |
//! | preceding PR(l) (extension, §I) | — | [`preceding`] |
//! | variable-creator VC(q) | Fig. 6 | [`var_creator`] |
//! | variable-filter VF(q±) | §III.5.2 | [`var_filter`] |
//! | variable-determinant VD | Fig. 7 | [`var_determinant`] |
//! | split SP | Fig. 8 | [`split`] |
//! | join JO | Fig. 9 | [`join`] |
//! | union UN | Fig. 10 | [`union_`] |
//! | output OU | §III.8 | [`output`] |
//!
//! Each `step` records the numbers of the transitions it fires (when tracing
//! is enabled), which lets the test suite reproduce the transition traces of
//! Figs. 4, 5 and 13 of the paper verbatim.

pub mod child;
pub mod closure;
pub mod following;
pub mod input;
pub mod join;
pub mod output;
pub mod preceding;
pub mod split;
pub mod union_;
pub mod var_creator;
pub mod var_determinant;
pub mod var_filter;

use crate::message::Message;

/// Transition-number trace recorder shared by all transducers.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    enabled: bool,
    fired: Vec<u8>,
}

impl Trace {
    /// Record that transition `n` fired (if tracing is on).
    pub fn fire(&mut self, n: u8) {
        if self.enabled {
            self.fired.push(n);
        }
    }

    /// Enable or disable recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Drain the recorded transition numbers.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.fired)
    }
}

/// A single-input transducer. (The two-input join and the sink output
/// transducer have their own interfaces; see [`join`] and [`output`].)
pub trait Transducer {
    /// Process one input message, appending any output messages to `out`.
    fn step(&mut self, msg: Message, out: &mut Vec<Message>);

    /// Current (depth stack, condition stack) heights, for instrumentation.
    fn stack_sizes(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Enable transition tracing.
    fn set_tracing(&mut self, on: bool);

    /// Drain the transition numbers fired since the last call.
    fn take_transitions(&mut self) -> Vec<u8>;
}

/// Render a transition trace the way the paper's figures do: `"1,5"`.
pub fn format_transitions(ts: &[u8]) -> String {
    ts.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
pub(crate) mod test_util {
    //! Helpers shared by the transducer unit tests.

    use crate::message::{DocEvent, Message};
    use spex_xml::{EventId, EventStore, StoredKind};

    /// Build the document-message sequence of the paper's Fig. 1 stream:
    /// `<$> <a> <a> <c> </c> </a> <b> </b> <c> </c> </a> </$>`.
    pub fn fig1_stream(store: &mut EventStore) -> Vec<Message> {
        stream_of(store, "<a><a><c/></a><b/><c/></a>")
    }

    /// Parse `xml` into document messages: events go into the arena, labels
    /// are interned by the store's symbol table.
    pub fn stream_of(store: &mut EventStore, xml: &str) -> Vec<Message> {
        spex_xml::reader::parse_events(xml)
            .expect("well-formed test document")
            .iter()
            .map(|ev| {
                let id = store.push_owned(ev);
                Message::Doc(doc_event(store, id))
            })
            .collect()
    }

    /// Render a message the way the paper's figures do: doc messages by
    /// their payload (`<a>`, `</a>`, text), control messages by `Display`.
    /// (The bare `Message` `Display` renders doc payloads as arena handles.)
    pub fn render(store: &EventStore, m: &Message) -> String {
        match m {
            Message::Doc(d) => store.get(d.payload()).to_string(),
            other => other.to_string(),
        }
    }

    /// Build the document message for an event already in the arena.
    pub fn doc_event(store: &EventStore, id: EventId) -> DocEvent {
        let rec = store.stored(id);
        match rec.kind {
            StoredKind::StartDocument | StoredKind::Start => DocEvent::Open {
                label: rec.sym,
                payload: id,
            },
            StoredKind::EndDocument | StoredKind::End => DocEvent::Close {
                label: rec.sym,
                payload: id,
            },
            StoredKind::Text | StoredKind::Comment | StoredKind::Pi => {
                DocEvent::Item { payload: id }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_only_when_enabled() {
        let mut t = Trace::default();
        t.fire(1);
        assert!(t.take().is_empty());
        t.set_enabled(true);
        t.fire(1);
        t.fire(5);
        assert_eq!(t.take(), vec![1, 5]);
        assert!(t.take().is_empty());
    }

    #[test]
    fn format_matches_paper_style() {
        assert_eq!(format_transitions(&[1, 5]), "1,5");
        assert_eq!(format_transitions(&[7]), "7");
        assert_eq!(format_transitions(&[]), "");
    }
}
