//! The output transducer OU — §III.8 of the paper.
//!
//! The sink of a SPEX network. "Its task is to identify and store
//! candidates, to evaluate condition formulas so as to decide whether a
//! result candidate is a result, and to output results in document order."
//!
//! A *candidate* is the range of document messages from an activated opening
//! message to its matching close. Its life cycle:
//!
//! * **created** when an activation message is followed by a document open
//!   message (the activation's formula is attached),
//! * **updated** by condition determination messages `{c,v}` — formulas are
//!   updated by substitution,
//! * **accepted** when its formula becomes `true` — the fragment is streamed
//!   to the sink as soon as every earlier candidate is decided *and
//!   completely emitted* (document order), and *progressively*: an accepted
//!   frontier candidate's content is forwarded as it arrives rather than
//!   buffered,
//! * **rejected** when its formula becomes `false` — its buffer is released
//!   immediately ("SPEX does store parts of the input data stream in memory
//!   only if their appartenence to the query result is not yet determined",
//!   §I).
//!
//! This is the only SPEX transducer needing the power of a general 2-DPDT
//! (random access to candidates and their formulas, Theorem IV.2); its
//! worst-case memory is linear in the stream size (Lemma V.2 (5)) — e.g.
//! for the nested-result query `_*._`, where the outermost fragment stays
//! open for the whole stream and everything behind it must wait its turn.
//!
//! Two auxiliary indexes keep the per-message work constant-ish:
//!
//! * `open_stack` — the currently *open* candidates (nested, so they form a
//!   stack); content routing touches only these, never the complete-but-
//!   blocked ones,
//! * `var_index` — condition variable → candidates whose formula mentions
//!   it; a determination touches only the affected candidates.

use crate::message::{Determination, DocEvent, Message};
use crate::sink::{ResultMeta, ResultSink};
use crate::stats::EngineStats;
use spex_formula::{CondVar, Formula};
use spex_trace::Histogram;
use spex_xml::{EventId, EventStore};
use std::collections::{HashMap, VecDeque};

#[derive(Debug)]
struct Candidate {
    formula: Formula,
    start_tick: u64,
    /// Number of currently open elements within the fragment; 0 once the
    /// fragment is complete.
    open_depth: usize,
    /// Buffered content not yet forwarded to the sink: 4-byte arena handles,
    /// resolved against the run's [`EventStore`] at emission time.
    buffer: Vec<EventId>,
    /// `begin` has been sent to the sink (the candidate is accepted and is
    /// the emission frontier).
    begin_sent: bool,
    rejected: bool,
    /// The formula has been decided (either way) and the determination
    /// latency recorded; guards against double-counting a candidate.
    determined: bool,
}

impl Candidate {
    fn decided_true(&self) -> bool {
        self.formula.is_true()
    }

    fn complete(&self) -> bool {
        self.open_depth == 0
    }
}

/// The output transducer. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Output {
    /// Activation formulas awaiting their opening document message.
    pending: Vec<Formula>,
    /// Candidates in creation (= document) order; the candidate with
    /// sequence id `base + i` lives at index `i`.
    candidates: VecDeque<Candidate>,
    /// Sequence id of `candidates[0]`.
    base: u64,
    /// Sequence ids of the currently open candidates, outermost first.
    open_stack: Vec<u64>,
    /// Condition variable → sequence ids of candidates mentioning it.
    var_index: HashMap<CondVar, Vec<u64>>,
    /// Current number of buffered events (for peak statistics).
    buffered: usize,
    /// Determination latency in *events*: for every candidate, the ticks
    /// elapsed between entering the buffer and its formula becoming decided
    /// (accepted or rejected) — the paper's earliness measure, exported via
    /// the trace layer (DESIGN.md §13).
    latency: Histogram,
}

impl Output {
    /// Create an output transducer.
    pub fn new() -> Self {
        Output::default()
    }

    fn candidate_mut(&mut self, id: u64) -> Option<&mut Candidate> {
        let idx = id.checked_sub(self.base)? as usize;
        self.candidates.get_mut(idx)
    }

    /// Process one message arriving at the network sink.
    pub fn step(
        &mut self,
        msg: Message,
        sink: &mut dyn ResultSink,
        now: u64,
        stats: &mut EngineStats,
        store: &EventStore,
    ) {
        static DEBUG_OU: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *DEBUG_OU.get_or_init(|| std::env::var_os("SPEX_DEBUG_OU").is_some()) {
            eprintln!("OU tick {now}: {msg}");
        }
        match msg {
            Message::Activate(f) => {
                stats.observe_formula(f.size());
                self.pending.push(f);
            }
            Message::Determine(c, v) => {
                for f in &mut self.pending {
                    *f = v.apply(c, f);
                }
                // A conditional determination `{c := c ∨ r}` keeps the
                // candidates dependent on `c` (another match may still
                // satisfy the instance) and additionally makes them depend
                // on the residual's variables.
                let conditional = matches!(v, Determination::Implied(_));
                let ids = if conditional {
                    self.var_index.get(&c).cloned().unwrap_or_default()
                } else {
                    self.var_index.remove(&c).unwrap_or_default()
                };
                let mut reindex: Vec<(CondVar, u64)> = Vec::new();
                for id in ids {
                    let base = self.base;
                    if id < base {
                        continue; // already emitted or dropped
                    }
                    let Some(cand) = self.candidate_mut(id) else {
                        continue;
                    };
                    if cand.rejected {
                        continue;
                    }
                    cand.formula = v.apply(c, &cand.formula);
                    // The determination moment: the formula just became
                    // constant. Record the earliness measure (events between
                    // buffer entry and decision) exactly once per candidate.
                    let newly_decided =
                        !cand.determined && (cand.formula.is_false() || cand.formula.is_true());
                    let lat = now.saturating_sub(cand.start_tick);
                    if newly_decided {
                        cand.determined = true;
                    }
                    if cand.formula.is_false() {
                        cand.rejected = true;
                        let released = cand.buffer.len();
                        cand.buffer.clear();
                        self.buffered -= released;
                        stats.dropped += 1;
                    } else if conditional {
                        for nv in cand.formula.vars() {
                            reindex.push((nv, id));
                        }
                    }
                    if newly_decided {
                        self.latency.record(lat);
                    }
                }
                for (nv, id) in reindex {
                    let entry = self.var_index.entry(nv).or_default();
                    if entry.last() != Some(&id) {
                        entry.push(id);
                    }
                }
                self.flush(sink, now, stats, store);
            }
            Message::Doc(doc) => {
                let payload = doc.payload();
                // Content goes to every open candidate (they form a stack).
                let is_open = matches!(doc, DocEvent::Open { .. });
                let is_close = matches!(doc, DocEvent::Close { .. });
                // A rejected front candidate may have been popped while
                // still open; drop its stale stack entry.
                let base = self.base;
                self.open_stack.retain(|id| *id >= base);
                for i in 0..self.open_stack.len() {
                    let id = self.open_stack[i];
                    let buffered = &mut self.buffered;
                    let Some(cand) = self.candidates.get_mut((id - base) as usize) else {
                        continue;
                    };
                    if is_open {
                        cand.open_depth += 1;
                    } else if is_close {
                        cand.open_depth -= 1;
                    }
                    if !cand.rejected {
                        cand.buffer.push(payload);
                        *buffered += 1;
                    }
                }
                // Only the innermost open candidate can complete at a close.
                if is_close {
                    while let Some(&last) = self.open_stack.last() {
                        let done = self
                            .candidate_mut(last)
                            .map(|c| c.complete())
                            .unwrap_or(true);
                        if done {
                            self.open_stack.pop();
                        } else {
                            break;
                        }
                    }
                }
                // A pending activation plus an opening message create a new
                // candidate.
                if is_open {
                    if !self.pending.is_empty() {
                        // The singleton pop keeps `pending`'s capacity for
                        // the next activation; `disj` of one normalized
                        // formula is that formula.
                        let formula = if self.pending.len() == 1 {
                            self.pending.pop().expect("length checked")
                        } else {
                            Formula::disj(std::mem::take(&mut self.pending))
                        };
                        if !formula.is_false() {
                            stats.candidates_created += 1;
                            let id = self.base + self.candidates.len() as u64;
                            for v in formula.vars() {
                                self.var_index.entry(v).or_default().push(id);
                            }
                            // A past condition decides the candidate at
                            // birth: zero determination latency.
                            let determined = formula.is_true();
                            if determined {
                                self.latency.record(0);
                            }
                            self.candidates.push_back(Candidate {
                                formula,
                                start_tick: now,
                                open_depth: 1,
                                buffer: vec![payload],
                                begin_sent: false,
                                rejected: false,
                                determined,
                            });
                            self.open_stack.push(id);
                            self.buffered += 1;
                        }
                    }
                } else {
                    // An activation not followed by an open message cannot
                    // denote a fragment; the compiler never produces this.
                    debug_assert!(
                        self.pending.is_empty(),
                        "activation message not followed by an opening document message"
                    );
                    self.pending.clear();
                }
                stats.peak_live_candidates = stats.peak_live_candidates.max(self.candidates.len());
                self.flush(sink, now, stats, store);
                stats.peak_buffered_events = stats.peak_buffered_events.max(self.buffered);
            }
        }
    }

    /// Emit every decidable frontier candidate, preserving document order.
    fn flush(
        &mut self,
        sink: &mut dyn ResultSink,
        now: u64,
        stats: &mut EngineStats,
        store: &EventStore,
    ) {
        while let Some(front) = self.candidates.front_mut() {
            if front.rejected {
                self.candidates.pop_front();
                self.base += 1;
                continue;
            }
            if front.decided_true() {
                if !front.begin_sent {
                    sink.begin(
                        ResultMeta {
                            start_tick: front.start_tick,
                        },
                        now,
                    );
                    front.begin_sent = true;
                }
                // Stream out whatever is buffered, resolving the handles
                // against the arena (views borrow; nothing is copied).
                for id in front.buffer.drain(..) {
                    self.buffered -= 1;
                    sink.event(&store.get(id), now);
                }
                if front.complete() {
                    sink.end(now);
                    stats.results += 1;
                    self.candidates.pop_front();
                    self.base += 1;
                    continue;
                }
            }
            // Undetermined, or accepted but still open: wait for more input.
            break;
        }
    }

    /// End of stream: every remaining variable's scope has closed, so any
    /// still-undetermined variable can never become true — resolve remaining
    /// formulas to `false` and flush. (With a complete network VC has
    /// already determined everything and this is a no-op.)
    pub fn finish(
        &mut self,
        sink: &mut dyn ResultSink,
        now: u64,
        stats: &mut EngineStats,
        store: &EventStore,
    ) {
        for cand in &mut self.candidates {
            if cand.rejected {
                continue;
            }
            for v in cand.formula.vars() {
                cand.formula = cand.formula.assign(v, false);
            }
            // End of input is itself the determination: whatever is still
            // open resolves now.
            if !cand.determined {
                cand.determined = true;
                self.latency.record(now.saturating_sub(cand.start_tick));
            }
            if cand.formula.is_false() {
                cand.rejected = true;
                self.buffered -= cand.buffer.len();
                cand.buffer.clear();
                stats.dropped += 1;
            }
        }
        self.flush(sink, now, stats, store);
        debug_assert!(
            self.candidates.is_empty(),
            "incomplete candidates at end of stream"
        );
        self.candidates.clear();
        self.open_stack.clear();
        self.var_index.clear();
        self.pending.clear();
        self.buffered = 0;
    }

    /// Abort the evaluation early (resource exhaustion): emit every result
    /// whose membership is already determined, release every undetermined
    /// buffer, and leave the transducer empty.
    ///
    /// No further input will be processed, so — exactly as at end of stream —
    /// a still-undetermined variable can never become true and resolves to
    /// `false`. Fragments cut off mid-flight by the abort are delivered
    /// truncated only if they had already begun streaming (the sink's
    /// `begin` cannot be unsent); otherwise they are dropped.
    pub fn abort(
        &mut self,
        sink: &mut dyn ResultSink,
        now: u64,
        stats: &mut EngineStats,
        store: &EventStore,
    ) {
        for cand in &mut self.candidates {
            if cand.rejected {
                continue;
            }
            for v in cand.formula.vars() {
                cand.formula = cand.formula.assign(v, false);
            }
            // End of input is itself the determination: whatever is still
            // open resolves now.
            if !cand.determined {
                cand.determined = true;
                self.latency.record(now.saturating_sub(cand.start_tick));
            }
            if cand.formula.is_false() {
                cand.rejected = true;
                self.buffered -= cand.buffer.len();
                cand.buffer.clear();
                stats.dropped += 1;
            }
        }
        // Alternate flushing decided-and-complete candidates with force-
        // closing the (accepted but incomplete) frontier fragment, so the
        // complete results queued behind an open one still get out.
        loop {
            self.flush(sink, now, stats, store);
            let Some(front) = self.candidates.pop_front() else {
                break;
            };
            self.base += 1;
            if front.rejected {
                continue;
            }
            self.buffered -= front.buffer.len();
            if front.begin_sent {
                sink.end(now);
                stats.results += 1;
            } else {
                stats.dropped += 1;
            }
        }
        self.open_stack.clear();
        self.var_index.clear();
        self.pending.clear();
        self.buffered = 0;
    }

    /// Number of live (buffering or streaming) candidates.
    pub fn live_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of buffered events.
    pub fn buffered_events(&self) -> usize {
        self.buffered
    }

    /// Determination-latency histogram: for every candidate decided so far,
    /// the number of events between its entering the buffer and its formula
    /// becoming constant — the paper's earliness measure. A latency of 0
    /// means the condition was already known when the candidate appeared
    /// (a *past* condition, streamed without buffering); large values mark
    /// the *future* conditions that force buffering.
    pub fn determination_latency(&self) -> &Histogram {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Determination;
    use crate::sink::FragmentCollector;
    use crate::transducers::test_util::stream_of;
    use spex_formula::{CondVar, Formula};

    fn run(messages: Vec<Message>, store: &EventStore) -> (FragmentCollector, EngineStats) {
        let mut out = Output::new();
        let mut sink = FragmentCollector::new();
        let mut stats = EngineStats::default();
        let mut now = 0;
        for m in messages {
            let is_doc = m.is_doc();
            out.step(m, &mut sink, now, &mut stats, store);
            if is_doc {
                now += 1;
            }
        }
        out.finish(&mut sink, now, &mut stats, store);
        (sink, stats)
    }

    #[test]
    fn true_candidate_streams_immediately() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b></a>");
        // Activate the <b> fragment with [true].
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::True));
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert_eq!(sink.fragments(), ["<b>t</b>".to_string()]);
        assert_eq!(stats.results, 1);
        assert_eq!(stats.dropped, 0);
        // Progressive: delivery began at the tick of the opening message.
        assert_eq!(sink.timing, vec![(2, 2)]);
    }

    #[test]
    fn future_condition_buffers_until_true() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b><c/></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v)));
            }
            if i == 5 {
                // Determined true at the <c> tick — after </b>.
                msgs.push(Message::Determine(v, Determination::True));
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert_eq!(sink.fragments(), ["<b>t</b>".to_string()]);
        // Delivery only began at tick 5 (when the variable was determined).
        assert_eq!(sink.timing, vec![(2, 5)]);
        assert!(stats.peak_buffered_events >= 3);
    }

    #[test]
    fn false_candidate_dropped_and_buffer_released() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v)));
            }
            if i == 4 {
                msgs.push(Message::Determine(v, Determination::False));
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert!(sink.fragments().is_empty());
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.results, 0);
    }

    #[test]
    fn document_order_is_preserved_across_decisions() {
        // Candidate 1 (undetermined, later true) starts before candidate 2
        // (immediately true): 2 must wait for 1.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>x</b><c>y</c></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v))); // <b…>
            }
            if i == 5 {
                msgs.push(Message::Activate(Formula::True)); // <c…>
            }
            msgs.push(m.clone());
            if i == 7 {
                // Determine v late, after </c>.
                msgs.push(Message::Determine(v, Determination::True));
            }
        }
        let (sink, _stats) = run(msgs, &store);
        assert_eq!(
            sink.fragments(),
            ["<b>x</b>".to_string(), "<c>y</c>".to_string()]
        );
        // Fragment 2 started at tick 5 but could only be delivered once the
        // late determination arrived (after the </c> tick advanced to 8).
        assert_eq!(sink.timing, vec![(2, 8), (5, 8)]);
    }

    #[test]
    fn nested_candidates_each_get_full_fragments() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b><c>t</c></b></a>");
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 || i == 3 {
                msgs.push(Message::Activate(Formula::True)); // <b> and <c>
            }
            msgs.push(m.clone());
        }
        let (sink, _stats) = run(msgs, &store);
        assert_eq!(
            sink.fragments(),
            ["<b><c>t</c></b>".to_string(), "<c>t</c>".to_string()]
        );
    }

    #[test]
    fn sibling_candidates_after_nested_ones() {
        // Exercises the open-stack bookkeeping: open, close, open again.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>1</b><b>2</b><b>3</b></a>");
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 || i == 5 || i == 8 {
                msgs.push(Message::Activate(Formula::True));
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert_eq!(
            sink.fragments(),
            [
                "<b>1</b>".to_string(),
                "<b>2</b>".to_string(),
                "<b>3</b>".to_string()
            ]
        );
        assert_eq!(stats.results, 3);
        // Each streamed immediately — nothing accumulated.
        assert!(sink.timing.iter().all(|(s, d)| s == d));
    }

    #[test]
    fn rejected_open_candidate_stops_buffering() {
        // A candidate rejected while still open must not keep accumulating.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b><x/><y/><z/></b></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v))); // <b>
            }
            if i == 4 {
                msgs.push(Message::Determine(v, Determination::False)); // reject mid-flight
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert!(sink.fragments().is_empty());
        assert_eq!(stats.dropped, 1);
        // Buffer peak stays at the prefix seen before rejection.
        assert!(stats.peak_buffered_events <= 4);
    }

    #[test]
    fn unresolved_variables_are_false_at_end_of_stream() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b/></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v)));
            }
            msgs.push(m.clone());
        }
        let (sink, stats) = run(msgs, &store);
        assert!(sink.fragments().is_empty());
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn whole_document_candidate() {
        // An ε query activates at <$>: the full document is the fragment.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b/></a>");
        let mut msgs = vec![Message::Activate(Formula::True)];
        msgs.extend(stream.iter().cloned());
        let (sink, _stats) = run(msgs, &store);
        assert_eq!(sink.fragments().len(), 1);
        // `<$>`/`</$>` render as nothing printable in fragments; the
        // serialized fragment contains the root element.
        assert!(sink.fragments()[0].contains("<a><b></b></a>"));
    }

    #[test]
    fn determination_latency_measures_the_buffering_gap() {
        // Candidate enters at tick 2; its variable is determined at tick 5:
        // latency 3 (the paper's earliness measure for a future condition).
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b><c/></a>");
        let v = CondVar::new(0, 1);
        let mut out = Output::new();
        let mut sink = FragmentCollector::new();
        let mut stats = EngineStats::default();
        for (i, m) in stream.iter().enumerate() {
            let now = i as u64;
            if i == 2 {
                out.step(
                    Message::Activate(Formula::Var(v)),
                    &mut sink,
                    now,
                    &mut stats,
                    &store,
                );
            }
            if i == 5 {
                out.step(
                    Message::Determine(v, Determination::True),
                    &mut sink,
                    now,
                    &mut stats,
                    &store,
                );
            }
            out.step(m.clone(), &mut sink, now, &mut stats, &store);
        }
        out.finish(&mut sink, stream.len() as u64, &mut stats, &store);
        let h = out.determination_latency();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn past_conditions_have_zero_determination_latency() {
        // An already-true activation decides the candidate at birth.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b></a>");
        let mut out = Output::new();
        let mut sink = FragmentCollector::new();
        let mut stats = EngineStats::default();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                out.step(
                    Message::Activate(Formula::True),
                    &mut sink,
                    i as u64,
                    &mut stats,
                    &store,
                );
            }
            out.step(m.clone(), &mut sink, i as u64, &mut stats, &store);
        }
        out.finish(&mut sink, stream.len() as u64, &mut stats, &store);
        let h = out.determination_latency();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 0);
        // A rejected-at-end candidate also counts exactly once.
        let mut out2 = Output::new();
        let v = CondVar::new(0, 1);
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                out2.step(
                    Message::Activate(Formula::Var(v)),
                    &mut sink,
                    i as u64,
                    &mut stats,
                    &store,
                );
            }
            out2.step(m.clone(), &mut sink, i as u64, &mut stats, &store);
        }
        out2.finish(&mut sink, stream.len() as u64, &mut stats, &store);
        assert_eq!(out2.determination_latency().count(), 1);
        // Entered at tick 2, resolved at end of stream (tick 7): latency 5.
        assert_eq!(out2.determination_latency().max(), 5);
    }

    #[test]
    fn determination_for_long_gone_candidate_is_harmless() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b/><c/></a>");
        let v = CondVar::new(0, 1);
        let mut msgs = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                msgs.push(Message::Activate(Formula::Var(v)));
            }
            if i == 3 {
                msgs.push(Message::Determine(v, Determination::True));
            }
            msgs.push(m.clone());
            if i == 5 {
                // A duplicate/straggler determination after emission.
                msgs.push(Message::Determine(v, Determination::False));
            }
        }
        let (sink, stats) = run(msgs, &store);
        assert_eq!(sink.fragments(), ["<b></b>".to_string()]);
        assert_eq!(stats.results, 1);
    }
}
