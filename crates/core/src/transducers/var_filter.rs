//! The variable-filter transducers VF(q+) and VF(q−) — §III.5.2.
//!
//! A variable filter is "sensitive to condition variables created for \[one\]
//! qualifier":
//!
//! * the **positive** filter VF(q+) lets through exactly the activation
//!   messages that carry at least one `q`-variable — those announce matches
//!   of the qualifier's path — and drops the rest. For determination
//!   messages it distinguishes provenance: determinations of qualifiers
//!   *nested inside this qualifier's sub-network* (the `inner` id range)
//!   originate on this branch only and must pass; all others also travel on
//!   the main branch of the enclosing split and are dropped here, exactly so
//!   the join does not duplicate them (the purpose served by Fig. 7's
//!   transition 2 in the paper).
//!
//!   *Deviation, documented in DESIGN.md:* the paper's VF(q+) already
//!   decomposes formulas "into a stream of condition variables"; here the
//!   decomposition (and the residual computation that nested qualifiers
//!   require) lives in the variable-determinant, so VF forwards the full
//!   formula.
//!
//! * the **negative** filter VF(q−) drops the variables created for `q` from
//!   the formulas passing through, projecting them out existentially. It is
//!   not used by the rpeq translation of Fig. 11 but by multi-sink
//!   conjunctive-query networks (§VII).

use super::{Trace, Transducer};
use crate::message::Message;
use spex_formula::QualifierId;
use std::ops::Range;

/// The variable-filter transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct VarFilter {
    qualifier: QualifierId,
    /// Qualifier ids allocated inside this qualifier's sub-network
    /// (positive polarity only).
    inner: Range<u32>,
    positive: bool,
    trace: Trace,
}

impl VarFilter {
    /// A positive filter VF(q+). `inner` is the range of qualifier ids
    /// compiled within this qualifier's sub-expression.
    pub fn positive(qualifier: QualifierId, inner: Range<u32>) -> Self {
        VarFilter {
            qualifier,
            inner,
            positive: true,
            trace: Trace::default(),
        }
    }

    /// A negative filter VF(q−).
    pub fn negative(qualifier: QualifierId) -> Self {
        VarFilter {
            qualifier,
            inner: 0..0,
            positive: false,
            trace: Trace::default(),
        }
    }
}

impl Transducer for VarFilter {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            Message::Activate(f) => {
                if self.positive {
                    if !f.vars_of(self.qualifier).is_empty() {
                        self.trace.fire(1);
                        out.push(Message::Activate(f));
                    }
                } else {
                    self.trace.fire(2);
                    // Existential projection: assigning true removes the
                    // variable without strengthening the formula.
                    let mut g = f;
                    for v in g.vars_of(self.qualifier) {
                        g = g.assign(v, true);
                    }
                    out.push(Message::Activate(g));
                }
            }
            Message::Determine(c, v) => {
                if self.positive {
                    if self.inner.contains(&c.qualifier.0) {
                        out.push(Message::Determine(c, v));
                    }
                    // Others are dropped: the main branch carries them.
                } else if c.qualifier != self.qualifier {
                    out.push(Message::Determine(c, v));
                }
            }
            doc @ Message::Doc(_) => out.push(doc),
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Determination;
    use spex_formula::{CondVar, Formula};

    fn f_mixed() -> Formula {
        // c1.1 ∧ (c1.2 ∨ c2.3)
        Formula::and(
            Formula::Var(CondVar::new(1, 1)),
            Formula::or(
                Formula::Var(CondVar::new(1, 2)),
                Formula::Var(CondVar::new(2, 3)),
            ),
        )
    }

    #[test]
    fn positive_filter_passes_activations_with_q_vars() {
        let mut t = VarFilter::positive(QualifierId(1), 2..3);
        let mut out = Vec::new();
        t.step(Message::Activate(f_mixed()), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Message::Activate(f) if *f == f_mixed()));
    }

    #[test]
    fn positive_filter_drops_foreign_activations() {
        let mut t = VarFilter::positive(QualifierId(9), 10..10);
        let mut out = Vec::new();
        t.step(Message::Activate(f_mixed()), &mut out);
        t.step(Message::Activate(Formula::True), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn positive_filter_forwards_only_inner_determinations() {
        let mut t = VarFilter::positive(QualifierId(1), 2..4);
        let mut out = Vec::new();
        // Inner qualifier (id 2): passes.
        t.step(
            Message::Determine(CondVar::new(2, 5), Determination::True),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        // Own qualifier and outer qualifiers: dropped (main branch has them).
        t.step(
            Message::Determine(CondVar::new(1, 1), Determination::False),
            &mut out,
        );
        t.step(
            Message::Determine(CondVar::new(0, 7), Determination::True),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn negative_filter_projects_out_qualifier_vars() {
        let mut t = VarFilter::negative(QualifierId(1));
        let mut out = Vec::new();
        // Conjunction: dropping c1.1 leaves the rest.
        let f = Formula::and(
            Formula::Var(CondVar::new(1, 1)),
            Formula::Var(CondVar::new(2, 3)),
        );
        t.step(Message::Activate(f), &mut out);
        match &out[0] {
            Message::Activate(f) => assert_eq!(f.to_string(), "c2.3"),
            other => panic!("unexpected {other:?}"),
        }
        out.clear();
        // Disjunction: existential projection makes it trivially true.
        t.step(Message::Activate(f_mixed()), &mut out);
        match &out[0] {
            Message::Activate(f) => assert!(f.is_true()),
            other => panic!("unexpected {other:?}"),
        }
        out.clear();
        t.step(
            Message::Determine(CondVar::new(1, 1), Determination::False),
            &mut out,
        );
        assert!(out.is_empty());
        t.step(
            Message::Determine(CondVar::new(2, 3), Determination::False),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn document_messages_pass_both_polarities() {
        use spex_xml::EventStore;
        let mut store = EventStore::new();
        let stream = crate::transducers::test_util::stream_of(&mut store, "<a/>");
        for mut t in [
            VarFilter::positive(QualifierId(1), 2..2),
            VarFilter::negative(QualifierId(1)),
        ] {
            let mut out = Vec::new();
            for m in &stream {
                t.step(m.clone(), &mut out);
            }
            assert_eq!(out.len(), stream.len());
        }
    }
}
