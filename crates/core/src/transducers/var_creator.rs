//! The variable-creator transducer VC(q) — Fig. 6 of the paper.
//!
//! For every activation `[f]` it mints a fresh condition variable `c` (one
//! *instance* of the qualifier `q`), emits `[f ∧ c]`, and remembers `c` on
//! its condition stack. When the scope of the instance — the activating
//! element — closes without the qualifier having been satisfied for good,
//! VC emits the determination `{c, false}` (transition 4). The
//! variable-determinant VD is responsible for `{c, true}`.

use super::{Trace, Transducer};
use crate::message::{DocEvent, Message};
use spex_formula::{CondVar, Formula, QualifierId, VarFactory};
use std::cell::RefCell;
use std::rc::Rc;

/// Depth-stack alphabet Γ_depth = {l, s} of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    /// `l` — ordinary level.
    Level,
    /// `s` — scope start: the level of an activating element.
    Scope,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Working,
    /// An activation has been received; the next document message opens the
    /// scope of the freshly created variable.
    Activate,
}

/// The variable-creator transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct VarCreator {
    qualifier: QualifierId,
    factory: Rc<RefCell<VarFactory>>,
    state: State,
    depth: Vec<Depth>,
    /// Condition stack: the variable names of open instances (Fig. 6 keeps
    /// `c` entries, not formulas).
    vars: Vec<CondVar>,
    trace: Trace,
}

impl VarCreator {
    /// Create a variable creator for `qualifier`, minting variables from the
    /// run-wide `factory`.
    pub fn new(qualifier: QualifierId, factory: Rc<RefCell<VarFactory>>) -> Self {
        VarCreator {
            qualifier,
            factory,
            state: State::Working,
            depth: Vec::new(),
            vars: Vec::new(),
            trace: Trace::default(),
        }
    }
}

impl Transducer for VarCreator {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            // (1) activation: mint an instance, emit [f ∧ c].
            Message::Activate(f) => {
                debug_assert_eq!(
                    self.state,
                    State::Working,
                    "activation while already activated"
                );
                self.trace.fire(1);
                let c = self.factory.borrow_mut().fresh(self.qualifier);
                self.vars.push(c);
                self.state = State::Activate;
                out.push(Message::Activate(Formula::and(f, Formula::Var(c))));
            }
            Message::Doc(doc) => match &doc {
                DocEvent::Open { .. } => match self.state {
                    // (2) ordinary level.
                    State::Working => {
                        self.trace.fire(2);
                        self.depth.push(Depth::Level);
                        out.push(Message::Doc(doc));
                    }
                    // (5) the scope of the newest instance opens.
                    State::Activate => {
                        self.trace.fire(5);
                        self.depth.push(Depth::Scope);
                        self.state = State::Working;
                        out.push(Message::Doc(doc));
                    }
                },
                DocEvent::Close { .. } => {
                    match self.depth.last().copied() {
                        // (3) ordinary level closes.
                        Some(Depth::Level) => {
                            self.trace.fire(3);
                            self.depth.pop();
                            out.push(Message::Doc(doc));
                        }
                        // (4) an instance's scope closes: invalidate it.
                        Some(Depth::Scope) => {
                            self.trace.fire(4);
                            self.depth.pop();
                            if let Some(c) = self.vars.pop() {
                                out.push(Message::Determine(
                                    c,
                                    crate::message::Determination::False,
                                ));
                            }
                            out.push(Message::Doc(doc));
                        }
                        None => out.push(Message::Doc(doc)),
                    }
                }
                DocEvent::Item { .. } => out.push(Message::Doc(doc)),
            },
            // (6) determinations pass through; the stack stores variable
            // names, not formulas, so there is nothing to update.
            Message::Determine(c, v) => {
                self.trace.fire(6);
                out.push(Message::Determine(c, v));
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (self.depth.len(), self.vars.len())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Determination;
    use crate::transducers::test_util::stream_of;
    use spex_xml::EventStore;

    fn vc() -> VarCreator {
        VarCreator::new(QualifierId(1), Rc::new(RefCell::new(VarFactory::new())))
    }

    #[test]
    fn creates_conjunction_with_fresh_variable() {
        let mut t = vc();
        let mut out = Vec::new();
        t.step(Message::Activate(Formula::True), &mut out);
        match &out[0] {
            Message::Activate(f) => {
                assert_eq!(f.to_string(), "c1.1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalidates_on_scope_close() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b/></a>");
        let mut t = vc();
        let mut tape = Vec::new();
        // Activate before the <a> element (index 1): <a> is the scope.
        t.step(stream[0].clone(), &mut tape); // <$> (2)
        t.step(Message::Activate(Formula::True), &mut tape); // (1)
        t.step(stream[1].clone(), &mut tape); // <a> (5) scope opens
        t.step(stream[2].clone(), &mut tape); // <b> (2)
        t.step(stream[3].clone(), &mut tape); // </b> (3)
        tape.clear();
        t.step(stream[4].clone(), &mut tape); // </a> (4): {c,false};</a>
        assert_eq!(tape.len(), 2);
        assert!(matches!(&tape[0], Message::Determine(c, Determination::False) if c.serial == 1));
        assert!(matches!(&tape[1], Message::Doc(DocEvent::Close { .. })));
        assert_eq!(t.stack_sizes().1, 0);
    }

    #[test]
    fn nested_instances_stack() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><a/></a>");
        let mut t = vc();
        let mut tape = Vec::new();
        t.step(stream[0].clone(), &mut tape); // <$>
        t.step(Message::Activate(Formula::True), &mut tape);
        t.step(stream[1].clone(), &mut tape); // outer <a>: scope of c1
        t.step(Message::Activate(Formula::True), &mut tape);
        t.step(stream[2].clone(), &mut tape); // inner <a>: scope of c2
        assert_eq!(t.stack_sizes().1, 2);
        tape.clear();
        t.step(stream[3].clone(), &mut tape); // inner </a>: {c2,false}
        assert!(matches!(&tape[0], Message::Determine(c, Determination::False) if c.serial == 2));
        tape.clear();
        t.step(stream[4].clone(), &mut tape); // outer </a>: {c1,false}
        assert!(matches!(&tape[0], Message::Determine(c, Determination::False) if c.serial == 1));
    }

    #[test]
    fn figure_13_t3_trace() {
        // The VC(q) row (T3) of Fig. 13 for `_*.a[b].c` over the Fig. 1
        // stream: VC is activated at both <a> messages (because CL(_)·CH(a)
        // matched them) and fires 4 at both </a>.
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><a><c/></a><b/><c/></a>");
        let mut t = vc();
        t.set_tracing(true);
        let mut traces = Vec::new();
        // Activations arrive together with the two <a> open messages
        // (indices 1 and 2).
        for (i, msg) in stream.iter().enumerate() {
            let mut out = Vec::new();
            if i == 1 || i == 2 {
                t.step(Message::Activate(Formula::True), &mut out);
            }
            t.step(msg.clone(), &mut out);
            traces.push(crate::transducers::format_transitions(
                &t.take_transitions(),
            ));
        }
        assert_eq!(
            traces,
            vec!["2", "1,5", "1,5", "2", "3", "4", "2", "3", "2", "3", "4", "3"]
        );
    }
}
