//! The preceding transducer PR(l) — an extension beyond the paper's
//! transducer set (§I notes the prototype supported `preceding`).
//!
//! `preceding::l` selects the `l` elements that *end before the context node
//! begins*. In a stream the context arrives **after** its preceding matches,
//! so the matches cannot be confirmed at their own position — they are
//! emitted *speculatively*: each matching `<l>` is announced with a fresh
//! condition variable `p` (`[p];<l>`), and `p` is satisfied retroactively
//! when a context activation arrives after `</l>`:
//!
//! * context with a determined (true) formula → `{p, true}` for every
//!   already-closed candidate, which are then purged;
//! * context with an undetermined formula `f` → the conditional
//!   determination `{p := p ∨ f}` (the candidate is a preceding-match iff
//!   the context is real);
//! * end of document → `{p, false}` for every still-unsatisfied candidate.
//!
//! This is the paper's "future conditions" machinery turned inside out, and
//! it is why `Determination::Implied` exists. Unlike every other matching
//! transducer, PR's candidate set grows with the number of `l` elements seen
//! (purged on true contexts) — the same O(s) worst case as the output
//! transducer's candidate store, and unavoidable: any streamed `preceding`
//! must remember its potential matches.

use super::child::MatchLabel;
use super::{Trace, Transducer};
use crate::message::{Determination, DocEvent, Message};
use spex_formula::{CondVar, Formula, QualifierId, VarFactory};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    /// Ordinary level.
    Level,
    /// A speculative match is open at this level; its variable is the
    /// corresponding entry of the parallel `open_vars` stack.
    Match,
}

/// The preceding transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct Preceding {
    label: MatchLabel,
    /// Qualifier id under which the speculative variables are minted.
    qualifier: QualifierId,
    factory: Rc<RefCell<VarFactory>>,
    depth: Vec<Depth>,
    /// Variables of matches still open (parallel to the `Match` entries).
    open_vars: Vec<CondVar>,
    /// Variables of matches that closed and await a context.
    closed_vars: Vec<CondVar>,
    trace: Trace,
}

impl Preceding {
    /// Create a preceding transducer.
    pub fn new(
        label: MatchLabel,
        qualifier: QualifierId,
        factory: Rc<RefCell<VarFactory>>,
    ) -> Self {
        Preceding {
            label,
            qualifier,
            factory,
            depth: Vec::new(),
            open_vars: Vec::new(),
            closed_vars: Vec::new(),
            trace: Trace::default(),
        }
    }
}

impl Transducer for Preceding {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            // (1) a context arrives: every closed candidate is satisfied —
            // outright, or conditionally on the context's own formula.
            Message::Activate(f) => {
                self.trace.fire(1);
                if f.is_true() {
                    for p in self.closed_vars.drain(..) {
                        out.push(Message::Determine(p, Determination::True));
                    }
                } else if !f.is_false() {
                    for p in &self.closed_vars {
                        out.push(Message::Determine(*p, Determination::Implied(f.clone())));
                    }
                }
                // The activation is consumed: downstream continues from the
                // speculative matches, not from the context.
            }
            Message::Doc(doc) => match &doc {
                DocEvent::Open { label, .. } => {
                    if self.label.matches(*label) {
                        // (2) speculative match.
                        self.trace.fire(2);
                        let p = self.factory.borrow_mut().fresh(self.qualifier);
                        self.open_vars.push(p);
                        self.depth.push(Depth::Match);
                        out.push(Message::Activate(Formula::Var(p)));
                    } else {
                        self.depth.push(Depth::Level);
                    }
                    out.push(Message::Doc(doc));
                }
                DocEvent::Close { .. } => {
                    match self.depth.pop() {
                        // (3) a candidate closes: from now on a context can
                        // satisfy it.
                        Some(Depth::Match) => {
                            self.trace.fire(3);
                            if let Some(p) = self.open_vars.pop() {
                                self.closed_vars.push(p);
                            }
                        }
                        Some(Depth::Level) | None => {}
                    }
                    if self.depth.is_empty() {
                        // (4) `</$>`: unsatisfied candidates can never be
                        // preceded by a context — resolve them to false,
                        // before the end-document message so the output
                        // transducer settles within the document.
                        self.trace.fire(4);
                        for p in self.closed_vars.drain(..) {
                            out.push(Message::Determine(p, Determination::False));
                        }
                        self.open_vars.clear();
                    }
                    out.push(Message::Doc(doc));
                }
                DocEvent::Item { .. } => out.push(Message::Doc(doc)),
            },
            // (5) determinations pass through; the candidate variables are
            // plain names here, nothing to update.
            det @ Message::Determine(..) => {
                self.trace.fire(5);
                out.push(det);
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (
            self.depth.len(),
            self.open_vars.len() + self.closed_vars.len(),
        )
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::test_util::stream_of;
    use spex_xml::EventStore;

    fn pr(store: &mut EventStore, label: &str) -> Preceding {
        let l = store.symbols_mut().intern(label);
        Preceding::new(
            MatchLabel::Symbol(l),
            QualifierId(0),
            Rc::new(RefCell::new(VarFactory::new())),
        )
    }

    /// `^b` with a context arriving at the second <a>: the first <b> (which
    /// closed before) is satisfied; the later <b> resolves to false.
    #[test]
    fn closed_candidates_satisfied_by_later_context() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<r><b/><a/><b/></r>");
        let mut t = pr(&mut store, "b");
        let mut tape = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 4 {
                // context <a> opens at index 4.
                t.step(Message::Activate(Formula::True), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let dets: Vec<String> = tape
            .iter()
            .filter(|m| matches!(m, Message::Determine(..)))
            .map(|m| m.to_string())
            .collect();
        // First b's variable true (context), second b's false (end of doc).
        assert_eq!(dets, vec!["{c0.1,true}", "{c0.2,false}"]);
        // Two speculative activations were emitted.
        let acts = tape
            .iter()
            .filter(|m| matches!(m, Message::Activate(_)))
            .count();
        assert_eq!(acts, 2);
    }

    /// A conditional context produces conditional determinations.
    #[test]
    fn conditional_context_implies() {
        use spex_formula::CondVar;
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<r><b/><a/></r>");
        let mut t = pr(&mut store, "b");
        let ctx = Formula::Var(CondVar::new(9, 9));
        let mut tape = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 4 {
                t.step(Message::Activate(ctx.clone()), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let dets: Vec<String> = tape
            .iter()
            .filter(|m| matches!(m, Message::Determine(..)))
            .map(|m| m.to_string())
            .collect();
        // Conditionally satisfied, then resolved false at end of document
        // (the residual c9.9 remains in downstream formulas).
        assert_eq!(dets, vec!["{c0.1,∨c9.9}", "{c0.1,false}"]);
    }

    /// Still-open candidates are not satisfied (ancestors are excluded).
    #[test]
    fn open_candidates_not_satisfied() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<b><a/></b>");
        let mut t = pr(&mut store, "b");
        let mut tape = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                t.step(Message::Activate(Formula::True), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let dets: Vec<String> = tape
            .iter()
            .filter(|m| matches!(m, Message::Determine(..)))
            .map(|m| m.to_string())
            .collect();
        // The <b> is an ancestor of the context: only the end-of-document
        // false resolution.
        assert_eq!(dets, vec!["{c0.1,false}"]);
    }
}
