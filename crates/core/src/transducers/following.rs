//! The following transducer FO(l) — an extension beyond the paper's
//! transducer set.
//!
//! §I of the paper notes that "the prototype supports also other XPath
//! navigational capabilities, i.e. following and preceding". FO(l)
//! implements the `following::l` axis in the SPEX architecture: it selects
//! every `<l>` document message that opens *after the activating element has
//! closed* — the streaming reading of XPath's "all nodes after the context
//! node in document order, excluding its descendants" (descendants all open
//! before the context's close, so they are excluded for free).
//!
//! Mechanics: like VC, the transducer marks the activator's level with `s`
//! on its depth stack and keeps the activation formula on its condition
//! stack; when the scope closes, the formula moves into the accumulated
//! disjunction `closed` — the condition under which *any* context node has
//! already ended. From then on every matching open is announced with
//! `[closed]`. At `</$>` (depth stack empty) the accumulator resets, so
//! consecutive documents on one stream stay independent.
//!
//! FO is a 1-DPDT like the other matching transducers: one synchronized
//! depth/condition stack plus a formula register.

use super::child::MatchLabel;
use super::{Trace, Transducer};
use crate::message::{DocEvent, Message};
use spex_formula::Formula;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    /// Ordinary level.
    Level,
    /// An activator's level: its close completes a context node.
    Scope,
}

/// The following transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct Following {
    label: MatchLabel,
    depth: Vec<Depth>,
    /// Formulas of activators whose elements are still open (parallel to
    /// the `Scope` entries of `depth`).
    pending: Vec<Formula>,
    /// Disjunction of the formulas of all context nodes that have closed.
    closed: Formula,
    /// An activation has been received; the next open is its activator.
    armed: bool,
    trace: Trace,
}

impl Following {
    /// Create a following transducer for `label`.
    pub fn new(label: MatchLabel) -> Self {
        Following {
            label,
            depth: Vec::new(),
            pending: Vec::new(),
            closed: Formula::False,
            armed: false,
            trace: Trace::default(),
        }
    }
}

impl Transducer for Following {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            // (1) activation: remember the formula, await its activator.
            Message::Activate(f) => {
                self.trace.fire(1);
                if self.armed {
                    // Defensive (the compiler's UN prevents this): merge.
                    if let Some(top) = self.pending.last_mut() {
                        *top = Formula::or(top.clone(), f);
                    }
                } else {
                    self.pending.push(f);
                    self.armed = true;
                }
            }
            Message::Doc(doc) => match &doc {
                DocEvent::Open { label, .. } => {
                    // (2)/(3) a match fires for every element opening after
                    // at least one context closed (possibly conditionally).
                    if self.label.matches(*label) && !self.closed.is_false() {
                        self.trace.fire(2);
                        out.push(Message::Activate(self.closed.clone()));
                    }
                    if self.armed {
                        self.trace.fire(3);
                        self.depth.push(Depth::Scope);
                        self.armed = false;
                    } else {
                        self.depth.push(Depth::Level);
                    }
                    out.push(Message::Doc(doc));
                }
                DocEvent::Close { .. } => {
                    match self.depth.pop() {
                        // (4) a context node ends: its formula joins the
                        // accumulated disjunction.
                        Some(Depth::Scope) => {
                            self.trace.fire(4);
                            if let Some(f) = self.pending.pop() {
                                self.closed = Formula::or(self.closed.clone(), f);
                            }
                        }
                        Some(Depth::Level) | None => {}
                    }
                    if self.depth.is_empty() {
                        // `</$>`: reset for the next document on the stream.
                        self.closed = Formula::False;
                        self.pending.clear();
                        self.armed = false;
                    }
                    out.push(Message::Doc(doc));
                }
                DocEvent::Item { .. } => out.push(Message::Doc(doc)),
            },
            // (5) determination: update all held formulas, forward.
            Message::Determine(c, v) => {
                self.trace.fire(5);
                for f in &mut self.pending {
                    *f = v.apply(c, f);
                }
                self.closed = v.apply(c, &self.closed);
                out.push(Message::Determine(c, v));
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (self.depth.len(), self.pending.len())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::test_util::{render, stream_of};
    use spex_xml::EventStore;

    /// `~b` activated at the root: only `b` elements after `</a₁>` match.
    #[test]
    fn matches_only_after_scope_close() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<r><a><b/></a><b/><c><b/></c></r>");
        let b = store.symbols_mut().intern("b");
        // Activate with the first <a> (index 2) as context.
        let mut t = Following::new(MatchLabel::Symbol(b));
        let mut tape = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                t.step(Message::Activate(Formula::True), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let matches: Vec<usize> = tape
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m, Message::Activate(_)))
            .map(|(i, _)| i)
            .collect();
        // The <b> inside <a> does NOT match (context still open); the
        // sibling <b> and the nested <b> inside <c> do.
        assert_eq!(matches.len(), 2);
        // Each match activation directly precedes its <b>.
        for i in matches {
            assert_eq!(render(&store, &tape[i + 1]), "<b>");
        }
    }

    #[test]
    fn resets_between_documents() {
        let mut store = EventStore::new();
        let b = store.symbols_mut().intern("b");
        let mut t = Following::new(MatchLabel::Symbol(b));
        let mut tape = Vec::new();
        let doc = stream_of(&mut store, "<r><a/><b/></r>");
        // First document: activate at <a>.
        for (i, m) in doc.iter().enumerate() {
            if i == 2 {
                t.step(Message::Activate(Formula::True), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let first: usize = tape
            .iter()
            .filter(|m| matches!(m, Message::Activate(_)))
            .count();
        assert_eq!(first, 1);
        // Second document without activation: no carried-over matches.
        tape.clear();
        for m in &doc {
            t.step(m.clone(), &mut tape);
        }
        assert!(tape.iter().all(|m| !matches!(m, Message::Activate(_))));
        assert_eq!(t.stack_sizes(), (0, 0));
    }

    #[test]
    fn multiple_contexts_disjoin() {
        use spex_formula::CondVar;
        let mut store = EventStore::new();
        let x = store.symbols_mut().intern("x");
        let mut t = Following::new(MatchLabel::Symbol(x));
        let stream = stream_of(&mut store, "<r><a/><a/><x/></r>");
        let va = Formula::Var(CondVar::new(0, 1));
        let vb = Formula::Var(CondVar::new(0, 2));
        let mut tape = Vec::new();
        for (i, m) in stream.iter().enumerate() {
            if i == 2 {
                t.step(Message::Activate(va.clone()), &mut tape);
            }
            if i == 4 {
                t.step(Message::Activate(vb.clone()), &mut tape);
            }
            t.step(m.clone(), &mut tape);
        }
        let act: Vec<&Message> = tape
            .iter()
            .filter(|m| matches!(m, Message::Activate(_)))
            .collect();
        assert_eq!(act.len(), 1);
        assert!(matches!(act[0], Message::Activate(f) if *f == Formula::or(va, vb)));
    }
}
