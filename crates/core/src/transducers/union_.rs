//! The union connector UN — Fig. 10 of the paper.
//!
//! A connector "creates a condition formula from two formulas it receives":
//! placed after a join, it merges the activation messages the two branches
//! produced for the *same* document message into one activation carrying
//! their disjunction (transitions 1–2); a lone activation passes through
//! with its document message (transition 3).
//!
//! Two generalizations over the literal table of Fig. 10, both noted in
//! DESIGN.md:
//!
//! * **k-ary accumulation**: if more than two activations precede a document
//!   message, all of them are merged into a single disjunction (Fig. 10
//!   would emit an activation after the second one and restart, leaving two
//!   activations for one document message — which no downstream transducer
//!   accepts). For k ≤ 2 the behaviour coincides with the paper's table.
//! * **determination updates**: a determination message passing through
//!   (transition 4) also updates the formula(s) held on the condition stack.
//!   Fig. 10 forwards it without updating, which would let a stale variable
//!   value survive inside the pending formula; updating is required for
//!   correctness and matches what every other formula-holding transducer
//!   (child, closure) does in its update transition.

use super::{Trace, Transducer};
use crate::message::{Determination, Message};
use spex_formula::{CondVar, Formula};

/// The union connector. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Union {
    /// Activations accumulated since the last document message.
    pending: Vec<Formula>,
    /// Determinations that arrived while activations were pending. They are
    /// re-emitted *after* the merged activation so they never overtake an
    /// activation whose formula references their variable (which would
    /// orphan that variable downstream). Relative determination order is
    /// preserved.
    pending_dets: Vec<(CondVar, Determination)>,
    trace: Trace,
}

impl Union {
    /// Create a union connector.
    pub fn new() -> Self {
        Union::default()
    }
}

impl Transducer for Union {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            Message::Activate(f) => {
                // (1) first formula stored; (2) later formulas join the
                // disjunction (emitted with the document message).
                self.trace.fire(if self.pending.is_empty() { 1 } else { 2 });
                self.pending.push(f);
            }
            doc @ Message::Doc(_) => {
                if !self.pending.is_empty() {
                    // (2)/(3): emit the merged activation before the
                    // document message.
                    self.trace.fire(3);
                    // The singleton pop keeps `pending`'s capacity for the
                    // next tick; `disj` of one normalized formula is that
                    // formula.
                    let merged = if self.pending.len() == 1 {
                        self.pending.pop().expect("length checked")
                    } else {
                        Formula::disj(std::mem::take(&mut self.pending))
                    };
                    out.push(Message::Activate(merged));
                }
                for (c, v) in self.pending_dets.drain(..) {
                    out.push(Message::Determine(c, v));
                }
                out.push(doc);
            }
            Message::Determine(c, v) => {
                // (4) forward, updating any pending formulas. While an
                // activation is held, the determination is held too so it
                // cannot overtake it (see `pending_dets`).
                self.trace.fire(4);
                for f in &mut self.pending {
                    *f = v.apply(c, f);
                }
                if self.pending.is_empty() {
                    out.push(Message::Determine(c, v));
                } else {
                    self.pending_dets.push((c, v));
                }
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (0, self.pending.len())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::test_util::{render, stream_of};
    use spex_formula::CondVar;
    use spex_xml::EventStore;

    fn var(s: u32) -> Formula {
        Formula::Var(CondVar::new(0, s))
    }

    #[test]
    fn two_activations_merge_to_disjunction() {
        let mut store = EventStore::new();
        let a = stream_of(&mut store, "<a/>")[1].clone();
        let mut u = Union::new();
        let mut out = Vec::new();
        u.step(Message::Activate(var(1)), &mut out);
        u.step(Message::Activate(var(2)), &mut out);
        assert!(out.is_empty()); // nothing until the document message
        u.step(a, &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["[c0.1 ∨ c0.2]", "<a>"]);
    }

    #[test]
    fn single_activation_passes() {
        let mut store = EventStore::new();
        let a = stream_of(&mut store, "<a/>")[1].clone();
        let mut u = Union::new();
        let mut out = Vec::new();
        u.step(Message::Activate(var(1)), &mut out);
        u.step(a, &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["[c0.1]", "<a>"]);
    }

    #[test]
    fn three_activations_merge() {
        let mut store = EventStore::new();
        let a = stream_of(&mut store, "<a/>")[1].clone();
        let mut u = Union::new();
        let mut out = Vec::new();
        for s in 1..=3 {
            u.step(Message::Activate(var(s)), &mut out);
        }
        u.step(a, &mut out);
        assert_eq!(out[0].to_string(), "[c0.1 ∨ c0.2 ∨ c0.3]");
    }

    #[test]
    fn plain_documents_forwarded() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b/></a>");
        let mut u = Union::new();
        let mut out = Vec::new();
        for m in &stream {
            u.step(m.clone(), &mut out);
        }
        assert_eq!(out.len(), stream.len());
    }

    #[test]
    fn determination_updates_pending_formula() {
        let mut store = EventStore::new();
        let a = stream_of(&mut store, "<a/>")[1].clone();
        let mut u = Union::new();
        let mut out = Vec::new();
        let c = CondVar::new(0, 1);
        u.step(Message::Activate(Formula::Var(c)), &mut out);
        u.step(
            Message::Determine(c, crate::message::Determination::True),
            &mut out,
        );
        u.step(a, &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        // The determination was held behind the pending activation (so it
        // cannot overtake it) and re-emitted after the — already updated —
        // merged activation.
        assert_eq!(rendered, vec!["[true]", "{c0.1,true}", "<a>"]);
    }

    #[test]
    fn duplicate_conjuncts_removed() {
        // "Note, that such a disjunction can be normalized by removing
        // multiple occurrences of the same conjuncts" (§III.4).
        let mut store = EventStore::new();
        let a = stream_of(&mut store, "<a/>")[1].clone();
        let mut u = Union::new();
        let mut out = Vec::new();
        u.step(Message::Activate(var(1)), &mut out);
        u.step(Message::Activate(var(1)), &mut out);
        u.step(a, &mut out);
        assert_eq!(out[0].to_string(), "[c0.1]");
    }
}
