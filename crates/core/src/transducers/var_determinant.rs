//! The variable-determinant transducer VD — Fig. 7 of the paper.
//!
//! "Every instance c of q that reaches this transducer via an activation
//! message is satisfied": the qualifier sub-network upstream only produces
//! an activation when the qualifier expression matched. For each `q`-variable
//! `c` in the activation formula `f`, VD emits a determination:
//!
//! * `{c, true}` when the match is unconditional (the paper's transition 1),
//! * `{c := c ∨ r}` when the match itself still depends on *inner* qualifier
//!   instances — `r` is the residual of `f` after projecting out `c` and
//!   every variable of a non-inner qualifier (those express the validity of
//!   the *outer* context, which is structurally guaranteed here). This
//!   conditional form is what makes nested qualifiers (`a[b[c]]`) correct:
//!   the paper's Fig. 7 only covers the unconditional case.
//!
//! Incoming determinations of inner qualifiers are forwarded (the candidates
//! downstream now reference those variables through residuals); the
//! positive variable-filter upstream has already dropped all others, so —
//! as with Fig. 7's transition 2 — nothing is duplicated at the join.

use super::{Trace, Transducer};
use crate::message::{Determination, Message};
use spex_formula::QualifierId;
use std::ops::Range;

/// The variable-determinant transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct VarDeterminant {
    qualifier: QualifierId,
    /// Qualifier ids allocated inside this qualifier's sub-network.
    inner: Range<u32>,
    trace: Trace,
}

impl VarDeterminant {
    /// Create a variable determinant for `qualifier` with the given inner
    /// qualifier id range.
    pub fn new(qualifier: QualifierId, inner: Range<u32>) -> Self {
        VarDeterminant {
            qualifier,
            inner,
            trace: Trace::default(),
        }
    }
}

impl Transducer for VarDeterminant {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            // (1) a qualifier-path match: determine every instance variable.
            Message::Activate(f) => {
                self.trace.fire(1);
                for c in f.vars_of(self.qualifier) {
                    // Residual: the instance variable itself and every
                    // variable conditioning the *outer* context are
                    // structurally satisfied at this point; only inner
                    // qualifier variables remain as genuine conditions.
                    let mut r = f.assign(c, true);
                    for v in r.vars() {
                        if !self.inner.contains(&v.qualifier.0) {
                            r = r.assign(v, true);
                        }
                    }
                    let det = if r.is_true() {
                        Determination::True
                    } else {
                        Determination::Implied(r)
                    };
                    out.push(Message::Determine(c, det));
                }
            }
            // (2) inner determinations pass (VF(q+) dropped all others).
            det @ Message::Determine(..) => {
                self.trace.fire(2);
                out.push(det);
            }
            doc @ Message::Doc(_) => out.push(doc),
        }
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_formula::{CondVar, Formula};

    #[test]
    fn unconditional_activation_becomes_true_determination() {
        let mut t = VarDeterminant::new(QualifierId(1), 2..2);
        let mut out = Vec::new();
        let c = CondVar::new(1, 4);
        t.step(Message::Activate(Formula::Var(c)), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(&out[0], Message::Determine(v, Determination::True) if *v == c));
    }

    #[test]
    fn outer_variables_are_projected_out() {
        // f = c0.7 ∧ c1.4 — the outer context variable c0.7 is structurally
        // satisfied; the q1 instance is satisfied unconditionally.
        let mut t = VarDeterminant::new(QualifierId(1), 2..2);
        let mut out = Vec::new();
        let f = Formula::and(
            Formula::Var(CondVar::new(0, 7)),
            Formula::Var(CondVar::new(1, 4)),
        );
        t.step(Message::Activate(f), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Message::Determine(v, Determination::True) if *v == CondVar::new(1, 4)
        ));
    }

    #[test]
    fn inner_variables_become_residuals() {
        // f = c1.4 ∧ c2.9 with q2 nested inside q1: the match is conditional
        // on the inner instance — {c1.4 := c1.4 ∨ c2.9}.
        let mut t = VarDeterminant::new(QualifierId(1), 2..3);
        let mut out = Vec::new();
        let inner = CondVar::new(2, 9);
        let f = Formula::and(Formula::Var(CondVar::new(1, 4)), Formula::Var(inner));
        t.step(Message::Activate(f), &mut out);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Message::Determine(v, Determination::Implied(r)) => {
                assert_eq!(*v, CondVar::new(1, 4));
                assert_eq!(*r, Formula::Var(inner));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incoming_determinations_forwarded() {
        let mut t = VarDeterminant::new(QualifierId(1), 2..3);
        let mut out = Vec::new();
        t.step(
            Message::Determine(CondVar::new(2, 4), Determination::False),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn document_messages_forwarded() {
        use spex_xml::EventStore;
        let mut store = EventStore::new();
        let stream = crate::transducers::test_util::stream_of(&mut store, "<a>x</a>");
        let mut t = VarDeterminant::new(QualifierId(0), 1..1);
        let mut out = Vec::new();
        for m in &stream {
            t.step(m.clone(), &mut out);
        }
        assert_eq!(out.len(), stream.len());
    }
}
