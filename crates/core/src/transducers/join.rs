//! The join transducer JO — Fig. 9 of the paper.
//!
//! JO has two input tapes and synchronizes the two branches of a split:
//! "a signal level (here a document message) is produced at the output when
//! on both inputs that signal level is encountered" — each document message
//! arrives once per branch and leaves the join exactly once, which also
//! performs the duplicate elimination the union operation needs (§III.7).
//!
//! Within one network tick every branch delivers its control messages
//! followed by exactly one document message; the join merges the two queues
//! and emits, in order:
//!
//! 1. every **activation** (left branch's in order, then right branch's),
//! 2. every **determination** (same),
//! 3. the document message, once.
//!
//! Putting activations before determinations generalizes the normalization
//! the paper's own transitions 6/7 perform on mixed pairs ("(6) (`[f]`,{c,v})
//! ⊢ `[f]`;{c,v}" — activation first), and it is the *safe* direction: a
//! determination must never overtake an activation whose formula references
//! its variable (the variable would be orphaned downstream — formulas are
//! updated on receipt, so the opposite order is always harmless). The
//! paper's literal positional pairing (transition 9 emits two determinations
//! as they pair up) can violate this when one branch's determination pairs
//! against the other branch's still-queued activation.

use super::Trace;
use crate::message::Message;

/// The join transducer. Unlike the single-input transducers it consumes the
/// per-tick message queues of both inputs at once.
#[derive(Debug, Default)]
pub struct Join {
    trace: Trace,
}

impl Join {
    /// Create a join transducer.
    pub fn new() -> Self {
        Join::default()
    }

    /// Process one tick: all messages of the left and right input tapes.
    pub fn step2(
        &mut self,
        mut left: Vec<Message>,
        mut right: Vec<Message>,
        out: &mut Vec<Message>,
    ) {
        self.step2_drain(&mut left, &mut right, out);
    }

    /// Like [`Join::step2`], draining the queues in place so the caller can
    /// keep their allocated capacity across ticks (the VM's hot path).
    pub fn step2_drain(
        &mut self,
        left: &mut Vec<Message>,
        right: &mut Vec<Message>,
        out: &mut Vec<Message>,
    ) {
        // Common tick: each branch delivers exactly the document message and
        // nothing else — the join reduces to deduplication (1).
        if left.len() == 1 && right.len() == 1 && left[0].is_doc() && right[0].is_doc() {
            self.trace.fire(1);
            right.clear();
            if let Some(d) = left.pop() {
                out.push(d);
            }
            return;
        }
        let mut determinations: Vec<Message> = Vec::new();
        let mut doc: Option<Message> = None;
        for queue in [left, right] {
            for m in queue.drain(..) {
                match m {
                    a @ Message::Activate(_) => {
                        self.trace.fire(8);
                        out.push(a);
                    }
                    d @ Message::Determine(..) => {
                        self.trace.fire(9);
                        determinations.push(d);
                    }
                    d @ Message::Doc(_) => {
                        if doc.is_none() {
                            doc = Some(d);
                        } else {
                            // The second branch's copy of the same document
                            // message: synchronized and deduplicated (1).
                            self.trace.fire(1);
                        }
                    }
                }
            }
        }
        out.append(&mut determinations);
        if let Some(d) = doc {
            out.push(d);
        }
    }

    /// Enable transition tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Drain fired transition numbers.
    pub fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Determination;
    use crate::transducers::test_util::{render, stream_of};
    use spex_formula::{CondVar, Formula};
    use spex_xml::EventStore;

    fn doc(store: &mut EventStore, xml: &str, idx: usize) -> Message {
        stream_of(store, xml)[idx].clone()
    }

    #[test]
    fn both_docs_emit_once() {
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![a.clone()], vec![a], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_doc());
    }

    #[test]
    fn left_activation_precedes_doc() {
        // Left branch: [f];<a>. Right branch: <a>. Output: [f];<a>.
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let f = Message::Activate(Formula::True);
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![f, a.clone()], vec![a], &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["[true]", "<a>"]);
    }

    #[test]
    fn right_determination_with_left_doc() {
        // Main branch delivers <b> only; qualifier branch delivers
        // {c,true};<b>. Output: {c,true};<b>.
        let mut store = EventStore::new();
        let b = doc(&mut store, "<b/>", 1);
        let det = Message::Determine(CondVar::new(1, 1), Determination::True);
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![b.clone()], vec![det, b], &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["{c1.1,true}", "<b>"]);
    }

    #[test]
    fn activations_always_precede_determinations() {
        // Left: {c,false};<a>; right: [f];<a> — the activation is emitted
        // first (the generalized (6)/(7) normalization).
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let f = Message::Activate(Formula::True);
        let det = Message::Determine(CondVar::new(1, 1), Determination::False);
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![det, a.clone()], vec![f, a], &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["[true]", "{c1.1,false}", "<a>"]);
    }

    #[test]
    fn determination_never_overtakes_activation_with_its_variable() {
        // Regression for the nested-nullable-qualifier bug: left queue holds
        // a determination for c2 paired positionally against the right
        // queue's activation *referencing* c2. The activation must win.
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let c1 = CondVar::new(0, 1);
        let c2 = CondVar::new(1, 2);
        let left = vec![
            Message::Determine(c1, Determination::True),
            Message::Activate(Formula::Var(c2)),
            a.clone(),
        ];
        let right = vec![Message::Determine(c2, Determination::True), a];
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(left, right, &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(
            rendered,
            vec!["[c1.2]", "{c0.1,true}", "{c1.2,true}", "<a>"]
        );
    }

    #[test]
    fn two_activations_both_pass() {
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let f1 = Message::Activate(Formula::Var(CondVar::new(0, 1)));
        let f2 = Message::Activate(Formula::Var(CondVar::new(0, 2)));
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![f1, a.clone()], vec![f2, a], &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["[c0.1]", "[c0.2]", "<a>"]);
    }

    #[test]
    fn per_branch_determination_order_is_preserved() {
        let mut store = EventStore::new();
        let a = doc(&mut store, "<a/>", 1);
        let d1 = Message::Determine(CondVar::new(1, 1), Determination::True);
        let d2 = Message::Determine(CondVar::new(1, 2), Determination::False);
        let mut j = Join::new();
        let mut out = Vec::new();
        j.step2(vec![a.clone()], vec![d1, d2, a], &mut out);
        let rendered: Vec<String> = out.iter().map(|m| render(&store, m)).collect();
        assert_eq!(rendered, vec!["{c1.1,true}", "{c1.2,false}", "<a>"]);
    }

    #[test]
    fn whole_stream_passes_unharmed() {
        let mut store = EventStore::new();
        let stream = stream_of(&mut store, "<a><b>t</b><c/></a>");
        let mut j = Join::new();
        let mut out = Vec::new();
        for m in &stream {
            j.step2(vec![m.clone()], vec![m.clone()], &mut out);
        }
        assert_eq!(out.len(), stream.len());
    }
}
