//! The closure transducer CL(l) — Fig. 3 of the paper.
//!
//! Implements positive closure `l+`: it matches chains of nested `<l>`
//! elements starting at children of the activating document message. The
//! depth-stack alphabet is {l, s, ns, e}: `s` marks the beginning of an
//! outermost match scope, `ns` a *nested* match scope (a new activation
//! arriving while matching), `e` the beginning of a subtree that interrupts
//! matching (a non-`l` element), and `l` an ordinary level.
//!
//! A distinguishing feature (transition 12) is that a nested scope pushes
//! the *disjunction* of the incoming formula and the topmost stack formula:
//! inside the nested scope, the transducer can match on behalf of both the
//! nesting and the nested activation. The disjunction is normalized so "a
//! formula contains at most one reference to a condition variable" (§III.4).
//!
//! The transition numbers are exactly those of Fig. 3; the traces of Fig. 5
//! (example III.2, query `a+.c+`) are reproduced in the tests.

use super::child::MatchLabel;
use super::{Trace, Transducer};
use crate::message::{DocEvent, Message};
use spex_formula::Formula;

/// Depth-stack alphabet Γ_depth = {l, s, ns, e} of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    /// `l` — ordinary level (inside a matched chain element).
    Level,
    /// `s` — scope start (outermost activation scope).
    Scope,
    /// `ns` — nested scope start.
    NestedScope,
    /// `e` — excursion into a non-matching subtree.
    Excursion,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Matching,
    Activated1,
    Activated2,
}

/// The closure transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct Closure {
    label: MatchLabel,
    state: State,
    depth: Vec<Depth>,
    cond: Vec<Formula>,
    trace: Trace,
}

impl Closure {
    /// Create a closure transducer for `label`.
    pub fn new(label: MatchLabel) -> Self {
        Closure {
            label,
            state: State::Waiting,
            depth: Vec::new(),
            cond: Vec::new(),
            trace: Trace::default(),
        }
    }
}

impl Transducer for Closure {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            Message::Activate(f) => match self.state {
                // (1) activation while waiting.
                State::Waiting => {
                    self.trace.fire(1);
                    self.cond.push(f);
                    self.state = State::Activated1;
                }
                // (6) activation while matching: a nested scope is coming.
                State::Matching => {
                    self.trace.fire(6);
                    self.cond.push(f);
                    self.state = State::Activated2;
                }
                State::Activated1 | State::Activated2 => {
                    debug_assert!(
                        false,
                        "consecutive activations reached a closure transducer"
                    );
                    if let Some(top) = self.cond.last_mut() {
                        *top = Formula::or(top.clone(), f);
                    }
                }
            },
            Message::Doc(doc) => match &doc {
                DocEvent::Open { label, .. } => {
                    let label = *label;
                    match self.state {
                        // (2) a level opens while waiting.
                        State::Waiting => {
                            self.trace.fire(2);
                            self.depth.push(Depth::Level);
                            out.push(Message::Doc(doc));
                        }
                        // (5) the activator element opens a fresh scope.
                        State::Activated1 => {
                            self.trace.fire(5);
                            self.depth.push(Depth::Scope);
                            self.state = State::Matching;
                            out.push(Message::Doc(doc));
                        }
                        State::Matching => {
                            if self.label.matches(label) {
                                // (7) match: stay matching — descendants of a
                                // matched element continue the chain.
                                self.trace.fire(7);
                                let f = self.cond.last().cloned().unwrap_or(Formula::True);
                                self.depth.push(Depth::Level);
                                out.push(Message::Activate(f));
                                out.push(Message::Doc(doc));
                            } else {
                                // (8) chain broken: excursion until the
                                // element closes.
                                self.trace.fire(8);
                                self.depth.push(Depth::Excursion);
                                self.state = State::Waiting;
                                out.push(Message::Doc(doc));
                            }
                        }
                        State::Activated2 => {
                            if self.label.matches(label) {
                                // (12) nested scope on a matching element:
                                // the element matches for the *outer* scope
                                // (second formula), and inside it both scopes
                                // are active — push their disjunction.
                                self.trace.fire(12);
                                let f1 = self.cond.pop().unwrap_or(Formula::True);
                                let f2 = self.cond.last().cloned().unwrap_or(Formula::True);
                                self.cond.push(Formula::or(f1, f2.clone()));
                                self.depth.push(Depth::NestedScope);
                                self.state = State::Matching;
                                out.push(Message::Activate(f2));
                                out.push(Message::Doc(doc));
                            } else {
                                // (13) nested scope on a non-matching
                                // element: only the nested activation can
                                // match inside (the outer chain is broken
                                // here), so the incoming formula stays on
                                // top.
                                self.trace.fire(13);
                                self.depth.push(Depth::NestedScope);
                                self.state = State::Matching;
                                out.push(Message::Doc(doc));
                            }
                        }
                    }
                }
                DocEvent::Close { .. } => {
                    match (self.state, self.depth.last().copied()) {
                        // (3) ordinary level closes while waiting.
                        (State::Waiting, Some(Depth::Level)) => {
                            self.trace.fire(3);
                            self.depth.pop();
                        }
                        // (4) excursion ends: resume matching.
                        (State::Waiting, Some(Depth::Excursion)) => {
                            self.trace.fire(4);
                            self.depth.pop();
                            self.state = State::Matching;
                        }
                        // (9) a matched chain element closes: continue
                        // matching at the level above (same scope).
                        (State::Matching, Some(Depth::Level)) => {
                            self.trace.fire(9);
                            self.depth.pop();
                        }
                        // (10) a nested scope ends: drop its (merged)
                        // formula, the outer scope is still active.
                        (State::Matching, Some(Depth::NestedScope)) => {
                            self.trace.fire(10);
                            self.depth.pop();
                            self.cond.pop();
                        }
                        // (11) the outermost scope ends.
                        (State::Matching, Some(Depth::Scope)) => {
                            self.trace.fire(11);
                            self.depth.pop();
                            self.cond.pop();
                            self.state = State::Waiting;
                        }
                        _ => {}
                    }
                    out.push(Message::Doc(doc));
                }
                DocEvent::Item { .. } => out.push(Message::Doc(doc)),
            },
            // (14) determination: update every stored formula, forward.
            Message::Determine(c, v) => {
                self.trace.fire(14);
                for f in &mut self.cond {
                    *f = v.apply(c, f);
                }
                out.push(Message::Determine(c, v));
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (self.depth.len(), self.cond.len())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::format_transitions;
    use crate::transducers::test_util::{fig1_stream, render};
    use spex_xml::EventStore;

    /// Drive the two-closure-transducer chain of example III.2 (`a+.c+`)
    /// over the Fig. 1 stream and compare the transition traces — verbatim —
    /// to Fig. 5 of the paper.
    #[test]
    fn figure_5_transition_traces() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let a = store.symbols_mut().intern("a");
        let c = store.symbols_mut().intern("c");

        let mut input = crate::transducers::input::Input::new();
        let mut t1 = Closure::new(MatchLabel::Symbol(a));
        let mut t2 = Closure::new(MatchLabel::Symbol(c));
        t1.set_tracing(true);
        t2.set_tracing(true);

        let mut trace1 = Vec::new();
        let mut trace2 = Vec::new();
        for msg in stream {
            let mut tape0 = Vec::new();
            input.step(msg, &mut tape0);
            let mut tape1 = Vec::new();
            for m in tape0 {
                t1.step(m, &mut tape1);
            }
            let mut tape2 = Vec::new();
            for m in tape1 {
                t2.step(m, &mut tape2);
            }
            trace1.push(format_transitions(&t1.take_transitions()));
            trace2.push(format_transitions(&t2.take_transitions()));
        }

        // Fig. 5, row T1.
        assert_eq!(
            trace1,
            vec!["1,5", "7", "7", "8", "4", "9", "8", "4", "8", "4", "9", "11"]
        );
        // Fig. 5, row T2.
        assert_eq!(
            trace2,
            vec!["2", "1,5", "6,13", "7", "9", "10", "8", "4", "7", "9", "11", "3"]
        );
    }

    /// Example III.2 produces two result candidates: the inner `<c>` (child
    /// of the nested `<a>`) and the later `<c>` (child of the outer `<a>`).
    #[test]
    fn example_iii_2_matches() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let a = store.symbols_mut().intern("a");
        let c = store.symbols_mut().intern("c");

        let mut input = crate::transducers::input::Input::new();
        let mut t1 = Closure::new(MatchLabel::Symbol(a));
        let mut t2 = Closure::new(MatchLabel::Symbol(c));

        let mut final_tape = Vec::new();
        for msg in stream {
            let mut tape0 = Vec::new();
            input.step(msg, &mut tape0);
            let mut tape1 = Vec::new();
            for m in tape0 {
                t1.step(m, &mut tape1);
            }
            for m in tape1 {
                t2.step(m, &mut final_tape);
            }
        }
        let mut matches = 0;
        for w in final_tape.windows(2) {
            if matches!(&w[0], Message::Activate(_)) && render(&store, &w[1]) == "<c>" {
                matches += 1;
            }
        }
        assert_eq!(matches, 2);
    }

    /// Nested scopes on matching elements merge formulas by disjunction
    /// (transition 12).
    #[test]
    fn nested_scope_disjunction() {
        use spex_formula::{CondVar, Formula};
        let mut store = EventStore::new();
        let a = store.symbols_mut().intern("a");
        let mut t = Closure::new(MatchLabel::Symbol(a));
        let va = Formula::Var(CondVar::new(0, 1));
        let vb = Formula::Var(CondVar::new(0, 2));
        let mut out = Vec::new();
        // Activate with va, open activator (the root-ish element).
        t.step(Message::Activate(va.clone()), &mut out);
        let open_x = crate::transducers::test_util::stream_of(&mut store, "<x><a><a/></a></x>");
        t.step(open_x[1].clone(), &mut out); // <x> → (5) scope
                                             // First <a> matches with va (7).
        out.clear();
        t.step(open_x[2].clone(), &mut out);
        assert!(matches!(&out[0], Message::Activate(f) if *f == va));
        // A nested activation with vb arrives, followed by a matching <a>:
        // (6) then (12) — the match is announced with the *outer* formula va,
        // and the stack top becomes va ∨ vb.
        out.clear();
        t.step(Message::Activate(vb.clone()), &mut out);
        t.step(open_x[3].clone(), &mut out);
        assert!(matches!(&out[0], Message::Activate(f) if *f == va));
        assert_eq!(*t.cond.last().unwrap(), Formula::or(va, vb));
    }

    #[test]
    fn stacks_balance_over_a_document() {
        let mut store = EventStore::new();
        let stream = crate::transducers::test_util::stream_of(&mut store, "<a><a><b/><a/></a></a>");
        let mut input = crate::transducers::input::Input::new();
        let mut t = Closure::new(MatchLabel::Symbol(store.symbols_mut().intern("a")));
        for msg in stream {
            let mut tape0 = Vec::new();
            input.step(msg, &mut tape0);
            let mut out = Vec::new();
            for m in tape0 {
                t.step(m, &mut out);
            }
        }
        assert_eq!(t.stack_sizes(), (0, 0));
    }
}
