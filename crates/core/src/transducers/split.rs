//! The split transducer SP — Fig. 8 of the paper.
//!
//! "Its task is to forward every received message to both of the output
//! tapes." In this implementation fan-out is a property of the network (a
//! node's emitted messages are copied to every outgoing tape), so the split
//! transducer itself is the identity — it exists as an explicit node so
//! networks have the exact shape of Fig. 12 and its transition (1) can be
//! traced.

use super::{Trace, Transducer};
use crate::message::Message;

/// The split transducer. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Split {
    trace: Trace,
}

impl Split {
    /// Create a split transducer.
    pub fn new() -> Self {
        Split::default()
    }
}

impl Transducer for Split {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        // (1) any symbol is forwarded (to both tapes, via network fan-out).
        self.trace.fire(1);
        out.push(msg);
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_formula::Formula;

    #[test]
    fn forwards_everything() {
        let mut t = Split::new();
        let mut out = Vec::new();
        t.step(Message::Activate(Formula::True), &mut out);
        t.step(
            Message::Determine(
                spex_formula::CondVar::new(0, 1),
                crate::message::Determination::True,
            ),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        t.set_tracing(true);
        t.step(Message::Activate(Formula::True), &mut out);
        assert_eq!(t.take_transitions(), vec![1]);
    }
}
