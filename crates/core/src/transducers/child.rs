//! The child transducer CH(l) — Fig. 2 of the paper.
//!
//! Represents one label step: it matches `<l>` document messages that are
//! *direct children* of the activating document message. The depth stack
//! marks tree levels with `l` (plain level) and `m` (match level — the level
//! of children of the activator); the condition stack carries the formulas
//! of active activations.
//!
//! The transition numbers below are exactly those of Fig. 2; the traces of
//! Fig. 4 (example III.1, query `a.c`) are reproduced in the tests.

use super::{Trace, Transducer};
use crate::message::{DocEvent, Message};
use spex_formula::Formula;
use spex_query::Label;

/// Depth-stack alphabet Γ_depth = {m, l} of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Depth {
    /// `l` — an ordinary tree level.
    Level,
    /// `m` — the match level of an activation scope.
    Match,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Waiting,
    Matching,
    /// Activated out of `waiting`: the next document message opens the
    /// activator element.
    Activated1,
    /// Activated out of `matching`: the next document message is at the
    /// current match level *and* opens a new (nested) activator.
    Activated2,
}

/// The child transducer. See the [module documentation](self).
#[derive(Debug)]
pub struct Child {
    /// The label `l_m` this transducer matches (wildcard matches anything
    /// except the virtual root `$`).
    label: MatchLabel,
    state: State,
    depth: Vec<Depth>,
    cond: Vec<Formula>,
    trace: Trace,
}

/// A resolved match label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchLabel {
    /// Matches every element label (but not `$`).
    Wildcard,
    /// Matches one interned symbol.
    Symbol(crate::message::Symbol),
}

impl MatchLabel {
    /// Resolve a query label against the symbol table.
    pub fn resolve(label: &Label, symbols: &mut crate::message::SymbolTable) -> MatchLabel {
        match label {
            Label::Wildcard => MatchLabel::Wildcard,
            Label::Name(n) => MatchLabel::Symbol(symbols.intern(n)),
        }
    }

    /// Does an element with interned label `sym` match?
    pub fn matches(&self, sym: crate::message::Symbol) -> bool {
        match self {
            // `_` matches every node label, but `$` is not a node label.
            MatchLabel::Wildcard => sym != crate::message::DOC_SYMBOL,
            MatchLabel::Symbol(s) => *s == sym,
        }
    }
}

impl Child {
    /// Create a child transducer for `label`.
    pub fn new(label: MatchLabel) -> Self {
        Child {
            label,
            state: State::Waiting,
            depth: Vec::new(),
            cond: Vec::new(),
            trace: Trace::default(),
        }
    }
}

impl Transducer for Child {
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match msg {
            Message::Activate(f) => match self.state {
                // (1) activation while waiting.
                State::Waiting => {
                    self.trace.fire(1);
                    self.cond.push(f);
                    self.state = State::Activated1;
                }
                // (6) activation while matching.
                State::Matching => {
                    self.trace.fire(6);
                    self.cond.push(f);
                    self.state = State::Activated2;
                }
                // Not in the paper's table: a second activation for the same
                // document message. The compiler inserts union connectors so
                // this cannot occur; merge defensively by disjunction.
                State::Activated1 | State::Activated2 => {
                    debug_assert!(false, "consecutive activations reached a child transducer");
                    if let Some(top) = self.cond.last_mut() {
                        *top = Formula::or(top.clone(), f);
                    }
                }
            },
            Message::Doc(doc) => match &doc {
                DocEvent::Open { label, .. } => {
                    let label = *label;
                    match self.state {
                        // (2) a level opens while waiting.
                        State::Waiting => {
                            self.trace.fire(2);
                            self.depth.push(Depth::Level);
                            out.push(Message::Doc(doc));
                        }
                        // (5) the activator element opens.
                        State::Activated1 => {
                            self.trace.fire(5);
                            self.depth.push(Depth::Level);
                            self.state = State::Matching;
                            out.push(Message::Doc(doc));
                        }
                        State::Matching => {
                            if self.label.matches(label) {
                                // (7) match: emit an activation with the top
                                // formula, remember the match level.
                                self.trace.fire(7);
                                let f = self.cond.last().cloned().unwrap_or(Formula::True);
                                self.depth.push(Depth::Match);
                                self.state = State::Waiting;
                                out.push(Message::Activate(f));
                                out.push(Message::Doc(doc));
                            } else {
                                // (8) no match: remember the level anyway so
                                // the close message restores `matching`.
                                self.trace.fire(8);
                                self.depth.push(Depth::Match);
                                self.state = State::Waiting;
                                out.push(Message::Doc(doc));
                            }
                        }
                        State::Activated2 => {
                            // The element both sits at the *old* activation's
                            // match level and opens the *new* activation's
                            // scope. A match therefore uses the second
                            // formula from the top (the old activation).
                            if self.label.matches(label) {
                                // (11)
                                self.trace.fire(11);
                                let n = self.cond.len();
                                debug_assert!(n >= 2, "activated2 needs two formulas");
                                let f2 = if n >= 2 {
                                    self.cond[n - 2].clone()
                                } else {
                                    self.cond.last().cloned().unwrap_or(Formula::True)
                                };
                                self.depth.push(Depth::Match);
                                self.state = State::Matching;
                                out.push(Message::Activate(f2));
                                out.push(Message::Doc(doc));
                            } else {
                                // (12)
                                self.trace.fire(12);
                                self.depth.push(Depth::Match);
                                self.state = State::Matching;
                                out.push(Message::Doc(doc));
                            }
                        }
                    }
                }
                DocEvent::Close { .. } => {
                    match (self.state, self.depth.last().copied()) {
                        // (3) closing an ordinary level while waiting.
                        (State::Waiting, Some(Depth::Level)) => {
                            self.trace.fire(3);
                            self.depth.pop();
                        }
                        // (4) closing the match level: resume matching.
                        (State::Waiting, Some(Depth::Match)) => {
                            self.trace.fire(4);
                            self.depth.pop();
                            self.state = State::Matching;
                        }
                        // (9) the activator element closes: the activation is
                        // finished, pop its formula.
                        (State::Matching, Some(Depth::Level)) => {
                            self.trace.fire(9);
                            self.depth.pop();
                            self.cond.pop();
                            self.state = State::Waiting;
                        }
                        // (10) a nested activator (from activated2) closes:
                        // drop the nested activation's formula, keep matching
                        // for the outer one.
                        (State::Matching, Some(Depth::Match)) => {
                            self.trace.fire(10);
                            self.depth.pop();
                            self.cond.pop();
                        }
                        // Defensive: close with an empty depth stack (cannot
                        // happen on well-formed input).
                        _ => {}
                    }
                    out.push(Message::Doc(doc));
                }
                // Depth-neutral content: forward (implicit transition).
                DocEvent::Item { .. } => out.push(Message::Doc(doc)),
            },
            // (13) determination: update every stored formula, forward.
            Message::Determine(c, v) => {
                self.trace.fire(13);
                for f in &mut self.cond {
                    *f = v.apply(c, f);
                }
                out.push(Message::Determine(c, v));
            }
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        (self.depth.len(), self.cond.len())
    }

    fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transducers::format_transitions;
    use crate::transducers::test_util::{fig1_stream, render};
    use spex_xml::EventStore;

    /// Drive the two-child-transducer chain of example III.1 (`a.c`) over
    /// the Fig. 1 stream and compare the transition traces to Fig. 4.
    #[test]
    fn figure_4_transition_traces() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let a = store.symbols_mut().intern("a");
        let c = store.symbols_mut().intern("c");

        let mut input = crate::transducers::input::Input::new();
        let mut t1 = Child::new(MatchLabel::Symbol(a));
        let mut t2 = Child::new(MatchLabel::Symbol(c));
        t1.set_tracing(true);
        t2.set_tracing(true);

        let mut trace1 = Vec::new();
        let mut trace2 = Vec::new();
        for msg in stream {
            let mut tape0 = Vec::new();
            input.step(msg, &mut tape0);
            let mut tape1 = Vec::new();
            for m in tape0 {
                t1.step(m, &mut tape1);
            }
            let mut tape2 = Vec::new();
            for m in tape1 {
                t2.step(m, &mut tape2);
            }
            trace1.push(format_transitions(&t1.take_transitions()));
            trace2.push(format_transitions(&t2.take_transitions()));
        }

        // Fig. 4, row T1.
        assert_eq!(
            trace1,
            vec!["1,5", "7", "2", "2", "3", "3", "2", "3", "2", "3", "4", "9"]
        );
        // Fig. 4, row T2.
        assert_eq!(
            trace2,
            vec!["2", "1,5", "8", "2", "3", "4", "8", "4", "7", "4", "9", "3"]
        );
    }

    /// The matched `<c>` of example III.1 is announced with an activation.
    #[test]
    fn example_iii_1_emits_one_match() {
        let mut store = EventStore::new();
        let stream = fig1_stream(&mut store);
        let a = store.symbols_mut().intern("a");
        let c = store.symbols_mut().intern("c");

        let mut input = crate::transducers::input::Input::new();
        let mut t1 = Child::new(MatchLabel::Symbol(a));
        let mut t2 = Child::new(MatchLabel::Symbol(c));

        let mut final_tape = Vec::new();
        for msg in stream {
            let mut tape0 = Vec::new();
            input.step(msg, &mut tape0);
            let mut tape1 = Vec::new();
            for m in tape0 {
                t1.step(m, &mut tape1);
            }
            for m in tape1 {
                t2.step(m, &mut final_tape);
            }
        }
        let activations: Vec<String> = final_tape
            .iter()
            .filter(|m| matches!(m, Message::Activate(_)))
            .map(|m| m.to_string())
            .collect();
        assert_eq!(activations, vec!["[true]"]);
        // The activation directly precedes the ninth document message
        // (the second <c> of the stream).
        let pos = final_tape
            .iter()
            .position(|m| matches!(m, Message::Activate(_)))
            .unwrap();
        assert_eq!(render(&store, &final_tape[pos + 1]), "<c>");
    }

    #[test]
    fn wildcard_matches_every_element_but_not_root() {
        assert!(MatchLabel::Wildcard.matches(5));
        assert!(!MatchLabel::Wildcard.matches(crate::message::DOC_SYMBOL));
        assert!(MatchLabel::Symbol(3).matches(3));
        assert!(!MatchLabel::Symbol(3).matches(4));
    }

    #[test]
    fn stack_sizes_track_depth() {
        let mut store = EventStore::new();
        let stream =
            crate::transducers::test_util::stream_of(&mut store, "<a><b><b><b/></b></b></a>");
        let mut t = Child::new(MatchLabel::Symbol(store.symbols_mut().intern("a")));
        let mut max_depth = 0;
        let mut out = Vec::new();
        // Never activated: the depth stack still tracks every level.
        for msg in stream {
            t.step(msg, &mut out);
            max_depth = max_depth.max(t.stack_sizes().0);
            assert_eq!(t.stack_sizes().1, 0);
        }
        assert_eq!(max_depth, 5); // $, a, b, b, b
        assert_eq!(t.stack_sizes(), (0, 0)); // balanced at end
    }

    #[test]
    fn determination_updates_stored_formulas() {
        use spex_formula::{CondVar, Formula};
        let mut t = Child::new(MatchLabel::Symbol(1));
        let v = CondVar::new(0, 1);
        let mut out = Vec::new();
        t.step(Message::Activate(Formula::Var(v)), &mut out);
        assert_eq!(t.cond, vec![Formula::Var(v)]);
        t.step(
            Message::Determine(v, crate::message::Determination::True),
            &mut out,
        );
        assert_eq!(t.cond, vec![Formula::True]);
        // The determination was forwarded.
        assert!(matches!(
            out.last(),
            Some(Message::Determine(_, crate::message::Determination::True))
        ));
    }
}
