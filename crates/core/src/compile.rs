//! Translation of rpeq into SPEX networks — the denotational semantics `C`
//! of Fig. 11 of the paper.
//!
//! `C` maps an expression and the tape it reads from to the updated network
//! and its output tape:
//!
//! ```text
//! C[(e1 | e2)](σ,t)  = SP, C[e1], C[e2], JO, UN
//! C[(e1 . e2)](σ,t)  = C[e2](C[e1](σ,t))
//! C[e?](σ,t)         = SP, C[e], JO (+ UN, see below)
//! C[label*](σ,t)     = SP, C[label+], JO (+ UN)
//! C[label](σ,t)      = CH(label)
//! C[label+](σ,t)     = CL(label)
//! C[~label](σ,t)     = FO(label)          (following-axis extension)
//! C[^label](σ,t)     = PR(label, q fresh) (preceding-axis extension)
//! C[e1[e2]](σ,t)     = C[[e2]](C[e1](σ,t))
//! C[[e]](σ,t)        = VC(q), SP, (C[e], VF(q+), VD) ⋈ JO
//! ```
//!
//! The translation runs in time linear in the query size, and the degree of
//! the resulting network is linear in the query size (Lemma V.1; asserted by
//! tests below).
//!
//! Deviation from the paper, documented in DESIGN.md §3.4: a UN connector is
//! inserted after *every* join produced for `|`, `?` and `*`. Fig. 11 only
//! lists it for `|`, but the ε-branch of `?`/`*` can deliver an activation
//! for the same document message as the sub-network branch, and two
//! consecutive activations are not accepted by any downstream transducer;
//! UN merges them into one disjunction. (For the qualifier join no UN is
//! needed: the qualifier branch ends in VD, which never emits activations.)

use crate::network::{NetworkBuilder, NetworkSpec, NodeSpec, Tape};
use crate::sink::ResultSink;
use crate::vm::{Engine, EngineRun, Plan, PlanRun};
use spex_query::Rpeq;
use std::fmt;
use std::sync::OnceLock;

/// Queries outside the compilable fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A `preceding::` step occurs inside a qualifier body. The speculative
    /// variables of the preceding transducer and the qualifier's instance
    /// variables would depend on each other cyclically, which the
    /// substitution-based determination machinery cannot resolve. Such
    /// queries are always rewritable with `following::` — e.g.
    /// `_*.a[^b]` ≡ `_*.b.~a`.
    PrecedingInQualifier {
        /// The offending qualifier expression.
        qualifier: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PrecedingInQualifier { qualifier } => write!(
                f,
                "`preceding::` (^) inside a qualifier is not supported: [{qualifier}] — \
                 rewrite with `following::` (~), e.g. `_*.a[^b]` ≡ `_*.b.~a`"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// A query compiled to a SPEX network, ready to be instantiated over
/// streams with [`CompiledNetwork::run`].
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    spec: NetworkSpec,
    query: Rpeq,
    /// The flat VM plan, lowered on first use and shared by every run.
    plan: OnceLock<Plan>,
}

impl CompiledNetwork {
    /// Compile `query` into a transducer network (Fig. 11 plus the IN source
    /// and OU sink).
    ///
    /// # Panics
    ///
    /// On the (rare) queries outside the compilable fragment — see
    /// [`CompiledNetwork::try_compile`] and [`CompileError`].
    pub fn compile(query: &Rpeq) -> CompiledNetwork {
        Self::try_compile(query).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compile, reporting unsupported constructs as errors.
    pub fn try_compile(query: &Rpeq) -> Result<CompiledNetwork, CompileError> {
        check_compilable(query)?;
        let (mut builder, tape) = NetworkBuilder::with_input();
        let tape = translate(query, &mut builder, tape);
        builder.add_sink(tape);
        Ok(CompiledNetwork {
            spec: builder.finish(),
            query: query.clone(),
            plan: OnceLock::new(),
        })
    }

    /// The network shape.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// The compiled query.
    pub fn query(&self) -> &Rpeq {
        &self.query
    }

    /// The network degree (number of transducers).
    pub fn degree(&self) -> usize {
        self.spec.degree()
    }

    /// Instantiate the network over a stream, delivering results to `sink`.
    pub fn run<'n, 's>(&'n self, sink: &'s mut dyn ResultSink) -> crate::network::Run<'n, 's> {
        crate::network::Run::new(&self.spec, vec![sink])
    }

    /// The flat VM plan, lowered from the network spec on first use and
    /// cached (see [`Plan`] and DESIGN.md §14).
    pub fn plan(&self) -> &Plan {
        self.plan.get_or_init(|| Plan::compile(&self.spec))
    }

    /// Instantiate a run on the chosen [`Engine`].
    pub fn run_engine<'n, 's>(
        &'n self,
        engine: Engine,
        sink: &'s mut dyn ResultSink,
    ) -> EngineRun<'n, 's> {
        match engine {
            Engine::Network => EngineRun::Network(self.run(sink)),
            Engine::Vm => EngineRun::Vm(PlanRun::new(self.plan(), vec![sink])),
        }
    }
}

/// Reject the constructs the network cannot realize (see [`CompileError`]).
///
/// Public so external network assemblers (the `spex-combine` multi-query
/// combiner) can pre-validate before building a shared topology.
pub fn check_compilable(query: &Rpeq) -> Result<(), CompileError> {
    fn go(q: &Rpeq, in_qualifier: bool) -> Result<(), CompileError> {
        match q {
            Rpeq::Preceding(_) if in_qualifier => Err(CompileError::PrecedingInQualifier {
                qualifier: q.to_string(),
            }),
            Rpeq::Empty
            | Rpeq::Step(_)
            | Rpeq::Plus(_)
            | Rpeq::Star(_)
            | Rpeq::Following(_)
            | Rpeq::Preceding(_) => Ok(()),
            Rpeq::Union(a, b) | Rpeq::Concat(a, b) => {
                go(a, in_qualifier)?;
                go(b, in_qualifier)
            }
            Rpeq::Optional(a) => go(a, in_qualifier),
            Rpeq::Qualified(a, qual) => {
                go(a, in_qualifier)?;
                go(qual, true)
            }
        }
    }
    go(query, false)
}

/// The function `C`. Appends `expr`'s sub-network to `builder`, reading from
/// `tape`; returns the sub-network's output tape.
///
/// Public so external network assemblers (the `spex-combine` multi-query
/// combiner) can compile individual chain steps into a shared builder;
/// callers must [`check_compilable`] first.
pub fn translate(expr: &Rpeq, builder: &mut NetworkBuilder, tape: Tape) -> Tape {
    match expr {
        // ε adds no transducer: the output tape is the input tape.
        Rpeq::Empty => tape,
        Rpeq::Step(l) => builder.chain(NodeSpec::Child(l.clone()), tape),
        Rpeq::Plus(l) => builder.chain(NodeSpec::Closure(l.clone()), tape),
        Rpeq::Following(l) => builder.chain(NodeSpec::Following(l.clone()), tape),
        Rpeq::Preceding(l) => {
            let q = builder.fresh_qualifier();
            builder.chain(NodeSpec::Preceding(l.clone(), q), tape)
        }
        Rpeq::Star(l) => {
            // label* ≡ (label+ | ε).
            let (t1, t2) = builder.split(tape);
            let t3 = builder.chain(NodeSpec::Closure(l.clone()), t2);
            let t4 = builder.join(t1, t3);
            builder.chain(NodeSpec::Union, t4)
        }
        Rpeq::Optional(e) => {
            let (t1, t2) = builder.split(tape);
            let t3 = translate(e, builder, t2);
            let t4 = builder.join(t1, t3);
            builder.chain(NodeSpec::Union, t4)
        }
        Rpeq::Union(a, b) => {
            let (t1, t2) = builder.split(tape);
            let ta = translate(a, builder, t1);
            let tb = translate(b, builder, t2);
            let tj = builder.join(ta, tb);
            builder.chain(NodeSpec::Union, tj)
        }
        Rpeq::Concat(a, b) => {
            let t1 = translate(a, builder, tape);
            translate(b, builder, t1)
        }
        Rpeq::Qualified(e, q) => {
            let te = translate(e, builder, tape);
            translate_qualifier(q, builder, te)
        }
    }
}

/// The `C[[rpeq]]` case of Fig. 11: wrap the tape in a qualifier.
pub fn translate_qualifier(qualifier: &Rpeq, builder: &mut NetworkBuilder, tape: Tape) -> Tape {
    let q = builder.fresh_qualifier();
    let tv = builder.chain(NodeSpec::VarCreator(q), tape);
    let (t1, t2) = builder.split(tv);
    let inner_start = builder.qualifier_count();
    let tq = translate(qualifier, builder, t2);
    let inner_end = builder.qualifier_count();
    let inner = (inner_start, inner_end);
    let tf = builder.chain(NodeSpec::VarFilterPos(q, inner), tq);
    let td = builder.chain(NodeSpec::VarDeterminant(q, inner), tf);
    builder.join(t1, td)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_query::QueryMetrics;

    fn compile(q: &str) -> CompiledNetwork {
        CompiledNetwork::compile(&q.parse().unwrap())
    }

    #[test]
    fn figure_12_network_shape() {
        // `_*.a[b].c` — Fig. 12 of the paper: IN, SP, CL(_), JO, (UN,)
        // CH(a), VC(q), SP, CH(b), VF(q+), VD, JO, CH(c), OU.
        let net = compile("_*.a[b].c");
        let desc = net.spec().describe();
        assert_eq!(
            desc,
            vec![
                "IN", "SP", "CL(_)", "JO", "UN", "CH(a)", "VC(q0)", "SP", "CH(b)", "VF(q0+)", "VD",
                "JO", "CH(c)", "OU"
            ]
        );
    }

    #[test]
    fn simple_chain_shapes() {
        assert_eq!(
            compile("a.c").spec().describe(),
            vec!["IN", "CH(a)", "CH(c)", "OU"]
        );
        assert_eq!(
            compile("a+.c+").spec().describe(),
            vec!["IN", "CL(a)", "CL(c)", "OU"]
        );
        assert_eq!(compile("%").spec().describe(), vec!["IN", "OU"]);
    }

    #[test]
    fn union_shape() {
        assert_eq!(
            compile("a|b").spec().describe(),
            vec!["IN", "SP", "CH(a)", "CH(b)", "JO", "UN", "OU"]
        );
    }

    #[test]
    fn optional_and_star_shapes() {
        assert_eq!(
            compile("a?").spec().describe(),
            vec!["IN", "SP", "CH(a)", "JO", "UN", "OU"]
        );
        assert_eq!(
            compile("a*").spec().describe(),
            vec!["IN", "SP", "CL(a)", "JO", "UN", "OU"]
        );
    }

    #[test]
    fn qualifiers_get_fresh_ids() {
        let net = compile("a[b].c[d]");
        let desc = net.spec().describe();
        assert!(desc.contains(&"VC(q0)".to_string()));
        assert!(desc.contains(&"VC(q1)".to_string()));
    }

    /// Lemma V.1: the degree of the network is linear in the query length.
    #[test]
    fn degree_linear_in_query_length() {
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let q = (0..n)
                .map(|i| format!("s{i}"))
                .collect::<Vec<_>>()
                .join(".");
            let net = compile(&q);
            let m = QueryMetrics::of(net.query());
            // Exactly one transducer per step, plus IN and OU.
            assert_eq!(net.degree(), m.steps + 2);
        }
        // With the richer constructs the factor stays constant (≤ 6 nodes
        // per AST node).
        for n in [1usize, 2, 4, 8] {
            let q = (0..n)
                .map(|i| format!("_*.s{i}[t{i}]"))
                .collect::<Vec<_>>()
                .join(".");
            let net = compile(&q);
            let m = QueryMetrics::of(net.query());
            assert!(
                net.degree() <= 6 * m.length + 2,
                "{} vs {}",
                net.degree(),
                m.length
            );
        }
    }

    #[test]
    fn nested_qualifier_network_compiles() {
        let net = compile("_*.a[b[c]|d]._");
        assert!(net.degree() > 10);
        // Sanity: exactly one IN and one OU.
        let desc = net.spec().describe();
        assert_eq!(desc.iter().filter(|d| *d == "IN").count(), 1);
        assert_eq!(desc.iter().filter(|d| *d == "OU").count(), 1);
    }

    #[test]
    fn dump_is_readable() {
        let dump = compile("a[b]").spec().dump();
        assert!(dump.contains("VC(q0)"));
        assert!(dump.contains("<- ["));
    }
}
