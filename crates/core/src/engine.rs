//! The user-facing evaluator: couples an XML event source with a compiled
//! network run.
//!
//! ```
//! use spex_core::{CompiledNetwork, Evaluator, FragmentCollector};
//!
//! let net = CompiledNetwork::compile(&"_*.c".parse().unwrap());
//! let mut sink = FragmentCollector::new();
//! let mut eval = Evaluator::new(&net, &mut sink);
//! eval.push_str("<a><c>1</c><b><c>2</c></b></a>").unwrap();
//! let stats = eval.finish();
//! assert_eq!(sink.fragments(), ["<c>1</c>".to_string(), "<c>2</c>".to_string()]);
//! assert_eq!(stats.results, 2);
//! ```

use crate::compile::CompiledNetwork;
use crate::limits::{LimitBreach, LimitKind, ResourceLimits};
use crate::sink::{FragmentCollector, ResultSink};
use crate::stats::{EngineStats, Tap, TransducerStats};
use crate::vm::{Engine, EngineRun};
use spex_query::Rpeq;
use spex_xml::{XmlError, XmlEvent};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Errors surfaced by the evaluator and the convenience functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The query text did not parse.
    Query(spex_query::ParseError),
    /// The query parsed but lies outside the compilable fragment.
    Compile(crate::compile::CompileError),
    /// The XML stream was malformed.
    Xml(XmlError),
    /// A configured [`ResourceLimits`] cap was exceeded. Recoverable: the
    /// run is drained (already-determined results flushed, buffers
    /// released) but stays queryable for statistics.
    ResourceExhausted {
        /// The exceeded cap.
        kind: LimitKind,
        /// The configured cap value.
        limit: u64,
        /// The measured value that exceeded it.
        observed: u64,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Query(e) => write!(f, "{e}"),
            EvalError::Compile(e) => write!(f, "{e}"),
            EvalError::Xml(e) => write!(f, "{e}"),
            EvalError::ResourceExhausted {
                kind,
                limit,
                observed,
            } => {
                write!(
                    f,
                    "{}",
                    LimitBreach {
                        kind: *kind,
                        limit: *limit,
                        observed: *observed
                    }
                )
            }
        }
    }
}

impl std::error::Error for EvalError {
    /// Uniform source chaining: each wrapping variant exposes the
    /// underlying error, so `anyhow`-style consumers and the CLI's exit-code
    /// mapping can walk the chain.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Query(e) => Some(e),
            EvalError::Compile(e) => Some(e),
            EvalError::Xml(e) => Some(e),
            EvalError::ResourceExhausted { .. } => None,
        }
    }
}

impl From<LimitBreach> for EvalError {
    fn from(b: LimitBreach) -> Self {
        EvalError::ResourceExhausted {
            kind: b.kind,
            limit: b.limit,
            observed: b.observed,
        }
    }
}

impl From<spex_query::ParseError> for EvalError {
    fn from(e: spex_query::ParseError) -> Self {
        EvalError::Query(e)
    }
}

impl From<XmlError> for EvalError {
    fn from(e: XmlError) -> Self {
        EvalError::Xml(e)
    }
}

impl From<crate::compile::CompileError> for EvalError {
    fn from(e: crate::compile::CompileError) -> Self {
        EvalError::Compile(e)
    }
}

/// A streaming evaluation of one compiled query over one stream.
///
/// Push events (or whole documents) as they arrive; results reach the sink
/// progressively. The evaluator survives multiple consecutive documents on
/// the same stream (each `<$>…</$>` pair is processed independently, as in
/// the paper's infinite-stream experiments) — transducer stacks are balanced
/// and return to their initial states at every `</$>`.
///
/// Evaluation runs on the default [`Engine`] (the compiled VM) unless an
/// engine is chosen explicitly with [`Evaluator::with_engine`].
pub struct Evaluator<'n, 's> {
    run: EngineRun<'n, 's>,
}

impl<'n, 's> Evaluator<'n, 's> {
    /// Start an evaluation of `network` delivering results to `sink`, on the
    /// default [`Engine`].
    pub fn new(network: &'n CompiledNetwork, sink: &'s mut dyn ResultSink) -> Self {
        Self::with_engine(network, sink, Engine::default())
    }

    /// Like [`Evaluator::new`], on an explicitly chosen [`Engine`].
    pub fn with_engine(
        network: &'n CompiledNetwork,
        sink: &'s mut dyn ResultSink,
        engine: Engine,
    ) -> Self {
        Evaluator {
            run: network.run_engine(engine, sink),
        }
    }

    /// Like [`Evaluator::new`], with resource caps attached. Each cap is
    /// checked after every event; a breached run returns
    /// [`EvalError::ResourceExhausted`] from the push methods and refuses
    /// further input, but statistics remain readable and results already
    /// determined have reached the sink.
    pub fn with_limits(
        network: &'n CompiledNetwork,
        sink: &'s mut dyn ResultSink,
        limits: ResourceLimits,
    ) -> Self {
        Self::with_engine_limits(network, sink, Engine::default(), limits)
    }

    /// Like [`Evaluator::with_limits`], on an explicitly chosen [`Engine`].
    pub fn with_engine_limits(
        network: &'n CompiledNetwork,
        sink: &'s mut dyn ResultSink,
        engine: Engine,
        limits: ResourceLimits,
    ) -> Self {
        let mut run = network.run_engine(engine, sink);
        run.set_limits(limits);
        Evaluator { run }
    }

    /// The engine this evaluation runs on.
    pub fn engine(&self) -> Engine {
        self.run.engine()
    }

    /// Feed one stream event. Infallible: after a resource-limit breach the
    /// event is silently discarded (use [`Evaluator::try_push`] to observe
    /// the breach; with no limits set nothing is ever discarded).
    pub fn push(&mut self, event: XmlEvent) {
        self.run.push(event);
    }

    /// Feed one stream event, reporting a resource-limit breach.
    pub fn try_push(&mut self, event: XmlEvent) -> Result<(), EvalError> {
        self.run.try_push(event)
    }

    /// Parse `xml` and feed every event (one complete document).
    pub fn push_str(&mut self, xml: &str) -> Result<(), EvalError> {
        let mut reader = spex_xml::Reader::from_bytes(xml.as_bytes().to_vec());
        self.push_from(&mut reader)
    }

    /// Feed every event from a byte source (streaming, constant memory).
    pub fn push_reader<R: std::io::Read>(&mut self, input: R) -> Result<(), EvalError> {
        let mut reader = spex_xml::Reader::new(input);
        self.push_from(&mut reader)
    }

    /// Drain an already-configured reader through the zero-copy path: each
    /// event is parsed straight into the run's event arena
    /// ([`spex_xml::Reader::next_into`]) and pushed by handle, so the hot
    /// loop moves `u32`s, not strings. Stops at the first reader error or
    /// resource-limit breach.
    pub fn push_from<R: std::io::Read>(
        &mut self,
        reader: &mut spex_xml::Reader<R>,
    ) -> Result<(), EvalError> {
        loop {
            match reader.next_into(self.run.store_mut()) {
                Ok(Some(id)) => self.run.try_push_id(id)?,
                Ok(None) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Feed exactly one event from the reader through the zero-copy path.
    /// Returns `Ok(Some(true))` when the event closed a document (`</$>` —
    /// the quiescent boundary where [`Evaluator::checkpoint`] is legal,
    /// after [`Evaluator::reset_session`]), `Ok(Some(false))` for any other
    /// event, and `Ok(None)` at end of input.
    pub fn push_step<R: std::io::Read>(
        &mut self,
        reader: &mut spex_xml::Reader<R>,
    ) -> Result<Option<bool>, EvalError> {
        match reader.next_into(self.run.store_mut()) {
            Ok(Some(id)) => {
                let end = self.run.store().stored(id).kind == spex_xml::StoredKind::EndDocument;
                self.run.try_push_id(id)?;
                Ok(Some(end))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The first limit breach, if any cap was exceeded.
    pub fn exhausted(&self) -> Option<LimitBreach> {
        self.run.exhausted()
    }

    /// Reset the evaluator for the next document of a long-lived session:
    /// drops stale candidate buffers, recycles the event arena, and truncates
    /// the symbol table back to the query-label baseline, while keeping the
    /// compiled network, accumulated statistics, and allocated capacity. See
    /// [`crate::network::Run::reset_session`].
    pub fn reset_session(&mut self) {
        self.run.reset_session();
    }

    /// Capture the run's accumulator state at a quiescent document boundary
    /// (see [`crate::network::Run::checkpoint`]). Call right after
    /// [`Evaluator::reset_session`]; returns
    /// [`crate::SnapshotError::NotQuiescent`] anywhere else.
    pub fn checkpoint(&self) -> Result<crate::Snapshot, crate::SnapshotError> {
        self.run.checkpoint()
    }

    /// Restore a snapshot into this freshly built evaluator (see
    /// [`crate::network::Run::restore`]). The snapshot may come from either
    /// engine.
    pub fn restore(&mut self, snap: &crate::Snapshot) -> Result<(), crate::SnapshotError> {
        self.run.restore(snap)
    }

    /// Attach a live observability tap (see [`Tap`]).
    pub fn set_tap(&mut self, tap: Rc<RefCell<dyn Tap>>) {
        self.run.set_tap(tap);
    }

    /// Attach a trace export handle (see [`crate::network::Run::set_tracer`]): the engine
    /// emits its counters, buffer high-water marks and per-output-node
    /// determination-latency histograms when the evaluation finishes.
    pub fn set_tracer(&mut self, tracer: spex_trace::Tracer) {
        self.run.set_tracer(tracer);
    }

    /// Determination-latency histograms, one `(node id, histogram)` pair
    /// per output node (see [`crate::network::Run::determination_latency`]). Latency is
    /// counted in *events* between a candidate entering the output buffer
    /// and its condition formula becoming determined — the paper's
    /// earliness measure. Snapshot the value before calling
    /// [`Evaluator::finish`] (which consumes the evaluator); end-of-stream
    /// determinations are folded in once the stream's end has been pushed.
    pub fn determination_latency(&self) -> Vec<(usize, spex_trace::Histogram)> {
        self.run.determination_latency()
    }

    /// Per-transducer snapshots so far, indexed by node id.
    pub fn transducer_stats(&self) -> &[TransducerStats] {
        self.run.transducer_stats()
    }

    /// Enable transition tracing (see [`crate::network::Run::set_tracing`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.run.set_tracing(on);
    }

    /// Drain per-node transition traces.
    pub fn take_traces(&mut self) -> Vec<String> {
        self.run.take_traces()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &EngineStats {
        self.run.stats()
    }

    /// Finish the evaluation, flushing the output transducer.
    pub fn finish(self) -> EngineStats {
        self.run.finish()
    }

    /// Like [`Evaluator::finish`], also returning the per-transducer
    /// snapshots.
    pub fn finish_full(self) -> (EngineStats, Vec<TransducerStats>) {
        self.run.finish_full()
    }
}

/// Evaluate a query (text syntax) against a complete XML document, returning
/// the serialized result fragments in document order.
pub fn evaluate_str(query: &str, xml: &str) -> Result<Vec<String>, EvalError> {
    let q: Rpeq = query.parse()?;
    let net = CompiledNetwork::try_compile(&q)?;
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    eval.push_str(xml)?;
    eval.finish();
    Ok(sink.into_fragments())
}

/// Evaluate a parsed query against an event sequence.
pub fn evaluate_events(
    query: &Rpeq,
    events: impl IntoIterator<Item = XmlEvent>,
) -> (Vec<String>, EngineStats) {
    let net = CompiledNetwork::compile(query);
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::new(&net, &mut sink);
    for ev in events {
        eval.push(ev);
    }
    let stats = eval.finish();
    (sink.into_fragments(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    #[test]
    fn example_iii_1_child_steps() {
        // `a.c` selects c-children of a-children of the root: only the
        // second <c>.
        assert_eq!(evaluate_str("a.c", FIG1).unwrap(), vec!["<c></c>"]);
    }

    #[test]
    fn example_iii_2_closures() {
        // `a+.c+` selects both <c> elements (each reached through a chain of
        // a's then a chain of c's).
        assert_eq!(
            evaluate_str("a+.c+", FIG1).unwrap(),
            vec!["<c></c>", "<c></c>"]
        );
    }

    #[test]
    fn complete_example_iii_10() {
        // `_*.a[b].c`: candidate₁ (the inner c) is dropped — its a-parent
        // has no b child; candidate₂ (the outer c) is a result.
        assert_eq!(evaluate_str("_*.a[b].c", FIG1).unwrap(), vec!["<c></c>"]);
    }

    #[test]
    fn wildcard_and_descendants() {
        let xml = "<r><x><y/></x><y/></r>";
        assert_eq!(
            evaluate_str("_*.y", xml).unwrap(),
            vec!["<y></y>", "<y></y>"]
        );
        assert_eq!(evaluate_str("r.y", xml).unwrap(), vec!["<y></y>"]);
        assert_eq!(evaluate_str("r.x.y", xml).unwrap(), vec!["<y></y>"]);
    }

    #[test]
    fn nested_results_from_wildcard_query() {
        // Class-3 query `_*._`: every element is a result, fragments nest.
        let frags = evaluate_str("_*._", "<r><x><y/></x></r>").unwrap();
        assert_eq!(
            frags,
            vec!["<r><x><y></y></x></r>", "<x><y></y></x>", "<y></y>"]
        );
    }

    #[test]
    fn union_queries() {
        let xml = "<r><x/><y/><z/></r>";
        assert_eq!(
            evaluate_str("r.(x|z)", xml).unwrap(),
            vec!["<x></x>", "<z></z>"]
        );
    }

    #[test]
    fn optional_queries() {
        let xml = "<r><x><y/></x><y/></r>";
        // r.x?.y — y children of r or of x-children of r.
        let frags = evaluate_str("r.x?.y", xml).unwrap();
        assert_eq!(frags, vec!["<y></y>", "<y></y>"]);
    }

    #[test]
    fn star_queries() {
        let xml = "<r><a><a><b/></a></a><b/></r>";
        // r.a*.b — b children of r, r/a, r/a/a.
        let frags = evaluate_str("r.a*.b", xml).unwrap();
        assert_eq!(frags, vec!["<b></b>", "<b></b>"]);
    }

    #[test]
    fn epsilon_selects_the_document() {
        let frags = evaluate_str("%", "<r><x/></r>").unwrap();
        assert_eq!(frags, vec!["<r><x></x></r>"]);
    }

    #[test]
    fn qualifier_with_descendant_condition() {
        let xml = "<lib><book><meta><isbn/></meta></book><book/></lib>";
        // Books having an isbn somewhere below.
        let frags = evaluate_str("lib.book[_*.isbn]", xml).unwrap();
        assert_eq!(frags, vec!["<book><meta><isbn></isbn></meta></book>"]);
    }

    #[test]
    fn past_conditions_stream_immediately() {
        // Class-4 style: the qualifier is satisfied *before* the candidate
        // appears, so the result streams without buffering.
        let xml = "<r><a><b/><c>late</c></a></r>";
        let q: Rpeq = "_*.a[b].c".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        let mut sink = FragmentCollector::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        eval.push_str(xml).unwrap();
        eval.finish();
        assert_eq!(sink.fragments(), ["<c>late</c>".to_string()]);
        let (start, first_delivery) = sink.timing[0];
        // Delivered the moment it started: past condition.
        assert_eq!(start, first_delivery);
    }

    #[test]
    fn future_conditions_buffer_until_determined() {
        // Class-2 style: the qualifier is satisfied *after* the candidate.
        let xml = "<r><a><c>early</c><b/></a></r>";
        let q: Rpeq = "_*.a[b].c".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        let mut sink = FragmentCollector::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        eval.push_str(xml).unwrap();
        eval.finish();
        assert_eq!(sink.fragments(), ["<c>early</c>".to_string()]);
        let (start, first_delivery) = sink.timing[0];
        assert!(first_delivery > start, "future condition must buffer");
    }

    #[test]
    fn text_content_is_preserved_in_fragments() {
        let frags = evaluate_str("r.x", "<r><x a=\"1\">t<y>u</y>v</x></r>").unwrap();
        assert_eq!(frags, vec![r#"<x a="1">t<y>u</y>v</x>"#]);
    }

    #[test]
    fn multiple_documents_on_one_stream() {
        // SDI scenario: consecutive documents, same evaluator.
        let q: Rpeq = "r.x".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        let mut sink = FragmentCollector::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        for _ in 0..3 {
            eval.push_str("<r><x/></r>").unwrap();
        }
        let stats = eval.finish();
        assert_eq!(sink.fragments().len(), 3);
        assert_eq!(stats.results, 3);
    }

    #[test]
    fn session_reuse_keeps_arena_and_symbols_bounded() {
        // Satellite regression, on both engines: 1000 documents with
        // disjoint vocabularies through one evaluator. Without the
        // between-document reset the symbol table would grow by one name
        // per document; with it both the table and the arena high-water
        // mark stay bounded by a single document's footprint — and the VM's
        // `reset_session` must uphold exactly the bounds the interpreter
        // run does.
        let q: Rpeq = "r.x".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        for engine in Engine::ALL {
            let mut sink = FragmentCollector::new();
            let mut eval = Evaluator::with_engine(&net, &mut sink, engine);
            let mut first_doc_peak = 0;
            for i in 0..1000 {
                let xml = format!("<r><unique{i}/><x>doc {i}</x></r>");
                eval.push_str(&xml).unwrap();
                if i == 0 {
                    first_doc_peak = eval.stats().peak_arena_bytes;
                }
                eval.reset_session();
            }
            let stats = eval.finish();
            assert_eq!(stats.results, 1000, "{engine}");
            assert_eq!(sink.fragments().len(), 1000, "{engine}");
            // Symbols: $, r, x, plus at most one live per-document name.
            assert!(
                stats.interned_symbols <= 4,
                "symbol table leaked on {engine}: {} interned",
                stats.interned_symbols
            );
            // The arena never held more than one document's events
            // (documents grow by ~one digit of the counter; allow slack
            // for that).
            assert!(
                stats.peak_arena_bytes <= first_doc_peak + 64,
                "arena leaked on {engine}: peak {} vs first-document peak {}",
                stats.peak_arena_bytes,
                first_doc_peak
            );
        }
    }

    #[test]
    fn reset_session_discards_stale_candidates() {
        // Cut a document off while a candidate is still buffered
        // undetermined; after the reset the next document must see none of
        // it.
        let q: Rpeq = "_*.a[b].c".parse().unwrap();
        let net = CompiledNetwork::compile(&q);
        let mut sink = FragmentCollector::new();
        let mut eval = Evaluator::new(&net, &mut sink);
        let events = spex_xml::reader::parse_events("<a><c>stale</c><b/></a>").unwrap();
        // Stop right after </c>: the candidate is complete but its
        // b-qualifier is still undetermined, so it sits buffered.
        for ev in events.iter().take(5) {
            eval.push(ev.clone());
        }
        assert!(eval.stats().peak_buffered_events > 0);
        eval.reset_session();
        eval.push_str("<a><c>fresh</c><b/></a>").unwrap();
        eval.finish();
        assert_eq!(sink.fragments(), ["<c>fresh</c>".to_string()]);
    }

    #[test]
    fn no_match_no_results() {
        assert!(evaluate_str("nope", FIG1).unwrap().is_empty());
        assert!(evaluate_str("a.nope.c", FIG1).unwrap().is_empty());
        assert!(evaluate_str("_*.a[nope]", FIG1).unwrap().is_empty());
    }

    #[test]
    fn query_errors_reported() {
        assert!(matches!(
            evaluate_str("a..b", "<a/>"),
            Err(EvalError::Query(_))
        ));
        assert!(matches!(evaluate_str("a", "<a"), Err(EvalError::Xml(_))));
    }

    #[test]
    fn stats_populated() {
        let q: Rpeq = "_*.a[b].c".parse().unwrap();
        let (frags, stats) = evaluate_events(&q, spex_xml::reader::parse_events(FIG1).unwrap());
        assert_eq!(frags.len(), 1);
        assert_eq!(stats.ticks, 12);
        assert_eq!(stats.vars_created, 2); // co1, co2 of §III.10
        assert_eq!(stats.candidates_created, 2); // candidate1 and candidate2
        assert_eq!(stats.results, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.max_stream_depth, 4); // $, a, a, c
    }
}
