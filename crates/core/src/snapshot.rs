//! Durable run-state snapshots: a compact, versioned, checksummed binary
//! serialization of everything an evaluator needs to resume a run at a
//! document boundary.
//!
//! # Why document boundaries
//!
//! The engine's state compresses sharply at *quiescent* points: once every
//! output candidate is determined, the event arena is empty, the per-node
//! pushdown stacks are at depth zero, and the inter-transducer inboxes are
//! drained. After [`crate::network::Run::reset_session`] the live transducer
//! state is byte-for-byte what a freshly built network would hold — so a
//! snapshot needs only the *accumulators*: engine statistics, per-node
//! statistics, determination-latency histograms, the condition-variable
//! serial high-water mark, the interned symbol list, and (for fault-tolerant
//! runs) the quarantine sets and damage intervals. That is what this module
//! serializes. The format nonetheless carries an arena section, so a future
//! mid-document checkpoint is a new section payload, not a new format.
//!
//! # Wire format
//!
//! ```text
//! magic "SPXS" | version u32 LE | payload-len u32 LE | crc32 u32 LE | payload
//! ```
//!
//! The payload is a sequence of tagged sections (`tag u8 | len u32 LE |
//! body`); unknown tags are skipped, which is the forward-compatibility
//! mechanism within a version. All integers are little-endian; strings are
//! `len u32 LE` + UTF-8 bytes. Decoding is total: corrupt or truncated input
//! of any shape yields a structured [`SnapshotError`], never a panic.

use crate::limits::{LimitBreach, LimitKind, ResourceLimits};
use crate::stats::{EngineStats, TransducerStats};
use crate::vm::Engine;
use spex_trace::Histogram;
use spex_xml::{Attribute, Fault, FaultAction, FaultKind, Position, XmlEvent};

/// The four magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SPXS";

/// The current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const SEC_CORE: u8 = 1;
const SEC_SYMBOLS: u8 = 2;
const SEC_ARENA: u8 = 3;
const SEC_SESSION: u8 = 4;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven. Shared with the server's
// write-ahead log records, so the whole durability layer has one checksum.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`. Used for snapshot payloads and WAL records.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong taking, encoding, or decoding a snapshot.
/// Decoding is total: arbitrary bytes produce one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the declared structure did.
    Truncated,
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the header.
    BadChecksum {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the payload.
        found: u32,
    },
    /// The bytes are structurally invalid (bad enum tag, length overrun,
    /// invalid UTF-8, missing required section, …).
    Corrupt(String),
    /// A checkpoint was requested while the run was not at a quiescent
    /// document boundary (open elements, undetermined candidates, or a
    /// non-empty arena).
    NotQuiescent,
    /// The snapshot does not fit the run it is being restored into
    /// (different network shape, sink count, or query labels).
    Mismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "snapshot checksum mismatch (header {expected:#010x}, payload {found:#010x})"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::NotQuiescent => {
                write!(f, "run is not at a quiescent document boundary")
            }
            SnapshotError::Mismatch(what) => write!(f, "snapshot does not match run: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(what: &str) -> SnapshotError {
    SnapshotError::Corrupt(what.to_string())
}

// ---------------------------------------------------------------------------
// Snapshot model
// ---------------------------------------------------------------------------

/// One quarantined (still-withheld) result fragment, exported from a
/// [`crate::recover::Quarantine`] so fault reports survive a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentState {
    /// Emitted-event index at which the fragment's match started.
    pub start: u64,
    /// Emitted-event index of the last event observed for it.
    pub last: u64,
    /// Emitted-event index at which its condition was determined.
    pub delivered: u64,
    /// The buffered fragment events, owned.
    pub events: Vec<XmlEvent>,
}

/// Consumer-side continuation state carried alongside the engine
/// accumulators: reader resume point, prior faults, quarantine sets, and
/// per-query delivery counts. Everything the *driver* of an evaluation
/// (server session, CLI loop, crash-diff rig) needs to pick up where the
/// crashed process left off.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionState {
    /// Faults recorded before the checkpoint (the resumed reader starts
    /// with an empty fault log; reports concatenate these in front).
    pub faults: Vec<Fault>,
    /// Per-query quarantined fragments (order = query registration order;
    /// single-query runs use one entry).
    pub quarantines: Vec<Vec<FragmentState>>,
    /// Per-query count of result fragments already delivered downstream.
    pub delivered: Vec<u64>,
    /// Events the reader had emitted at the checkpoint (the next tick).
    pub reader_emitted: u64,
    /// Byte position of the reader at the checkpoint. Input replay skips
    /// exactly `position.offset` bytes.
    pub position: Position,
    /// A `<` was consumed while detecting the document boundary (see
    /// `Reader::resume_point`).
    pub lt_consumed: bool,
    /// Documents fully evaluated before the checkpoint.
    pub documents: u64,
}

/// A decoded run-state snapshot: the full accumulator state of one engine
/// run at a quiescent document boundary, plus optional session state.
///
/// Produced by `Run::checkpoint`/`PlanRun::checkpoint` (or
/// [`crate::Evaluator::checkpoint`]), serialized with [`Snapshot::encode`],
/// revived with [`Snapshot::decode`] and applied with `restore`. Snapshots
/// are engine-portable: a state captured from the interpreter network
/// restores into the compiled VM and vice versa (the node-kind list is the
/// shape witness), which is what makes the interpreter snapshot usable as a
/// cross-engine oracle.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Engine that took the snapshot (informational; restore is
    /// cross-engine).
    pub engine: Engine,
    /// Ticks (document messages) pushed before the checkpoint.
    pub tick: u64,
    /// Engine-level accumulated statistics.
    pub stats: EngineStats,
    /// Per-node accumulated statistics; the `kind` strings double as the
    /// network-shape witness checked on restore.
    pub transducers: Vec<TransducerStats>,
    /// Condition-variable serials minted so far.
    pub minted: u32,
    /// Per-output determination-latency accumulators.
    pub det_latency: Vec<Histogram>,
    /// A resource breach recorded before the checkpoint, if any.
    pub exhausted: Option<LimitBreach>,
    /// The resource limits the run was configured with.
    pub limits: ResourceLimits,
    /// High-water mark of the event arena, in bytes.
    pub arena_peak: u64,
    /// The full interned symbol list (the run's query-label baseline is a
    /// prefix of this; restore verifies the prefix and interns the tail).
    pub symbols: Vec<String>,
    /// Arena events live at the checkpoint (empty at quiescence; carried so
    /// the format already covers mid-document state).
    pub arena: Vec<XmlEvent>,
    /// Driver continuation state, when the producer attached one.
    pub session: Option<SessionState>,
}

// ---------------------------------------------------------------------------
// Little-endian primitives
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).unwrap_or(u32::MAX));
    buf.extend_from_slice(s.as_bytes());
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn put_opt_usize(buf: &mut Vec<u8>, v: Option<usize>) {
    match v {
        Some(v) => {
            put_u8(buf, 1);
            put_usize(buf, v);
        }
        None => put_u8(buf, 0),
    }
}

/// Bounds-checked little-endian reader over a byte slice. Every accessor
/// returns a [`SnapshotError`] instead of slicing out of range.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| corrupt("size does not fit this platform"))
    }

    fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("invalid boolean")),
        }
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.count(1)?;
        let b = self.bytes(n)?;
        std::str::from_utf8(b)
            .map(str::to_string)
            .map_err(|_| corrupt("invalid UTF-8 string"))
    }

    /// Read an element count and sanity-check it against the bytes left
    /// (`min_elem` = smallest possible encoding of one element), so a
    /// corrupted length cannot trigger a huge allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(corrupt("length field exceeds remaining bytes"));
        }
        Ok(n)
    }

    fn opt_usize(&mut self) -> Result<Option<usize>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            _ => Err(corrupt("invalid option flag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Domain codecs
// ---------------------------------------------------------------------------

fn engine_tag(e: Engine) -> u8 {
    match e {
        Engine::Vm => 0,
        Engine::Network => 1,
    }
}

fn engine_from(tag: u8) -> Result<Engine, SnapshotError> {
    match tag {
        0 => Ok(Engine::Vm),
        1 => Ok(Engine::Network),
        _ => Err(corrupt("invalid engine tag")),
    }
}

fn limit_kind_tag(k: LimitKind) -> u8 {
    match k {
        LimitKind::StreamDepth => 0,
        LimitKind::BufferedEvents => 1,
        LimitKind::BufferedBytes => 2,
        LimitKind::LiveCandidates => 3,
        LimitKind::FormulaSize => 4,
        LimitKind::TotalMessages => 5,
    }
}

fn limit_kind_from(tag: u8) -> Result<LimitKind, SnapshotError> {
    Ok(match tag {
        0 => LimitKind::StreamDepth,
        1 => LimitKind::BufferedEvents,
        2 => LimitKind::BufferedBytes,
        3 => LimitKind::LiveCandidates,
        4 => LimitKind::FormulaSize,
        5 => LimitKind::TotalMessages,
        _ => return Err(corrupt("invalid limit kind")),
    })
}

fn fault_kind_tag(k: FaultKind) -> u8 {
    match k {
        FaultKind::MismatchedClose => 0,
        FaultKind::StrayClose => 1,
        FaultKind::BadEntity => 2,
        FaultKind::Garbage => 3,
        FaultKind::TrailingContent => 4,
        FaultKind::Truncated => 5,
    }
}

fn fault_kind_from(tag: u8) -> Result<FaultKind, SnapshotError> {
    Ok(match tag {
        0 => FaultKind::MismatchedClose,
        1 => FaultKind::StrayClose,
        2 => FaultKind::BadEntity,
        3 => FaultKind::Garbage,
        4 => FaultKind::TrailingContent,
        5 => FaultKind::Truncated,
        _ => return Err(corrupt("invalid fault kind")),
    })
}

fn fault_action_tag(a: FaultAction) -> u8 {
    match a {
        FaultAction::AutoClosed => 0,
        FaultAction::Dropped => 1,
        FaultAction::Replaced => 2,
        FaultAction::SkippedSubtree => 3,
        FaultAction::SynthesizedCloses => 4,
    }
}

fn fault_action_from(tag: u8) -> Result<FaultAction, SnapshotError> {
    Ok(match tag {
        0 => FaultAction::AutoClosed,
        1 => FaultAction::Dropped,
        2 => FaultAction::Replaced,
        3 => FaultAction::SkippedSubtree,
        4 => FaultAction::SynthesizedCloses,
        _ => return Err(corrupt("invalid fault action")),
    })
}

fn put_position(buf: &mut Vec<u8>, p: Position) {
    put_u64(buf, p.offset);
    put_u32(buf, p.line);
    put_u32(buf, p.column);
}

fn get_position(d: &mut Dec<'_>) -> Result<Position, SnapshotError> {
    Ok(Position {
        offset: d.u64()?,
        line: d.u32()?,
        column: d.u32()?,
    })
}

fn put_fault(buf: &mut Vec<u8>, f: &Fault) {
    put_u8(buf, fault_kind_tag(f.kind));
    put_position(buf, f.position);
    put_u8(buf, fault_action_tag(f.action));
    put_str(buf, &f.detail);
    put_u64(buf, f.event_from);
    put_u64(buf, f.event_to);
}

fn get_fault(d: &mut Dec<'_>) -> Result<Fault, SnapshotError> {
    Ok(Fault {
        kind: fault_kind_from(d.u8()?)?,
        position: get_position(d)?,
        action: fault_action_from(d.u8()?)?,
        detail: d.str()?,
        event_from: d.u64()?,
        event_to: d.u64()?,
    })
}

fn put_event(buf: &mut Vec<u8>, ev: &XmlEvent) {
    match ev {
        XmlEvent::StartDocument => put_u8(buf, 0),
        XmlEvent::EndDocument => put_u8(buf, 1),
        XmlEvent::StartElement { name, attributes } => {
            put_u8(buf, 2);
            put_str(buf, name);
            put_u32(buf, u32::try_from(attributes.len()).unwrap_or(u32::MAX));
            for a in attributes {
                put_str(buf, &a.name);
                put_str(buf, &a.value);
            }
        }
        XmlEvent::EndElement { name } => {
            put_u8(buf, 3);
            put_str(buf, name);
        }
        XmlEvent::Text(t) => {
            put_u8(buf, 4);
            put_str(buf, t);
        }
        XmlEvent::Comment(c) => {
            put_u8(buf, 5);
            put_str(buf, c);
        }
        XmlEvent::ProcessingInstruction { target, data } => {
            put_u8(buf, 6);
            put_str(buf, target);
            put_str(buf, data);
        }
    }
}

fn get_event(d: &mut Dec<'_>) -> Result<XmlEvent, SnapshotError> {
    Ok(match d.u8()? {
        0 => XmlEvent::StartDocument,
        1 => XmlEvent::EndDocument,
        2 => {
            let name = d.str()?;
            let n = d.count(8)?;
            let mut attributes = Vec::with_capacity(n);
            for _ in 0..n {
                let name = d.str()?;
                let value = d.str()?;
                attributes.push(Attribute { name, value });
            }
            XmlEvent::StartElement { name, attributes }
        }
        3 => XmlEvent::EndElement { name: d.str()? },
        4 => XmlEvent::Text(d.str()?),
        5 => XmlEvent::Comment(d.str()?),
        6 => XmlEvent::ProcessingInstruction {
            target: d.str()?,
            data: d.str()?,
        },
        _ => return Err(corrupt("invalid event tag")),
    })
}

fn put_histogram(buf: &mut Vec<u8>, h: &Histogram) {
    let raw = h.export_raw();
    put_u32(buf, u32::try_from(raw.len()).unwrap_or(u32::MAX));
    for v in raw {
        put_u64(buf, v);
    }
}

fn get_histogram(d: &mut Dec<'_>) -> Result<Histogram, SnapshotError> {
    let n = d.count(8)?;
    let mut raw = Vec::with_capacity(n);
    for _ in 0..n {
        raw.push(d.u64()?);
    }
    Histogram::import_raw(&raw).ok_or_else(|| corrupt("invalid histogram state"))
}

fn put_fragment(buf: &mut Vec<u8>, f: &FragmentState) {
    put_u64(buf, f.start);
    put_u64(buf, f.last);
    put_u64(buf, f.delivered);
    put_u32(buf, u32::try_from(f.events.len()).unwrap_or(u32::MAX));
    for ev in &f.events {
        put_event(buf, ev);
    }
}

fn get_fragment(d: &mut Dec<'_>) -> Result<FragmentState, SnapshotError> {
    let start = d.u64()?;
    let last = d.u64()?;
    let delivered = d.u64()?;
    let n = d.count(1)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(d)?);
    }
    Ok(FragmentState {
        start,
        last,
        delivered,
        events,
    })
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

fn encode_core(s: &Snapshot) -> Vec<u8> {
    let mut b = Vec::new();
    put_u8(&mut b, engine_tag(s.engine));
    put_u64(&mut b, s.tick);
    let st = &s.stats;
    put_u64(&mut b, st.ticks);
    put_u64(&mut b, st.messages);
    put_usize(&mut b, st.max_formula_size);
    put_usize(&mut b, st.max_cond_stack);
    put_usize(&mut b, st.max_depth_stack);
    put_usize(&mut b, st.max_stream_depth);
    put_usize(&mut b, st.peak_buffered_events);
    put_usize(&mut b, st.peak_live_candidates);
    put_u64(&mut b, st.candidates_created);
    put_u64(&mut b, st.results);
    put_u64(&mut b, st.dropped);
    put_u64(&mut b, st.vars_created);
    put_usize(&mut b, st.peak_arena_bytes);
    put_usize(&mut b, st.interned_symbols);
    put_u32(&mut b, s.minted);
    put_u64(&mut b, s.arena_peak);
    match s.exhausted {
        Some(x) => {
            put_u8(&mut b, 1);
            put_u8(&mut b, limit_kind_tag(x.kind));
            put_u64(&mut b, x.limit);
            put_u64(&mut b, x.observed);
        }
        None => put_u8(&mut b, 0),
    }
    let l = &s.limits;
    put_opt_usize(&mut b, l.max_stream_depth);
    put_opt_usize(&mut b, l.max_buffered_events);
    put_opt_usize(&mut b, l.max_buffered_bytes);
    put_opt_usize(&mut b, l.max_live_candidates);
    put_opt_usize(&mut b, l.max_formula_size);
    match l.max_total_messages {
        Some(v) => {
            put_u8(&mut b, 1);
            put_u64(&mut b, v);
        }
        None => put_u8(&mut b, 0),
    }
    put_u32(
        &mut b,
        u32::try_from(s.transducers.len()).unwrap_or(u32::MAX),
    );
    for t in &s.transducers {
        put_usize(&mut b, t.node);
        put_str(&mut b, &t.kind);
        put_u64(&mut b, t.messages);
        put_usize(&mut b, t.max_depth_stack);
        put_usize(&mut b, t.max_cond_stack);
        put_usize(&mut b, t.max_formula_size);
    }
    put_u32(
        &mut b,
        u32::try_from(s.det_latency.len()).unwrap_or(u32::MAX),
    );
    for h in &s.det_latency {
        put_histogram(&mut b, h);
    }
    b
}

fn decode_core(d: &mut Dec<'_>, s: &mut Snapshot) -> Result<(), SnapshotError> {
    s.engine = engine_from(d.u8()?)?;
    s.tick = d.u64()?;
    s.stats = EngineStats {
        ticks: d.u64()?,
        messages: d.u64()?,
        max_formula_size: d.usize()?,
        max_cond_stack: d.usize()?,
        max_depth_stack: d.usize()?,
        max_stream_depth: d.usize()?,
        peak_buffered_events: d.usize()?,
        peak_live_candidates: d.usize()?,
        candidates_created: d.u64()?,
        results: d.u64()?,
        dropped: d.u64()?,
        vars_created: d.u64()?,
        peak_arena_bytes: d.usize()?,
        interned_symbols: d.usize()?,
    };
    s.minted = d.u32()?;
    s.arena_peak = d.u64()?;
    s.exhausted = match d.u8()? {
        0 => None,
        1 => Some(LimitBreach {
            kind: limit_kind_from(d.u8()?)?,
            limit: d.u64()?,
            observed: d.u64()?,
        }),
        _ => return Err(corrupt("invalid breach flag")),
    };
    s.limits = ResourceLimits::default();
    s.limits.max_stream_depth = d.opt_usize()?;
    s.limits.max_buffered_events = d.opt_usize()?;
    s.limits.max_buffered_bytes = d.opt_usize()?;
    s.limits.max_live_candidates = d.opt_usize()?;
    s.limits.max_formula_size = d.opt_usize()?;
    s.limits.max_total_messages = match d.u8()? {
        0 => None,
        1 => Some(d.u64()?),
        _ => return Err(corrupt("invalid option flag")),
    };
    let n = d.count(8)?;
    s.transducers = Vec::with_capacity(n);
    for _ in 0..n {
        s.transducers.push(TransducerStats {
            node: d.usize()?,
            kind: d.str()?,
            messages: d.u64()?,
            max_depth_stack: d.usize()?,
            max_cond_stack: d.usize()?,
            max_formula_size: d.usize()?,
        });
    }
    let n = d.count(4)?;
    s.det_latency = Vec::with_capacity(n);
    for _ in 0..n {
        s.det_latency.push(get_histogram(d)?);
    }
    Ok(())
}

fn encode_session(sess: &SessionState) -> Vec<u8> {
    let mut b = Vec::new();
    put_u32(&mut b, u32::try_from(sess.faults.len()).unwrap_or(u32::MAX));
    for f in &sess.faults {
        put_fault(&mut b, f);
    }
    put_u32(
        &mut b,
        u32::try_from(sess.quarantines.len()).unwrap_or(u32::MAX),
    );
    for q in &sess.quarantines {
        put_u32(&mut b, u32::try_from(q.len()).unwrap_or(u32::MAX));
        for frag in q {
            put_fragment(&mut b, frag);
        }
    }
    put_u32(
        &mut b,
        u32::try_from(sess.delivered.len()).unwrap_or(u32::MAX),
    );
    for v in &sess.delivered {
        put_u64(&mut b, *v);
    }
    put_u64(&mut b, sess.reader_emitted);
    put_position(&mut b, sess.position);
    put_bool(&mut b, sess.lt_consumed);
    put_u64(&mut b, sess.documents);
    b
}

fn decode_session(d: &mut Dec<'_>) -> Result<SessionState, SnapshotError> {
    let n = d.count(1)?;
    let mut faults = Vec::with_capacity(n);
    for _ in 0..n {
        faults.push(get_fault(d)?);
    }
    let n = d.count(4)?;
    let mut quarantines = Vec::with_capacity(n);
    for _ in 0..n {
        let m = d.count(1)?;
        let mut frags = Vec::with_capacity(m);
        for _ in 0..m {
            frags.push(get_fragment(d)?);
        }
        quarantines.push(frags);
    }
    let n = d.count(8)?;
    let mut delivered = Vec::with_capacity(n);
    for _ in 0..n {
        delivered.push(d.u64()?);
    }
    Ok(SessionState {
        faults,
        quarantines,
        delivered,
        reader_emitted: d.u64()?,
        position: get_position(d)?,
        lt_consumed: d.bool()?,
        documents: d.u64()?,
    })
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            engine: Engine::Vm,
            tick: 0,
            stats: EngineStats::default(),
            transducers: Vec::new(),
            minted: 0,
            det_latency: Vec::new(),
            exhausted: None,
            limits: ResourceLimits::default(),
            arena_peak: 0,
            symbols: Vec::new(),
            arena: Vec::new(),
            session: None,
        }
    }
}

impl Snapshot {
    /// Serialize to the versioned, checksummed wire format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let mut section = |tag: u8, body: Vec<u8>| {
            put_u8(&mut payload, tag);
            put_u32(&mut payload, u32::try_from(body.len()).unwrap_or(u32::MAX));
            payload.extend_from_slice(&body);
        };
        section(SEC_CORE, encode_core(self));
        let mut syms = Vec::new();
        put_u32(
            &mut syms,
            u32::try_from(self.symbols.len()).unwrap_or(u32::MAX),
        );
        for name in &self.symbols {
            put_str(&mut syms, name);
        }
        section(SEC_SYMBOLS, syms);
        let mut arena = Vec::new();
        put_u32(
            &mut arena,
            u32::try_from(self.arena.len()).unwrap_or(u32::MAX),
        );
        for ev in &self.arena {
            put_event(&mut arena, ev);
        }
        section(SEC_ARENA, arena);
        if let Some(sess) = &self.session {
            section(SEC_SESSION, encode_session(sess));
        }

        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, u32::try_from(payload.len()).unwrap_or(u32::MAX));
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a snapshot from bytes. Total: any input yields `Ok` or a
    /// structured [`SnapshotError`], never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut head = Dec::new(&bytes[4..16]);
        let version = head.u32().map_err(|_| SnapshotError::Truncated)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = head.u32().map_err(|_| SnapshotError::Truncated)? as usize;
        let expected = head.u32().map_err(|_| SnapshotError::Truncated)?;
        let body = &bytes[16..];
        if body.len() < payload_len {
            return Err(SnapshotError::Truncated);
        }
        if body.len() > payload_len {
            return Err(corrupt("trailing bytes after payload"));
        }
        let found = crc32(body);
        if found != expected {
            return Err(SnapshotError::BadChecksum { expected, found });
        }

        let mut snap = Snapshot::default();
        let mut have_core = false;
        let mut have_symbols = false;
        let mut d = Dec::new(body);
        while d.remaining() > 0 {
            let tag = d.u8()?;
            let len = d.u32()? as usize;
            let section = d
                .bytes(len)
                .map_err(|_| corrupt("section length overrun"))?;
            let mut sd = Dec::new(section);
            match tag {
                SEC_CORE => {
                    decode_core(&mut sd, &mut snap)?;
                    have_core = true;
                }
                SEC_SYMBOLS => {
                    let n = sd.count(4)?;
                    let mut symbols = Vec::with_capacity(n);
                    for _ in 0..n {
                        symbols.push(sd.str()?);
                    }
                    snap.symbols = symbols;
                    have_symbols = true;
                }
                SEC_ARENA => {
                    let n = sd.count(1)?;
                    let mut arena = Vec::with_capacity(n);
                    for _ in 0..n {
                        arena.push(get_event(&mut sd)?);
                    }
                    snap.arena = arena;
                }
                SEC_SESSION => {
                    snap.session = Some(decode_session(&mut sd)?);
                }
                // Unknown sections are the forward-compatibility valve.
                _ => {}
            }
        }
        if !have_core {
            return Err(corrupt("missing core section"));
        }
        if !have_symbols {
            return Err(corrupt("missing symbol section"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut det = Histogram::new();
        det.record(3);
        det.record(900);
        Snapshot {
            engine: Engine::Network,
            tick: 42,
            stats: EngineStats {
                ticks: 42,
                messages: 1234,
                max_formula_size: 7,
                max_cond_stack: 3,
                max_depth_stack: 5,
                max_stream_depth: 6,
                peak_buffered_events: 11,
                peak_live_candidates: 2,
                candidates_created: 9,
                results: 4,
                dropped: 5,
                vars_created: 9,
                peak_arena_bytes: 4096,
                interned_symbols: 13,
            },
            transducers: vec![
                TransducerStats {
                    node: 0,
                    kind: "IN".into(),
                    messages: 100,
                    max_depth_stack: 4,
                    max_cond_stack: 0,
                    max_formula_size: 1,
                },
                TransducerStats {
                    node: 1,
                    kind: "OU(out)".into(),
                    messages: 50,
                    max_depth_stack: 2,
                    max_cond_stack: 1,
                    max_formula_size: 3,
                },
            ],
            minted: 9,
            det_latency: vec![det],
            exhausted: Some(LimitBreach {
                kind: LimitKind::BufferedEvents,
                limit: 10,
                observed: 11,
            }),
            limits: ResourceLimits::default()
                .with_max_buffered_events(10)
                .with_max_total_messages(1_000_000),
            arena_peak: 8192,
            symbols: vec!["$".into(), "a".into(), "b".into()],
            arena: vec![
                XmlEvent::StartDocument,
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![Attribute::new("k", "v")],
                },
            ],
            session: Some(SessionState {
                faults: vec![Fault {
                    kind: FaultKind::MismatchedClose,
                    position: Position {
                        offset: 17,
                        line: 2,
                        column: 3,
                    },
                    action: FaultAction::AutoClosed,
                    detail: "closed <a> at </b>".into(),
                    event_from: 3,
                    event_to: 5,
                }],
                quarantines: vec![
                    vec![FragmentState {
                        start: 1,
                        last: 4,
                        delivered: 4,
                        events: vec![
                            XmlEvent::StartElement {
                                name: "x".into(),
                                attributes: vec![],
                            },
                            XmlEvent::Text("t".into()),
                            XmlEvent::close("x"),
                        ],
                    }],
                    vec![],
                ],
                delivered: vec![3, 0],
                reader_emitted: 42,
                position: Position {
                    offset: 999,
                    line: 10,
                    column: 1,
                },
                lt_consumed: true,
                documents: 3,
            }),
        }
    }

    fn assert_round_trip(s: &Snapshot) {
        let bytes = s.encode();
        let back = Snapshot::decode(&bytes).expect("decode");
        assert_eq!(back.engine, s.engine);
        assert_eq!(back.tick, s.tick);
        assert_eq!(back.stats, s.stats);
        assert_eq!(back.transducers, s.transducers);
        assert_eq!(back.minted, s.minted);
        assert_eq!(back.det_latency.len(), s.det_latency.len());
        for (a, b) in back.det_latency.iter().zip(&s.det_latency) {
            assert_eq!(a.export_raw(), b.export_raw());
        }
        assert_eq!(back.exhausted, s.exhausted);
        assert_eq!(back.limits, s.limits);
        assert_eq!(back.arena_peak, s.arena_peak);
        assert_eq!(back.symbols, s.symbols);
        assert_eq!(back.arena, s.arena);
        assert_eq!(back.session, s.session);
        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn full_snapshot_round_trips() {
        assert_round_trip(&sample_snapshot());
    }

    #[test]
    fn minimal_snapshot_round_trips() {
        assert_round_trip(&Snapshot::default());
    }

    #[test]
    fn bad_magic_is_reported() {
        let mut bytes = sample_snapshot().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_is_reported() {
        let mut bytes = sample_snapshot().encode();
        bytes[4] = 99;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_is_structured() {
        let bytes = sample_snapshot().encode();
        for n in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..n]).expect_err("truncated must fail");
            // Any structured error is acceptable; panics are not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_bit_flip_is_structured() {
        let bytes = sample_snapshot().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[i] ^= 1 << bit;
                match Snapshot::decode(&m) {
                    // Flips in the header are allowed to produce any
                    // structured error; flips in the payload must be caught
                    // by the checksum.
                    Ok(_) => panic!("bit flip at byte {i} bit {bit} went undetected"),
                    Err(e) if i >= 16 => {
                        assert!(
                            matches!(e, SnapshotError::BadChecksum { .. }),
                            "payload flip at byte {i} bit {bit} gave {e:?}"
                        );
                    }
                    Err(_) => {}
                }
            }
        }
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let mut bytes = sample_snapshot().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(SnapshotError::BadChecksum { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        // Rebuild with an extra unknown section appended to the payload.
        let payload_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let mut payload = bytes[16..16 + payload_len].to_vec();
        payload.push(200); // unknown tag
        payload.extend_from_slice(&5u32.to_le_bytes());
        payload.extend_from_slice(b"extra");
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(u32::try_from(payload.len()).unwrap()).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        let back = Snapshot::decode(&out).expect("unknown section must be skipped");
        assert_eq!(back.stats, snap.stats);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
