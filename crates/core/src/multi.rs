//! Multi-query processing with shared sub-networks.
//!
//! The paper's conclusion names this as the road ahead: "a single transducer
//! network can be used for processing several queries having common
//! subparts. Such a multi-query processor could be a corner stone of
//! efficient XSLT and XQuery implementations" (§IX) — and its related work
//! credits YFilter with prefix sharing for boolean filtering (§VIII).
//!
//! [`SharedQuerySet`] compiles many rpeq queries into **one** multi-sink
//! SPEX network, sharing the compiled sub-network of every common prefix:
//! each query is decomposed into its top-level concatenation chain, and a
//! memo table `(input tape, chain element) → output tape` reuses existing
//! transducers whenever a query continues from the same tape with a
//! structurally identical step. The network executor's fan-out does the
//! rest — a shared tape feeds every continuation.
//!
//! ```
//! use spex_core::multi::SharedQuerySet;
//!
//! let set = SharedQuerySet::compile(&[
//!     ("cities".into(), "_*.country.province.city".parse().unwrap()),
//!     ("names".into(),  "_*.country.province.name".parse().unwrap()),
//!     ("codes".into(),  "_*.country.code".parse().unwrap()),
//! ]);
//! // The `_*.country` prefix (and the `province` step) exist only once.
//! assert!(set.degree() < set.unshared_degree());
//! ```

use crate::network::{NetworkBuilder, NetworkSpec, Run, Tape};
use crate::sink::{CountingSink, ResultSink, SinkGroup};
use crate::stats::EngineStats;
use crate::vm::{Engine, EngineRun, Plan, PlanRun};
use spex_query::Rpeq;
use spex_xml::XmlEvent;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Many queries compiled into one shared multi-sink network. See the
/// [module documentation](self).
#[derive(Debug, Clone)]
pub struct SharedQuerySet {
    spec: NetworkSpec,
    ids: Vec<String>,
    /// `slot_of[i]` is the physical sink slot serving logical query `i`.
    /// The identity map for [`SharedQuerySet::try_compile`]; the combiner
    /// (`spex-combine`) aliases queries with equal canonical forms onto one
    /// shared physical sink, so several logical queries may share a slot.
    slot_of: Vec<usize>,
    unshared_degree: usize,
    /// The flat VM plan, lowered on first use and shared by every session
    /// (the server's plan registry caches `Arc<SharedQuerySet>`, so the
    /// lowering happens once per cached entry).
    plan: OnceLock<Plan>,
}

impl SharedQuerySet {
    /// Compile `queries` (id, expression) into one network with one sink per
    /// query, sharing common prefixes.
    ///
    /// # Panics
    ///
    /// On queries outside the compilable fragment (see
    /// [`crate::CompileError`]); use [`SharedQuerySet::try_compile`] to
    /// handle the error.
    pub fn compile(queries: &[(String, Rpeq)]) -> SharedQuerySet {
        Self::try_compile(queries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Compile, reporting unsupported constructs as errors.
    pub fn try_compile(queries: &[(String, Rpeq)]) -> Result<SharedQuerySet, crate::CompileError> {
        let (mut builder, source) = NetworkBuilder::with_input();
        // (input tape, pretty-printed chain element) → output tape.
        //
        // Keying by the rendered expression is sound: the text syntax is a
        // faithful canonical form (print∘parse is the identity, by property
        // test), so equal keys mean structurally equal sub-expressions.
        let mut memo: HashMap<(usize, String), Tape> = HashMap::new();
        let mut ids = Vec::with_capacity(queries.len());
        let mut unshared_degree = 2 * queries.len().max(1); // IN + OU per query
        for (_, query) in queries {
            crate::compile::check_compilable(query)?;
        }
        for (id, query) in queries {
            let mut tape = source;
            for step in chain_of(query) {
                let key = (tape.node(), step.to_string());
                tape = match memo.get(&key) {
                    Some(t) => *t,
                    None => {
                        let t = crate::compile::translate(step, &mut builder, tape);
                        memo.insert(key, t);
                        t
                    }
                };
            }
            builder.add_sink(tape);
            ids.push(id.clone());
            unshared_degree += crate::compile::CompiledNetwork::compile(query).degree() - 2;
        }
        let slot_of = (0..ids.len()).collect();
        Ok(SharedQuerySet {
            spec: builder.finish(),
            ids,
            slot_of,
            unshared_degree,
            plan: OnceLock::new(),
        })
    }

    /// Assemble a query set from an externally built shared network — the
    /// constructor the `spex-combine` combiner uses. `ids` are the logical
    /// query names (one sink delivered per name), `slot_of[i]` the physical
    /// sink slot of `spec` serving logical query `i` (aliased queries share
    /// a slot), and `unshared_degree` the summed degree the queries would
    /// have as independently compiled networks.
    ///
    /// # Panics
    ///
    /// If the lengths disagree, a slot index is out of range, or a physical
    /// sink of `spec` is served to no logical query.
    pub fn from_parts(
        spec: NetworkSpec,
        ids: Vec<String>,
        slot_of: Vec<usize>,
        unshared_degree: usize,
    ) -> SharedQuerySet {
        assert_eq!(
            ids.len(),
            slot_of.len(),
            "{} ids for {} slot entries",
            ids.len(),
            slot_of.len()
        );
        let physical = spec.sink_count();
        let mut served = vec![false; physical];
        for &s in &slot_of {
            assert!(s < physical, "sink slot {s} out of range ({physical})");
            served[s] = true;
        }
        if let Some(idle) = served.iter().position(|s| !s) {
            panic!("physical sink {idle} is served to no logical query");
        }
        SharedQuerySet {
            spec,
            ids,
            slot_of,
            unshared_degree,
            plan: OnceLock::new(),
        }
    }

    /// The physical-slot map: `slot_of()[i]` is the sink slot serving
    /// logical query `i` (see [`SharedQuerySet::from_parts`]).
    pub fn slot_of(&self) -> &[usize] {
        &self.slot_of
    }

    /// Query ids, in sink order.
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// A canonical cache key for a registration list: one `name=expr` line
    /// per query with the expression pretty-printed. Print∘parse is the
    /// identity on the text syntax (property-tested), so two
    /// differently-spelled but structurally equal registrations map to the
    /// same key — this is what the server's compiled-plan cache is keyed by.
    pub fn normalized_key(queries: &[(String, Rpeq)]) -> String {
        let mut out = String::new();
        for (id, q) in queries {
            out.push_str(id);
            out.push('=');
            out.push_str(&q.to_string());
            out.push('\n');
        }
        out
    }

    /// The shared network's degree (number of transducers).
    pub fn degree(&self) -> usize {
        self.spec.degree()
    }

    /// The summed degree the queries would have as separate networks
    /// (for measuring the sharing win).
    pub fn unshared_degree(&self) -> usize {
        self.unshared_degree
    }

    /// The network shape.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Instantiate over a stream with one sink per *logical* query (sink
    /// order == [`SharedQuerySet::ids`] order). Queries aliased onto one
    /// physical sink by the combiner each still receive their own result
    /// stream — the shared sink fans out at delivery time.
    pub fn run<'n, 's>(&'n self, sinks: Vec<&'s mut dyn ResultSink>) -> Run<'n, 's> {
        let groups = SinkGroup::partition(sinks, &self.slot_of, self.spec.sink_count());
        Run::with_sink_groups(&self.spec, groups)
    }

    /// Like [`SharedQuerySet::run`], with resource caps attached (see
    /// [`crate::ResourceLimits`]); use [`Run::try_push`] to observe a
    /// breach.
    pub fn run_with_limits<'n, 's>(
        &'n self,
        sinks: Vec<&'s mut dyn ResultSink>,
        limits: crate::limits::ResourceLimits,
    ) -> Run<'n, 's> {
        let mut run = self.run(sinks);
        run.set_limits(limits);
        run
    }

    /// The flat VM plan, lowered from the shared network on first use and
    /// cached (see [`Plan`] and DESIGN.md §14).
    pub fn plan(&self) -> &Plan {
        self.plan.get_or_init(|| Plan::compile(&self.spec))
    }

    /// Instantiate a run on the chosen [`Engine`] (sink order ==
    /// [`SharedQuerySet::ids`] order).
    pub fn run_engine<'n, 's>(
        &'n self,
        engine: Engine,
        sinks: Vec<&'s mut dyn ResultSink>,
    ) -> EngineRun<'n, 's> {
        match engine {
            Engine::Network => EngineRun::Network(self.run(sinks)),
            Engine::Vm => {
                let groups = SinkGroup::partition(sinks, &self.slot_of, self.spec.sink_count());
                EngineRun::Vm(PlanRun::with_sink_groups(self.plan(), groups))
            }
        }
    }

    /// Like [`SharedQuerySet::run_engine`], with resource caps attached.
    pub fn run_engine_with_limits<'n, 's>(
        &'n self,
        engine: Engine,
        sinks: Vec<&'s mut dyn ResultSink>,
        limits: crate::limits::ResourceLimits,
    ) -> EngineRun<'n, 's> {
        let mut run = self.run_engine(engine, sinks);
        run.set_limits(limits);
        run
    }

    /// Convenience: evaluate a full event sequence, returning per-query
    /// result counts (id order) and the engine statistics.
    pub fn count_events(
        &self,
        events: impl IntoIterator<Item = XmlEvent>,
    ) -> (Vec<usize>, EngineStats) {
        let mut counters: Vec<CountingSink> =
            (0..self.ids.len()).map(|_| CountingSink::new()).collect();
        let stats = {
            let sinks: Vec<&mut dyn ResultSink> = counters
                .iter_mut()
                .map(|c| c as &mut dyn ResultSink)
                .collect();
            let mut run = self.run(sinks);
            for ev in events {
                run.push(ev);
            }
            run.finish()
        };
        (counters.into_iter().map(|c| c.results).collect(), stats)
    }
}

/// Flatten a query into its top-level concatenation chain.
fn chain_of(query: &Rpeq) -> Vec<&Rpeq> {
    let mut out = Vec::new();
    fn go<'a>(q: &'a Rpeq, out: &mut Vec<&'a Rpeq>) {
        match q {
            Rpeq::Concat(a, b) => {
                go(a, out);
                go(b, out);
            }
            other => out.push(other),
        }
    }
    go(query, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::reader::parse_events;

    fn qs(texts: &[&str]) -> Vec<(String, Rpeq)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("q{i}"), t.parse().unwrap()))
            .collect()
    }

    #[test]
    fn prefixes_are_shared() {
        let set = SharedQuerySet::compile(&qs(&[
            "_*.country.province.city",
            "_*.country.province.name",
            "_*.country.code",
        ]));
        // Shared: _* (4 nodes) + country + province; distinct: city, name,
        // code; plus IN and 3 OU.
        assert!(set.degree() < set.unshared_degree());
        let desc = set.spec().describe();
        assert_eq!(desc.iter().filter(|d| *d == "CH(country)").count(), 1);
        assert_eq!(desc.iter().filter(|d| *d == "CH(province)").count(), 1);
        assert_eq!(desc.iter().filter(|d| *d == "OU").count(), 3);
    }

    #[test]
    fn shared_results_equal_individual_results() {
        let texts = [
            "_*.a.b",
            "_*.a.c",
            "_*.a[b].c",
            "a.a",
            "_*._",
            "_*.a.b", // duplicate query: full sharing, both sinks served
        ];
        let set = SharedQuerySet::compile(&qs(&texts));
        let xml = "<a><a><b/><c/></a><c/><b><a><b/></a></b></a>";
        let events = parse_events(xml).unwrap();
        let (counts, _) = set.count_events(events);
        for (i, t) in texts.iter().enumerate() {
            let expected = crate::evaluate_str(t, xml).unwrap().len();
            assert_eq!(counts[i], expected, "query {t}");
        }
    }

    #[test]
    fn qualifier_prefixes_share_their_instances() {
        // Both queries share `_*.a[b]` — one VC, one qualifier sub-network.
        let set = SharedQuerySet::compile(&qs(&["_*.a[b].c", "_*.a[b].d"]));
        let desc = set.spec().describe();
        assert_eq!(desc.iter().filter(|d| d.starts_with("VC")).count(), 1);
        let xml = "<r><a><b/><c/><d/></a><a><c/><d/></a></r>";
        let (counts, _) = set.count_events(parse_events(xml).unwrap());
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn no_false_sharing_across_different_prefixes() {
        let set = SharedQuerySet::compile(&qs(&["a.b", "c.b"]));
        let desc = set.spec().describe();
        // Two distinct CH(b): the `b` steps continue from different tapes.
        assert_eq!(desc.iter().filter(|d| *d == "CH(b)").count(), 2);
        let xml = "<a><b/></a>";
        let (counts, _) = set.count_events(parse_events(xml).unwrap());
        assert_eq!(counts, vec![1, 0]);
    }

    #[test]
    fn single_and_empty_sets() {
        let set = SharedQuerySet::compile(&qs(&["a"]));
        assert_eq!(set.ids(), ["q0"]);
        let (counts, _) = set.count_events(parse_events("<a/>").unwrap());
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn sharing_scales_with_profile_count() {
        // 50 queries with a common `quotes.quote` prefix: 2 shared steps,
        // 50 distinct heads.
        let texts: Vec<String> = (0..50).map(|i| format!("quotes.quote.s{i}")).collect();
        let queries: Vec<(String, Rpeq)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("q{i}"), t.parse().unwrap()))
            .collect();
        let set = SharedQuerySet::compile(&queries);
        // IN + CH(quotes) + CH(quote) + 50×(CH + OU) = 103.
        assert_eq!(set.degree(), 103);
        assert_eq!(set.unshared_degree(), 50 * 5);
    }
}
