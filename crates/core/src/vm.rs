//! The compiled execution backend: a flat bytecode plan for the transducer
//! network, executed by a small VM.
//!
//! The tick-synchronous interpreter in [`crate::network`] walks a
//! `Vec<Box<dyn Transducer>>` and re-allocates inter-node message queues on
//! every tick (`mem::take` discards each inbox's capacity, so the producing
//! node's `append` re-grows it from zero). That overhead — dynamic dispatch
//! plus queue churn — dominates the per-event cost once parsing is
//! zero-copy. [`Plan::compile`] lowers a built [`NetworkSpec`] into a flat
//! instruction table:
//!
//! * one dense [`Op`] per node (opcode + resolved operand indices) in
//!   topological order,
//! * the inbox ports of all nodes laid out contiguously in one slot array
//!   (CSR layout: `port_base[node] + port`),
//! * the consumer fan-out edges flattened the same way
//!   (`cons[cons_base[node]..cons_base[node + 1]]` are inbox slot ids),
//! * the sink table for output nodes.
//!
//! [`PlanRun`] executes the plan with **no boxed trait objects and no queue
//! re-allocation on the hot path**: operator state lives in a flat
//! `Vec<OpState>` (an enum over the concrete transducer structs — statically
//! dispatched), message buffers are persistent and recycled by
//! `swap`/`drain`, and nodes whose inbox is empty are skipped entirely.
//!
//! The semantics are the interpreter's by construction: every opcode steps
//! the *same* transducer implementation the network instantiates, in the
//! same topological order, with the same per-message statistics, limit
//! checks, arena recycling and determination-latency accounting. The
//! interpreter remains the semantic oracle — `harness vm-diff` and the
//! proptest suite drive random documents × random queries through both
//! engines (plus the DOM baseline) and fail on the first divergence in
//! outputs, statistics, faults or earliness. See DESIGN.md §14 for the plan
//! IR and a worked lowering example.

use crate::engine::EvalError;
use crate::limits::{LimitBreach, ResourceLimits};
use crate::message::{DocEvent, Message};
use crate::network::{NetworkSpec, NodeSpec};
use crate::sink::{ResultSink, SinkGroup};
use crate::snapshot::{Snapshot, SnapshotError};
use crate::stats::{EngineStats, Tap, TransducerStats};
use crate::transducers::child::{Child, MatchLabel};
use crate::transducers::closure::Closure;
use crate::transducers::following::Following;
use crate::transducers::input::Input;
use crate::transducers::join::Join;
use crate::transducers::output::Output;
use crate::transducers::preceding::Preceding;
use crate::transducers::split::Split;
use crate::transducers::union_::Union;
use crate::transducers::var_creator::VarCreator;
use crate::transducers::var_determinant::VarDeterminant;
use crate::transducers::var_filter::VarFilter;
use crate::transducers::Transducer;
use spex_formula::{QualifierId, VarFactory};
use spex_query::Label;
use spex_trace::{Histogram, Tracer, Value};
use spex_xml::{EventId, EventStore, StoredKind, XmlEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// Which execution backend evaluates a compiled network.
///
/// Both engines implement exactly the same semantics (differentially tested
/// against each other and the DOM oracle); they differ only in how the tick
/// loop is executed. The VM is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The tick-synchronous interpreter over boxed transducers
    /// ([`crate::network::Run`]) — the semantic oracle.
    Network,
    /// The compiled flat-plan VM ([`PlanRun`]).
    #[default]
    Vm,
}

impl Engine {
    /// All engines, VM first (the default).
    pub const ALL: [Engine; 2] = [Engine::Vm, Engine::Network];

    /// Stable lowercase name (used by the CLI `--engine` flag and in JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            Engine::Network => "network",
            Engine::Vm => "vm",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "vm" => Ok(Engine::Vm),
            "network" => Ok(Engine::Network),
            other => Err(format!("unknown engine `{other}` (expected vm or network)")),
        }
    }
}

/// One instruction of the flat plan: the opcode for a network node with its
/// operands resolved to dense indices. `Copy`, 16 bytes, one per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// The input transducer IN (always instruction 0).
    Input,
    /// Child transducer CH; the operand indexes the plan's label pool.
    Child(u32),
    /// Closure transducer CL.
    Closure(u32),
    /// Following transducer FO.
    Following(u32),
    /// Preceding transducer PR with its speculative qualifier id.
    Preceding(u32, QualifierId),
    /// Variable creator VC(q).
    VarCreate(QualifierId),
    /// Positive variable filter VF(q+) with the nested qualifier id range.
    VarFilterPos(QualifierId, (u32, u32)),
    /// Negative variable filter VF(q−).
    VarFilterNeg(QualifierId),
    /// Variable determinant VD(q) with the nested id range.
    VarDeterminant(QualifierId, (u32, u32)),
    /// Split SP.
    Split,
    /// Join JO — the only two-port instruction.
    Join,
    /// Union connector UN.
    Union,
    /// Output transducer OU: deliver to the plan-assigned sink.
    Emit,
}

/// A compiled, immutable execution plan — the flat lowering of one
/// [`NetworkSpec`]. Shareable across threads and runs; instantiate with
/// [`PlanRun::new`] (or via [`crate::Evaluator`] with [`Engine::Vm`]).
#[derive(Debug, Clone)]
pub struct Plan {
    /// One instruction per node, topological order.
    code: Vec<Op>,
    /// Match-label operand pool (deduplicated).
    labels: Vec<Label>,
    /// Node descriptions in the paper's notation (for per-node stats).
    kinds: Vec<String>,
    /// `port_base[v]..port_base[v + 1]` are node `v`'s inbox slots.
    port_base: Vec<u32>,
    /// Consumer CSR offsets into [`Plan::cons`].
    cons_base: Vec<u32>,
    /// Flat consumer edges: the inbox slot each produced message lands in.
    cons: Vec<u32>,
    /// For output nodes, which sink (result stream) they feed; `u32::MAX`
    /// everywhere else.
    sink_of: Vec<u32>,
    /// Node ids of the output instructions, ascending.
    outputs: Vec<u32>,
    /// Per-node document-message inflow on an *inert* tick (a text, comment
    /// or PI event). Every transducer forwards such events verbatim without
    /// touching its state or firing a transition, so the per-node message
    /// counts are a static property of the wiring: splits duplicate the
    /// message, joins deduplicate it, everything else forwards one copy per
    /// copy received. The VM uses this to bypass the full propagation on
    /// inert ticks — only the output operators (which buffer the event into
    /// live candidates) actually run.
    item_flow: Vec<u32>,
    /// Sum of [`Plan::item_flow`] — the engine-wide message count of one
    /// inert tick.
    item_total: u64,
}

impl Plan {
    /// Lower `spec` into a flat plan. Linear in the network degree.
    pub fn compile(spec: &NetworkSpec) -> Plan {
        let n = spec.nodes.len();
        let mut labels: Vec<Label> = Vec::new();
        let label_idx = |l: &Label, labels: &mut Vec<Label>| -> u32 {
            match labels.iter().position(|x| x == l) {
                Some(i) => i as u32,
                None => {
                    labels.push(l.clone());
                    (labels.len() - 1) as u32
                }
            }
        };
        let mut code = Vec::with_capacity(n);
        let mut sink_of = vec![u32::MAX; n];
        let mut outputs = Vec::new();
        for (i, node) in spec.nodes.iter().enumerate() {
            let op = match node {
                NodeSpec::Input => Op::Input,
                NodeSpec::Child(l) => Op::Child(label_idx(l, &mut labels)),
                NodeSpec::Closure(l) => Op::Closure(label_idx(l, &mut labels)),
                NodeSpec::Following(l) => Op::Following(label_idx(l, &mut labels)),
                NodeSpec::Preceding(l, q) => Op::Preceding(label_idx(l, &mut labels), *q),
                NodeSpec::VarCreator(q) => Op::VarCreate(*q),
                NodeSpec::VarFilterPos(q, inner) => Op::VarFilterPos(*q, *inner),
                NodeSpec::VarFilterNeg(q) => Op::VarFilterNeg(*q),
                NodeSpec::VarDeterminant(q, inner) => Op::VarDeterminant(*q, *inner),
                NodeSpec::Split => Op::Split,
                NodeSpec::Join => Op::Join,
                NodeSpec::Union => Op::Union,
                NodeSpec::Output => {
                    let idx = spec
                        .sinks
                        .iter()
                        .position(|s| *s == i)
                        .expect("output node registered as sink");
                    sink_of[i] = idx as u32;
                    outputs.push(i as u32);
                    Op::Emit
                }
            };
            code.push(op);
        }
        // Contiguous inbox slots: every node gets max(ports, 1) slots.
        let mut port_base = Vec::with_capacity(n + 1);
        let mut slots = 0u32;
        for ins in &spec.inputs {
            port_base.push(slots);
            slots += ins.len().max(1) as u32;
        }
        port_base.push(slots);
        // Consumer edges, flattened in producer order (ascending consumer id
        // within each producer, exactly like the interpreter's wiring).
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, ins) in spec.inputs.iter().enumerate() {
            for (port, u) in ins.iter().enumerate() {
                per_node[*u].push(port_base[v] + port as u32);
            }
        }
        let mut cons_base = Vec::with_capacity(n + 1);
        let mut cons = Vec::new();
        for edges in &per_node {
            cons_base.push(cons.len() as u32);
            cons.extend_from_slice(edges);
        }
        cons_base.push(cons.len() as u32);
        // Static document-message flow for inert ticks: one forward pass in
        // topological (ascending id) order. A node consumes what its
        // producers emit; a join collapses its two copies back into one, the
        // outputs consume theirs, everything else forwards.
        let mut inflow = vec![0u32; n];
        let mut item_flow = vec![0u32; n];
        for (v, node) in spec.nodes.iter().enumerate() {
            let consumed = match node {
                NodeSpec::Input => 1,
                _ => inflow[v],
            };
            item_flow[v] = consumed;
            let emitted = match node {
                NodeSpec::Join => consumed.min(1),
                NodeSpec::Output => 0,
                _ => consumed,
            };
            for (w, ins) in spec.inputs.iter().enumerate() {
                inflow[w] += emitted * ins.iter().filter(|&&u| u == v).count() as u32;
            }
        }
        let item_total = item_flow.iter().map(|&f| u64::from(f)).sum();
        Plan {
            code,
            labels,
            kinds: spec.describe(),
            port_base,
            cons_base,
            cons,
            sink_of,
            outputs,
            item_flow,
            item_total,
        }
    }

    /// The number of instructions (== the network degree).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// `true` for the (impossible in practice) empty plan.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Number of result sinks the plan delivers to.
    pub fn sink_count(&self) -> usize {
        self.outputs.len()
    }

    /// The instruction table (for tests and `--explain`-style dumps).
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Human-readable disassembly, one instruction per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for i in 0..self.code.len() {
            let cons: Vec<String> = self.cons
                [self.cons_base[i] as usize..self.cons_base[i + 1] as usize]
                .iter()
                .map(|s| format!("@{s}"))
                .collect();
            out.push_str(&format!(
                "{i:3}: {:<12} -> [{}]\n",
                self.kinds[i],
                cons.join(", ")
            ));
        }
        out
    }

    /// Instantiate the per-run operator states, resolving match labels
    /// against `symbols` in instruction order (the same interning order the
    /// interpreter's `build_nodes` uses, so symbol ids agree between
    /// engines).
    fn instantiate(
        &self,
        symbols: &mut spex_xml::SymbolTable,
        factory: &Rc<RefCell<VarFactory>>,
    ) -> Vec<OpState> {
        self.code
            .iter()
            .map(|op| match *op {
                Op::Input => OpState::Input(Input::new()),
                Op::Child(l) => OpState::Child(Child::new(MatchLabel::resolve(
                    &self.labels[l as usize],
                    symbols,
                ))),
                Op::Closure(l) => OpState::Closure(Closure::new(MatchLabel::resolve(
                    &self.labels[l as usize],
                    symbols,
                ))),
                Op::Following(l) => OpState::Following(Following::new(MatchLabel::resolve(
                    &self.labels[l as usize],
                    symbols,
                ))),
                Op::Preceding(l, q) => OpState::Preceding(Preceding::new(
                    MatchLabel::resolve(&self.labels[l as usize], symbols),
                    q,
                    factory.clone(),
                )),
                Op::VarCreate(q) => OpState::VarCreator(VarCreator::new(q, factory.clone())),
                Op::VarFilterPos(q, inner) => {
                    OpState::VarFilter(VarFilter::positive(q, inner.0..inner.1))
                }
                Op::VarFilterNeg(q) => OpState::VarFilter(VarFilter::negative(q)),
                Op::VarDeterminant(q, inner) => {
                    OpState::VarDeterminant(VarDeterminant::new(q, inner.0..inner.1))
                }
                Op::Split => OpState::Split(Split::new()),
                Op::Join => OpState::Join(Join::new()),
                Op::Union => OpState::Union(Union::new()),
                Op::Emit => OpState::Emit(Box::new(Output::new())),
            })
            .collect()
    }
}

/// Per-node operator state: the concrete transducer structs, enum-tagged so
/// the VM dispatches with a jump table instead of a vtable. The output
/// transducer is boxed (it is by far the largest variant); everything on the
/// per-message hot path is inline.
enum OpState {
    Input(Input),
    Child(Child),
    Closure(Closure),
    Following(Following),
    Preceding(Preceding),
    VarCreator(VarCreator),
    VarFilter(VarFilter),
    VarDeterminant(VarDeterminant),
    Split(Split),
    Union(Union),
    Join(Join),
    Emit(Box<Output>),
}

impl OpState {
    /// Statically dispatched step for the single-input operators.
    /// Join and Emit are handled directly by the tick loop.
    #[inline]
    fn step(&mut self, msg: Message, out: &mut Vec<Message>) {
        match self {
            OpState::Input(t) => t.step(msg, out),
            OpState::Child(t) => t.step(msg, out),
            OpState::Closure(t) => t.step(msg, out),
            OpState::Following(t) => t.step(msg, out),
            OpState::Preceding(t) => t.step(msg, out),
            OpState::VarCreator(t) => t.step(msg, out),
            OpState::VarFilter(t) => t.step(msg, out),
            OpState::VarDeterminant(t) => t.step(msg, out),
            OpState::Split(t) => t.step(msg, out),
            OpState::Union(t) => t.step(msg, out),
            OpState::Join(_) | OpState::Emit(_) => unreachable!("handled by the tick loop"),
        }
    }

    fn stack_sizes(&self) -> (usize, usize) {
        match self {
            OpState::Input(t) => t.stack_sizes(),
            OpState::Child(t) => t.stack_sizes(),
            OpState::Closure(t) => t.stack_sizes(),
            OpState::Following(t) => t.stack_sizes(),
            OpState::Preceding(t) => t.stack_sizes(),
            OpState::VarCreator(t) => t.stack_sizes(),
            OpState::VarFilter(t) => t.stack_sizes(),
            OpState::VarDeterminant(t) => t.stack_sizes(),
            OpState::Split(t) => t.stack_sizes(),
            OpState::Union(t) => t.stack_sizes(),
            OpState::Join(_) | OpState::Emit(_) => (0, 0),
        }
    }

    fn set_tracing(&mut self, on: bool) {
        match self {
            OpState::Input(t) => t.set_tracing(on),
            OpState::Child(t) => t.set_tracing(on),
            OpState::Closure(t) => t.set_tracing(on),
            OpState::Following(t) => t.set_tracing(on),
            OpState::Preceding(t) => t.set_tracing(on),
            OpState::VarCreator(t) => t.set_tracing(on),
            OpState::VarFilter(t) => t.set_tracing(on),
            OpState::VarDeterminant(t) => t.set_tracing(on),
            OpState::Split(t) => t.set_tracing(on),
            OpState::Union(t) => t.set_tracing(on),
            OpState::Join(j) => j.set_tracing(on),
            OpState::Emit(_) => {}
        }
    }

    fn take_transitions(&mut self) -> Vec<u8> {
        match self {
            OpState::Input(t) => t.take_transitions(),
            OpState::Child(t) => t.take_transitions(),
            OpState::Closure(t) => t.take_transitions(),
            OpState::Following(t) => t.take_transitions(),
            OpState::Preceding(t) => t.take_transitions(),
            OpState::VarCreator(t) => t.take_transitions(),
            OpState::VarFilter(t) => t.take_transitions(),
            OpState::VarDeterminant(t) => t.take_transitions(),
            OpState::Split(t) => t.take_transitions(),
            OpState::Union(t) => t.take_transitions(),
            OpState::Join(j) => j.take_transitions(),
            OpState::Emit(_) => Vec::new(),
        }
    }
}

/// A running instantiation of a [`Plan`] over one stream — the VM. Mirrors
/// the public API of [`crate::network::Run`] exactly (same statistics, same
/// limit semantics, same session-reset hygiene), so the two engines are
/// interchangeable behind [`EngineRun`].
pub struct PlanRun<'p, 's> {
    plan: &'p Plan,
    ops: Vec<OpState>,
    /// Flat inbox slots (`plan.port_base` layout). Persistent: capacities
    /// survive across ticks, which is the allocation win over the
    /// interpreter.
    inbox: Vec<Vec<Message>>,
    /// Recycled drain buffers (second one for the join's right port).
    scratch: Vec<Message>,
    scratch2: Vec<Message>,
    /// Recycled per-node output buffer.
    outbuf: Vec<Message>,
    store: EventStore,
    factory: Rc<RefCell<VarFactory>>,
    sinks: Vec<SinkGroup<'s>>,
    stats: EngineStats,
    node_stats: Vec<TransducerStats>,
    limits: ResourceLimits,
    exhausted: Option<LimitBreach>,
    tap: Option<Rc<RefCell<dyn Tap>>>,
    tick: u64,
    depth: usize,
    tracing: bool,
    symbol_baseline: usize,
    tracer: Tracer,
    det_latency: Vec<Histogram>,
}

impl<'p, 's> PlanRun<'p, 's> {
    /// Instantiate `plan` with one sink per output instruction.
    pub fn new(plan: &'p Plan, sinks: Vec<&'s mut dyn ResultSink>) -> Self {
        Self::with_sink_groups(plan, sinks.into_iter().map(SinkGroup::One).collect())
    }

    /// Instantiate `plan` with one [`SinkGroup`] per output instruction — a
    /// group may fan a shared physical sink out to several logical sinks
    /// (the combiner's aliased-query delivery; see
    /// [`SinkGroup::partition`]).
    pub fn with_sink_groups(plan: &'p Plan, sinks: Vec<SinkGroup<'s>>) -> Self {
        assert_eq!(
            sinks.len(),
            plan.sink_count(),
            "plan has {} sink(s), {} provided",
            plan.sink_count(),
            sinks.len()
        );
        let mut store = EventStore::new();
        let factory = Rc::new(RefCell::new(VarFactory::new()));
        let ops = plan.instantiate(store.symbols_mut(), &factory);
        let symbol_baseline = store.symbols().len();
        let inbox = (0..*plan.port_base.last().expect("non-empty plan"))
            .map(|_| Vec::new())
            .collect();
        let node_stats = plan
            .kinds
            .iter()
            .enumerate()
            .map(|(node, kind)| TransducerStats {
                node,
                kind: kind.clone(),
                ..TransducerStats::default()
            })
            .collect();
        let det_latency = vec![Histogram::new(); plan.code.len()];
        PlanRun {
            plan,
            ops,
            inbox,
            scratch: Vec::new(),
            scratch2: Vec::new(),
            outbuf: Vec::new(),
            store,
            factory,
            sinks,
            stats: EngineStats::default(),
            node_stats,
            limits: ResourceLimits::default(),
            exhausted: None,
            tap: None,
            tick: 0,
            depth: 0,
            tracing: false,
            symbol_baseline,
            tracer: Tracer::disabled(),
            det_latency,
        }
    }

    /// The plan this run executes.
    pub fn plan(&self) -> &Plan {
        self.plan
    }

    /// Attach resource caps, checked after every tick.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
    }

    /// Attach a live observability tap (see [`Tap`]).
    pub fn set_tap(&mut self, tap: Rc<RefCell<dyn Tap>>) {
        self.tap = Some(tap);
    }

    /// Attach a trace export handle (end-of-run batch, same records as the
    /// interpreter — see DESIGN.md §13).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The first limit breach, if any cap was exceeded.
    pub fn exhausted(&self) -> Option<LimitBreach> {
        self.exhausted
    }

    /// Enable transition tracing on every operator.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for op in &mut self.ops {
            op.set_tracing(on);
        }
    }

    /// Drain per-node transition traces, rendered `"1,5"`-style.
    pub fn take_traces(&mut self) -> Vec<String> {
        self.ops
            .iter_mut()
            .map(|op| crate::transducers::format_transitions(&op.take_transitions()))
            .collect()
    }

    /// The run's event arena (for zero-copy producers).
    pub fn store_mut(&mut self) -> &mut EventStore {
        &mut self.store
    }

    /// Shared view of the run's event arena.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    /// Feed one owned stream event (one tick), discarding it silently after
    /// a limit breach.
    pub fn push(&mut self, event: XmlEvent) {
        let _ = self.try_push(event);
    }

    /// Feed one owned stream event, reporting a limit breach.
    pub fn try_push(&mut self, event: XmlEvent) -> Result<(), EvalError> {
        if let Some(b) = self.exhausted {
            return Err(b.into());
        }
        let id = self.store.push_owned(&event);
        self.try_push_id(id)
    }

    /// Feed the arena event `id` through the plan (one tick), then check the
    /// resource limits — identical contract to
    /// [`crate::network::Run::try_push_id`].
    pub fn try_push_id(&mut self, id: EventId) -> Result<(), EvalError> {
        if let Some(b) = self.exhausted {
            return Err(b.into());
        }
        if let Some(tap) = &self.tap {
            tap.borrow_mut().on_tick(self.tick, &self.store.get(id));
        }
        self.push_unchecked(id);
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(self.store.bytes_used());
        self.stats.interned_symbols = self.stats.interned_symbols.max(self.store.symbols().len());
        if let Err(b) = self.limits.check(&self.stats) {
            self.exhausted = Some(b);
            self.abort();
            return Err(b.into());
        }
        if self.outputs_idle() {
            self.store.reset();
        }
        Ok(())
    }

    fn outputs_idle(&self) -> bool {
        self.plan.outputs.iter().all(|&id| {
            if let OpState::Emit(o) = &self.ops[id as usize] {
                o.buffered_events() == 0 && o.live_candidates() == 0
            } else {
                true
            }
        })
    }

    fn push_unchecked(&mut self, id: EventId) {
        let rec = self.store.stored(id);
        let doc = match rec.kind {
            StoredKind::StartDocument | StoredKind::Start => DocEvent::Open {
                label: rec.sym,
                payload: id,
            },
            StoredKind::EndDocument | StoredKind::End => DocEvent::Close {
                label: rec.sym,
                payload: id,
            },
            StoredKind::Text | StoredKind::Comment | StoredKind::Pi => {
                DocEvent::Item { payload: id }
            }
        };
        match &doc {
            DocEvent::Open { .. } => {
                self.depth += 1;
                self.stats.max_stream_depth = self.stats.max_stream_depth.max(self.depth);
            }
            DocEvent::Close { .. } => self.depth = self.depth.saturating_sub(1),
            DocEvent::Item { .. } => {
                // Inert tick: the event traverses the DAG unchanged (no
                // operator state, no transitions, no formulas), so the plan's
                // static flow replaces the full propagation. Taps and
                // transition tracing observe per-message, so they force the
                // slow path.
                if self.tap.is_none() && !self.tracing {
                    self.run_item_tick(doc);
                    self.tick += 1;
                    return;
                }
            }
        }
        self.inbox[0].push(Message::Doc(doc));
        self.run_tick();
        self.tick += 1;
    }

    /// Execute one inert tick (text/comment/PI): account the statically
    /// known per-node message counts, then step only the output operators —
    /// the sole operators whose behaviour depends on such events (they
    /// buffer the event into live candidate fragments).
    fn run_item_tick(&mut self, doc: DocEvent) {
        let plan = self.plan;
        self.stats.messages += plan.item_total;
        for (v, &f) in plan.item_flow.iter().enumerate() {
            self.node_stats[v].messages += u64::from(f);
        }
        for &id in &plan.outputs {
            let sink_idx = plan.sink_of[id as usize] as usize;
            if let OpState::Emit(o) = &mut self.ops[id as usize] {
                for _ in 0..plan.item_flow[id as usize] {
                    o.step(
                        Message::Doc(doc),
                        &mut self.sinks[sink_idx],
                        self.tick,
                        &mut self.stats,
                        &self.store,
                    );
                }
            }
        }
    }

    /// One tick: execute every instruction, in order, over the messages its
    /// inbox slots hold. Empty nodes are skipped (their stacks cannot have
    /// changed since the last message they consumed, so the observed peaks
    /// are identical to the interpreter's).
    fn run_tick(&mut self) {
        let plan = self.plan;
        for id in 0..plan.code.len() {
            let base = plan.port_base[id] as usize;
            let two_ports = plan.port_base[id + 1] as usize - base == 2;
            if self.inbox[base].is_empty() && (!two_ports || self.inbox[base + 1].is_empty()) {
                continue;
            }
            debug_assert!(self.outbuf.is_empty());
            match &mut self.ops[id] {
                OpState::Split(_) if self.tap.is_none() && !self.tracing => {
                    // A split forwards every message verbatim (the fan-out
                    // below duplicates); with nothing observing per message,
                    // the whole inbox slot moves to the consumers in bulk.
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    let consumed = self.scratch.len() as u64;
                    self.stats.messages += consumed;
                    self.node_stats[id].messages += consumed;
                    let mut max_formula = 0usize;
                    for m in &self.scratch {
                        if let Message::Activate(f) = m {
                            max_formula = max_formula.max(f.size());
                        }
                    }
                    if max_formula > 0 {
                        self.stats.observe_formula(max_formula);
                        self.node_stats[id].max_formula_size =
                            self.node_stats[id].max_formula_size.max(max_formula);
                    }
                    let cs =
                        &plan.cons[plan.cons_base[id] as usize..plan.cons_base[id + 1] as usize];
                    if let Some((&last, rest)) = cs.split_last() {
                        for &s in rest {
                            self.inbox[s as usize].extend(self.scratch.iter().cloned());
                        }
                        let s = last as usize;
                        if self.inbox[s].is_empty() {
                            std::mem::swap(&mut self.inbox[s], &mut self.scratch);
                        } else {
                            self.inbox[s].append(&mut self.scratch);
                        }
                    }
                    self.scratch.clear();
                    continue;
                }
                OpState::Join(j) => {
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    std::mem::swap(&mut self.inbox[base + 1], &mut self.scratch2);
                    let consumed = (self.scratch.len() + self.scratch2.len()) as u64;
                    self.stats.messages += consumed;
                    self.node_stats[id].messages += consumed;
                    if let Some(tap) = &self.tap {
                        for m in self.scratch.iter().chain(self.scratch2.iter()) {
                            tap.borrow_mut().on_message(id, m);
                        }
                    }
                    let cs =
                        &plan.cons[plan.cons_base[id] as usize..plan.cons_base[id + 1] as usize];
                    if cs.len() == 1 {
                        // Single consumer: emit straight into its inbox slot,
                        // skipping the outbuf round trip.
                        let s = cs[0] as usize;
                        j.step2_drain(&mut self.scratch, &mut self.scratch2, &mut self.inbox[s]);
                        std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                        std::mem::swap(&mut self.inbox[base + 1], &mut self.scratch2);
                        continue;
                    }
                    j.step2_drain(&mut self.scratch, &mut self.scratch2, &mut self.outbuf);
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    std::mem::swap(&mut self.inbox[base + 1], &mut self.scratch2);
                }
                OpState::Emit(o) => {
                    if self.tap.is_none() && self.inbox[base].len() == 1 {
                        // Common tick: exactly one message (the document
                        // event) — pop it straight through, no buffer swaps.
                        self.stats.messages += 1;
                        self.node_stats[id].messages += 1;
                        let m = self.inbox[base].pop().expect("length checked");
                        if let Message::Activate(f) = &m {
                            let size = f.size();
                            self.stats.observe_formula(size);
                            self.node_stats[id].max_formula_size =
                                self.node_stats[id].max_formula_size.max(size);
                        }
                        let sink_idx = plan.sink_of[id] as usize;
                        o.step(
                            m,
                            &mut self.sinks[sink_idx],
                            self.tick,
                            &mut self.stats,
                            &self.store,
                        );
                        continue;
                    }
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    let sink_idx = plan.sink_of[id] as usize;
                    let (results_before, dropped_before) = (self.stats.results, self.stats.dropped);
                    // Counters batch over the drained slot, and only Activate
                    // messages carry a formula — `formula_size()` is 0 for
                    // everything else and `observe_formula` is a pure max, so
                    // skipping the zeros is observationally identical to the
                    // interpreter's per-message accounting.
                    let consumed = self.scratch.len() as u64;
                    self.stats.messages += consumed;
                    self.node_stats[id].messages += consumed;
                    for m in self.scratch.drain(..) {
                        if let Message::Activate(f) = &m {
                            let size = f.size();
                            self.stats.observe_formula(size);
                            self.node_stats[id].max_formula_size =
                                self.node_stats[id].max_formula_size.max(size);
                        }
                        if let Some(tap) = &self.tap {
                            tap.borrow_mut().on_message(id, &m);
                        }
                        o.step(
                            m,
                            &mut self.sinks[sink_idx],
                            self.tick,
                            &mut self.stats,
                            &self.store,
                        );
                    }
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    if let Some(tap) = &self.tap {
                        for _ in results_before..self.stats.results {
                            tap.borrow_mut().on_candidate_resolved(id, true, self.tick);
                        }
                        for _ in dropped_before..self.stats.dropped {
                            tap.borrow_mut().on_candidate_resolved(id, false, self.tick);
                        }
                    }
                    continue;
                }
                op => {
                    let cs =
                        &plan.cons[plan.cons_base[id] as usize..plan.cons_base[id + 1] as usize];
                    let single = if cs.len() == 1 {
                        Some(cs[0] as usize)
                    } else {
                        None
                    };
                    if let Some(s) = single {
                        if self.tap.is_none() && self.inbox[base].len() == 1 {
                            // Common tick: one message, one consumer — pop it
                            // straight through, no buffer swaps or drains.
                            self.stats.messages += 1;
                            self.node_stats[id].messages += 1;
                            let m = self.inbox[base].pop().expect("length checked");
                            if let Message::Activate(f) = &m {
                                let size = f.size();
                                self.stats.observe_formula(size);
                                self.node_stats[id].max_formula_size =
                                    self.node_stats[id].max_formula_size.max(size);
                            }
                            op.step(m, &mut self.inbox[s]);
                            let (d, c) = op.stack_sizes();
                            self.stats.observe_stacks(d, c);
                            self.node_stats[id].max_depth_stack =
                                self.node_stats[id].max_depth_stack.max(d);
                            self.node_stats[id].max_cond_stack =
                                self.node_stats[id].max_cond_stack.max(c);
                            continue;
                        }
                    }
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    let consumed = self.scratch.len() as u64;
                    self.stats.messages += consumed;
                    self.node_stats[id].messages += consumed;
                    if let Some(tap) = self.tap.clone() {
                        // Observed path: per-message tap callbacks, same
                        // cadence as the interpreter.
                        for m in self.scratch.drain(..) {
                            if let Message::Activate(f) = &m {
                                let size = f.size();
                                self.stats.observe_formula(size);
                                self.node_stats[id].max_formula_size =
                                    self.node_stats[id].max_formula_size.max(size);
                            }
                            tap.borrow_mut().on_message(id, &m);
                            op.step(m, &mut self.outbuf);
                        }
                    } else if let Some(s) = single {
                        // Hot path, single consumer: counters batched above,
                        // emissions go straight into the consumer's inbox
                        // slot (skipping the outbuf round trip), and only
                        // formula-carrying messages need a tree walk.
                        let mut max_formula = 0usize;
                        for m in self.scratch.drain(..) {
                            if let Message::Activate(f) = &m {
                                max_formula = max_formula.max(f.size());
                            }
                            op.step(m, &mut self.inbox[s]);
                        }
                        if max_formula > 0 {
                            self.stats.observe_formula(max_formula);
                            self.node_stats[id].max_formula_size =
                                self.node_stats[id].max_formula_size.max(max_formula);
                        }
                        std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                        let (d, c) = op.stack_sizes();
                        self.stats.observe_stacks(d, c);
                        self.node_stats[id].max_depth_stack =
                            self.node_stats[id].max_depth_stack.max(d);
                        self.node_stats[id].max_cond_stack =
                            self.node_stats[id].max_cond_stack.max(c);
                        continue;
                    } else {
                        // Hot path, fan-out (or sink) node: batch as above,
                        // buffer emissions for the consumer loop below.
                        let mut max_formula = 0usize;
                        for m in self.scratch.drain(..) {
                            if let Message::Activate(f) = &m {
                                max_formula = max_formula.max(f.size());
                            }
                            op.step(m, &mut self.outbuf);
                        }
                        if max_formula > 0 {
                            self.stats.observe_formula(max_formula);
                            self.node_stats[id].max_formula_size =
                                self.node_stats[id].max_formula_size.max(max_formula);
                        }
                    }
                    std::mem::swap(&mut self.inbox[base], &mut self.scratch);
                    let (d, c) = op.stack_sizes();
                    self.stats.observe_stacks(d, c);
                    self.node_stats[id].max_depth_stack =
                        self.node_stats[id].max_depth_stack.max(d);
                    self.node_stats[id].max_cond_stack = self.node_stats[id].max_cond_stack.max(c);
                }
            }
            // Fan out to the consumer slots; the last one takes ownership
            // (and, when its slot is empty, the whole buffer by swap).
            let cs = &plan.cons[plan.cons_base[id] as usize..plan.cons_base[id + 1] as usize];
            match cs.len() {
                0 => self.outbuf.clear(),
                1 => {
                    let s = cs[0] as usize;
                    if self.inbox[s].is_empty() {
                        std::mem::swap(&mut self.inbox[s], &mut self.outbuf);
                    } else {
                        self.inbox[s].append(&mut self.outbuf);
                    }
                }
                _ => {
                    for &s in &cs[..cs.len() - 1] {
                        self.inbox[s as usize].extend(self.outbuf.iter().cloned());
                    }
                    let s = cs[cs.len() - 1] as usize;
                    self.inbox[s].append(&mut self.outbuf);
                }
            }
        }
    }

    /// Drain after a limit breach: flush determined results, release
    /// undetermined buffers, discard in-flight messages.
    fn abort(&mut self) {
        for &id in &self.plan.outputs {
            let sink_idx = self.plan.sink_of[id as usize] as usize;
            if let OpState::Emit(o) = &mut self.ops[id as usize] {
                o.abort(
                    &mut self.sinks[sink_idx],
                    self.tick,
                    &mut self.stats,
                    &self.store,
                );
            }
        }
        for slot in &mut self.inbox {
            slot.clear();
        }
    }

    /// End of stream: flush the output operators, return the statistics.
    pub fn finish(self) -> EngineStats {
        self.finish_full().0
    }

    /// Like [`PlanRun::finish`], also returning per-node snapshots.
    pub fn finish_full(mut self) -> (EngineStats, Vec<TransducerStats>) {
        for &id in &self.plan.outputs {
            let sink_idx = self.plan.sink_of[id as usize] as usize;
            if let OpState::Emit(o) = &mut self.ops[id as usize] {
                o.finish(
                    &mut self.sinks[sink_idx],
                    self.tick,
                    &mut self.stats,
                    &self.store,
                );
            }
        }
        self.stats.ticks = self.tick;
        self.stats.vars_created = u64::from(self.factory.borrow().minted());
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(self.store.peak_bytes());
        self.stats.interned_symbols = self.stats.interned_symbols.max(self.store.symbols().len());
        self.harvest_latency();
        if self.tracer.enabled() {
            self.emit_trace();
        }
        (self.stats, self.node_stats)
    }

    fn harvest_latency(&mut self) {
        for &id in &self.plan.outputs {
            if let OpState::Emit(o) = &self.ops[id as usize] {
                self.det_latency[id as usize].merge(o.determination_latency());
            }
        }
    }

    /// Determination-latency histograms, one `(node id, histogram)` pair per
    /// output node, including latencies accumulated across
    /// [`PlanRun::reset_session`] rebuilds.
    pub fn determination_latency(&self) -> Vec<(usize, Histogram)> {
        let mut out = Vec::new();
        for &id in &self.plan.outputs {
            if let OpState::Emit(o) = &self.ops[id as usize] {
                let mut h = self.det_latency[id as usize].clone();
                h.merge(o.determination_latency());
                out.push((id as usize, h));
            }
        }
        out
    }

    /// End-of-run trace records (same schema as the interpreter's — the
    /// engine section of DESIGN.md §13).
    fn emit_trace(&self) {
        let t = &self.tracer;
        t.counter("engine.ticks", self.stats.ticks);
        t.counter("engine.messages", self.stats.messages);
        t.counter("engine.results", self.stats.results);
        t.counter("engine.dropped", self.stats.dropped);
        t.counter("engine.candidates_created", self.stats.candidates_created);
        t.counter("engine.vars_created", self.stats.vars_created);
        t.gauge(
            "engine.peak_buffered_events",
            self.stats.peak_buffered_events as u64,
        );
        t.gauge(
            "engine.peak_live_candidates",
            self.stats.peak_live_candidates as u64,
        );
        t.gauge(
            "engine.peak_arena_bytes",
            self.stats.peak_arena_bytes as u64,
        );
        t.gauge(
            "engine.max_stream_depth",
            self.stats.max_stream_depth as u64,
        );
        for ns in &self.node_stats {
            t.counter_with(
                "engine.node.messages",
                ns.messages,
                &[
                    ("node", Value::U64(ns.node as u64)),
                    ("kind", Value::from(ns.kind.as_str())),
                ],
            );
        }
        for &id in &self.plan.outputs {
            t.hist(
                "engine.determination_latency",
                &self.det_latency[id as usize],
                &[
                    ("node", Value::U64(u64::from(id))),
                    ("kind", Value::from("OU")),
                ],
            );
        }
    }

    /// Reset the run for the next document of a long-lived session — the
    /// VM counterpart of [`crate::network::Run::reset_session`], with
    /// identical hygiene: operator states are re-instantiated from the plan,
    /// in-flight messages are discarded, the arena is recycled, and interned
    /// symbols beyond the query-label baseline are forgotten. The inbox
    /// slots and drain buffers keep their capacity — the plan and every
    /// allocation are reused across documents.
    pub fn reset_session(&mut self) {
        self.harvest_latency();
        self.store.reset();
        self.store.symbols_mut().truncate(self.symbol_baseline);
        self.ops = self
            .plan
            .instantiate(self.store.symbols_mut(), &self.factory);
        for slot in &mut self.inbox {
            slot.clear();
        }
        self.depth = 0;
        if self.tracing {
            self.set_tracing(true);
        }
    }

    /// Capture the run's accumulator state as a [`Snapshot`] — the VM
    /// counterpart of [`crate::network::Run::checkpoint`], valid only at a
    /// quiescent document boundary. Snapshots are engine-portable: the
    /// plan's kind list equals the interpreter network's `describe()`
    /// output, so a VM snapshot restores into an interpreter run and vice
    /// versa.
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        if self.depth != 0 || !self.outputs_idle() || !self.store.is_empty() {
            return Err(SnapshotError::NotQuiescent);
        }
        let mut det_latency = self.det_latency.clone();
        for &id in &self.plan.outputs {
            if let OpState::Emit(o) = &self.ops[id as usize] {
                det_latency[id as usize].merge(o.determination_latency());
            }
        }
        let symbols = (0..self.store.symbols().len())
            .map(|i| self.store.symbols().name(i as u32).to_string())
            .collect();
        Ok(Snapshot {
            engine: Engine::Vm,
            tick: self.tick,
            stats: self.stats.clone(),
            transducers: self.node_stats.clone(),
            minted: self.factory.borrow().minted(),
            det_latency,
            exhausted: self.exhausted,
            limits: self.limits,
            arena_peak: self.store.peak_bytes() as u64,
            symbols,
            arena: self.store.export_arena(),
            session: None,
        })
    }

    /// Restore a snapshot into this freshly built run — the VM counterpart
    /// of [`crate::network::Run::restore`], with identical shape and symbol
    /// verification.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        if self.tick != 0 || self.depth != 0 || !self.store.is_empty() {
            return Err(SnapshotError::NotQuiescent);
        }
        if snap.transducers.len() != self.node_stats.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} nodes, run has {}",
                snap.transducers.len(),
                self.node_stats.len()
            )));
        }
        for (t, mine) in snap.transducers.iter().zip(&self.node_stats) {
            if t.node != mine.node || t.kind != mine.kind {
                return Err(SnapshotError::Mismatch(format!(
                    "node {} is {} in the snapshot but {} in the run",
                    mine.node, t.kind, mine.kind
                )));
            }
        }
        if snap.det_latency.len() != self.det_latency.len() {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} latency accumulators, run has {}",
                snap.det_latency.len(),
                self.det_latency.len()
            )));
        }
        let baseline = self.symbol_baseline;
        if snap.symbols.len() < baseline || self.store.symbols().len() != baseline {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} symbols, run baseline is {}",
                snap.symbols.len(),
                baseline
            )));
        }
        for i in 0..baseline {
            if snap.symbols[i] != self.store.symbols().name(i as u32) {
                return Err(SnapshotError::Mismatch(format!(
                    "symbol {i} is {:?} in the snapshot but {:?} in the run",
                    snap.symbols[i],
                    self.store.symbols().name(i as u32)
                )));
            }
        }
        for name in &snap.symbols[baseline..] {
            self.store.symbols_mut().intern(name);
        }
        self.tick = snap.tick;
        self.stats = snap.stats.clone();
        self.node_stats = snap.transducers.clone();
        self.det_latency = snap.det_latency.clone();
        self.exhausted = snap.exhausted;
        self.limits = snap.limits;
        self.factory.borrow_mut().restore_minted(snap.minted);
        self.store
            .restore_peak(usize::try_from(snap.arena_peak).unwrap_or(usize::MAX));
        self.store.import_arena(&snap.arena);
        Ok(())
    }

    /// Statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Per-node snapshots so far, indexed by instruction id.
    pub fn transducer_stats(&self) -> &[TransducerStats] {
        &self.node_stats
    }

    /// The current tick number.
    pub fn tick(&self) -> u64 {
        self.tick
    }
}

/// A run on either backend, chosen at instantiation time — the type behind
/// [`crate::Evaluator`] and the server sessions. Every method delegates to
/// the selected engine; the two are interchangeable (differentially tested).
pub enum EngineRun<'n, 's> {
    /// Interpreter run.
    Network(crate::network::Run<'n, 's>),
    /// Compiled-plan VM run.
    Vm(PlanRun<'n, 's>),
}

macro_rules! delegate {
    ($self:ident, $run:ident => $body:expr) => {
        match $self {
            EngineRun::Network($run) => $body,
            EngineRun::Vm($run) => $body,
        }
    };
}

impl<'n, 's> EngineRun<'n, 's> {
    /// Which engine this run executes on.
    pub fn engine(&self) -> Engine {
        match self {
            EngineRun::Network(_) => Engine::Network,
            EngineRun::Vm(_) => Engine::Vm,
        }
    }

    /// See [`crate::network::Run::set_limits`].
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        delegate!(self, r => r.set_limits(limits))
    }

    /// See [`crate::network::Run::set_tap`].
    pub fn set_tap(&mut self, tap: Rc<RefCell<dyn Tap>>) {
        delegate!(self, r => r.set_tap(tap))
    }

    /// See [`crate::network::Run::set_tracer`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        delegate!(self, r => r.set_tracer(tracer))
    }

    /// See [`crate::network::Run::exhausted`].
    pub fn exhausted(&self) -> Option<LimitBreach> {
        delegate!(self, r => r.exhausted())
    }

    /// See [`crate::network::Run::set_tracing`].
    pub fn set_tracing(&mut self, on: bool) {
        delegate!(self, r => r.set_tracing(on))
    }

    /// See [`crate::network::Run::take_traces`].
    pub fn take_traces(&mut self) -> Vec<String> {
        delegate!(self, r => r.take_traces())
    }

    /// See [`crate::network::Run::store_mut`].
    pub fn store_mut(&mut self) -> &mut EventStore {
        delegate!(self, r => r.store_mut())
    }

    /// See [`crate::network::Run::store`].
    pub fn store(&self) -> &EventStore {
        delegate!(self, r => r.store())
    }

    /// See [`crate::network::Run::push`].
    pub fn push(&mut self, event: XmlEvent) {
        delegate!(self, r => r.push(event))
    }

    /// See [`crate::network::Run::try_push`].
    pub fn try_push(&mut self, event: XmlEvent) -> Result<(), EvalError> {
        delegate!(self, r => r.try_push(event))
    }

    /// See [`crate::network::Run::try_push_id`].
    pub fn try_push_id(&mut self, id: EventId) -> Result<(), EvalError> {
        delegate!(self, r => r.try_push_id(id))
    }

    /// See [`crate::network::Run::finish`].
    pub fn finish(self) -> EngineStats {
        delegate!(self, r => r.finish())
    }

    /// See [`crate::network::Run::finish_full`].
    pub fn finish_full(self) -> (EngineStats, Vec<TransducerStats>) {
        delegate!(self, r => r.finish_full())
    }

    /// See [`crate::network::Run::determination_latency`].
    pub fn determination_latency(&self) -> Vec<(usize, Histogram)> {
        delegate!(self, r => r.determination_latency())
    }

    /// See [`crate::network::Run::checkpoint`].
    pub fn checkpoint(&self) -> Result<Snapshot, SnapshotError> {
        delegate!(self, r => r.checkpoint())
    }

    /// Restore a snapshot into this freshly built run. Cross-engine: the
    /// snapshot may come from either backend.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        delegate!(self, r => r.restore(snap))
    }

    /// Reset for the next document of a session (see
    /// [`crate::network::Run::reset_session`]).
    pub fn reset_session(&mut self) {
        delegate!(self, r => r.reset_session())
    }

    /// See [`crate::network::Run::stats`].
    pub fn stats(&self) -> &EngineStats {
        delegate!(self, r => r.stats())
    }

    /// See [`crate::network::Run::transducer_stats`].
    pub fn transducer_stats(&self) -> &[TransducerStats] {
        delegate!(self, r => r.transducer_stats())
    }

    /// See [`crate::network::Run::tick`].
    pub fn tick(&self) -> u64 {
        delegate!(self, r => r.tick())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompiledNetwork;
    use crate::sink::FragmentCollector;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    fn run_vm(query: &str, xml: &str) -> (Vec<String>, EngineStats) {
        let net = CompiledNetwork::compile(&query.parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = PlanRun::new(net.plan(), vec![&mut sink]);
        for ev in spex_xml::reader::parse_events(xml).unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        (sink.into_fragments(), stats)
    }

    fn run_network(query: &str, xml: &str) -> (Vec<String>, EngineStats) {
        let net = CompiledNetwork::compile(&query.parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = net.run(&mut sink);
        for ev in spex_xml::reader::parse_events(xml).unwrap() {
            run.push(ev);
        }
        let stats = run.finish();
        (sink.into_fragments(), stats)
    }

    #[test]
    fn plan_lowering_matches_network_shape() {
        // Fig. 12's network, instruction for instruction.
        let net = CompiledNetwork::compile(&"_*.a[b].c".parse().unwrap());
        let plan = Plan::compile(net.spec());
        assert_eq!(plan.len(), net.degree());
        assert_eq!(plan.code()[0], Op::Input);
        assert_eq!(*plan.code().last().unwrap(), Op::Emit);
        assert_eq!(plan.sink_count(), 1);
        // The wildcard closure and the two named children share the label
        // pool: `_`, `a`, `b`, `c`.
        assert_eq!(plan.labels.len(), 4);
        let dump = plan.dump();
        assert!(dump.contains("CL(_)"), "{dump}");
        assert!(dump.contains("VC(q0)"), "{dump}");
    }

    #[test]
    fn vm_matches_network_on_the_paper_examples() {
        for query in ["a.c", "a+.c+", "_*.a[b].c", "_*._", "a|b", "a?.c", "b*"] {
            let (vf, vs) = run_vm(query, FIG1);
            let (nf, ns) = run_network(query, FIG1);
            assert_eq!(vf, nf, "fragments diverge for `{query}`");
            assert_eq!(vs, ns, "stats diverge for `{query}`");
        }
    }

    #[test]
    fn vm_reproduces_figure_5_transition_traces() {
        // The golden interpreter trace test, through the VM: `a+.c+` over
        // the Fig. 1 stream fires exactly the transitions of Fig. 5.
        let net = CompiledNetwork::compile(&"a+.c+".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = PlanRun::new(net.plan(), vec![&mut sink]);
        run.set_tracing(true);
        let mut t1 = Vec::new();
        let mut t2 = Vec::new();
        for ev in spex_xml::reader::parse_events(FIG1).unwrap() {
            run.push(ev);
            let traces = run.take_traces();
            t1.push(traces[1].clone());
            t2.push(traces[2].clone());
        }
        assert_eq!(
            t1,
            vec!["1,5", "7", "7", "8", "4", "9", "8", "4", "8", "4", "9", "11"]
        );
        assert_eq!(
            t2,
            vec!["2", "1,5", "6,13", "7", "9", "10", "8", "4", "7", "9", "11", "3"]
        );
    }

    #[test]
    fn vm_session_reset_discards_stale_state() {
        let net = CompiledNetwork::compile(&"_*.a[b].c".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = PlanRun::new(net.plan(), vec![&mut sink]);
        let events = spex_xml::reader::parse_events("<a><c>stale</c><b/></a>").unwrap();
        for ev in events.iter().take(5) {
            run.push(ev.clone());
        }
        assert!(run.stats().peak_buffered_events > 0);
        run.reset_session();
        for ev in spex_xml::reader::parse_events("<a><c>fresh</c><b/></a>").unwrap() {
            run.push(ev);
        }
        run.finish();
        assert_eq!(sink.fragments(), ["<c>fresh</c>".to_string()]);
    }

    #[test]
    fn vm_limit_breach_drains_and_latches() {
        let net = CompiledNetwork::compile(&"r.x".parse().unwrap());
        let mut sink = FragmentCollector::new();
        let mut run = PlanRun::new(net.plan(), vec![&mut sink]);
        run.set_limits(ResourceLimits::default().with_max_total_messages(40));
        let events =
            spex_xml::reader::parse_events("<r><x>1</x><x>2</x><x>3</x><x>4</x></r>").unwrap();
        let mut tripped = false;
        for ev in events {
            if run.try_push(ev).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert_eq!(
            run.exhausted().expect("cap must trip").kind,
            crate::LimitKind::TotalMessages
        );
        assert!(run.try_push(XmlEvent::text("late")).is_err());
        let stats = run.finish();
        assert_eq!(stats.results + stats.dropped, stats.candidates_created);
        assert!(!sink.fragments().is_empty());
    }

    #[test]
    fn engine_round_trips_through_str() {
        for e in Engine::ALL {
            assert_eq!(e.as_str().parse::<Engine>().unwrap(), e);
        }
        assert!("bogus".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Vm);
    }
}
