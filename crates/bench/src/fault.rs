//! Deterministic fault injection for the robustness harness.
//!
//! Six seedable mutators corrupt a well-formed XML byte stream the way real
//! transports do — truncation, lost or duplicated close tags, mangled
//! entities, spliced garbage — and [`fault_sweep`] drives the mutants
//! through the recovery pipeline (`spex_core::evaluate_recovering`),
//! checking two properties for every mutant × policy pair:
//!
//! 1. **Panic freedom / no surfaced error** — a `Repair` or `SkipSubtree`
//!    run over any mutant must complete and produce a `RunReport`.
//! 2. **Subset soundness** — the fragments delivered for the mutant are a
//!    sub-multiset of the clean-stream oracle results (nothing fabricated).
//!
//! No mutator ever fabricates an element *open* tag (the splice strings are
//! chosen to be unparseable), which is what makes the subset property
//! attainable: repairs can only lose or reposition elements, and
//! repositioned ones are quarantined by their damage intervals.
//!
//! The same mutators back `tests/recovery.rs` (table-driven, debug builds)
//! and the `harness fault-sweep` subcommand (larger release-mode sweep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_core::{
    evaluate_recovering, CompiledNetwork, FragmentCollector, RecoveryOptions, RunReport,
};
use spex_xml::RecoveryPolicy;

/// One way of corrupting a well-formed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutator {
    /// Cut the stream at a random byte (snapped to a char boundary).
    TruncateAtByte,
    /// Swap the names of two close tags (both become mismatched).
    SwapClose,
    /// Duplicate a close tag (the copy is a stray close).
    DuplicateClose,
    /// Delete a close tag (its element is auto-closed later, or truncated).
    DeleteClose,
    /// Break an entity reference in text content.
    CorruptEntity,
    /// Splice an unparseable markup fragment between two events.
    SpliceGarbage,
}

impl Mutator {
    /// All mutators, in a fixed order.
    pub const ALL: [Mutator; 6] = [
        Mutator::TruncateAtByte,
        Mutator::SwapClose,
        Mutator::DuplicateClose,
        Mutator::DeleteClose,
        Mutator::CorruptEntity,
        Mutator::SpliceGarbage,
    ];

    /// Stable kebab-case name for tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Mutator::TruncateAtByte => "truncate-at-byte",
            Mutator::SwapClose => "swap-close",
            Mutator::DuplicateClose => "duplicate-close",
            Mutator::DeleteClose => "delete-close",
            Mutator::CorruptEntity => "corrupt-entity",
            Mutator::SpliceGarbage => "splice-garbage",
        }
    }
}

impl std::fmt::Display for Mutator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of applying one mutator: the corrupted bytes and where the
/// corruption was injected (for checking reported fault positions).
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Which mutator produced this.
    pub mutator: Mutator,
    /// Byte offset of the (first) injected corruption in `xml`.
    pub offset: usize,
    /// The corrupted document.
    pub xml: String,
    /// `false` when the document offered no opportunity for this mutator
    /// (e.g. no entity to corrupt) and `xml` is unchanged.
    pub changed: bool,
}

/// Byte spans of every `</name>` close tag in `xml`.
fn close_tag_spans(xml: &str) -> Vec<(usize, usize)> {
    let bytes = xml.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b'<' && bytes[i + 1] == b'/' {
            if let Some(end) = xml[i..].find('>') {
                spans.push((i, i + end + 1));
                i += end + 1;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// Byte offsets where text content starts (just after a `>` that is
/// followed by a non-`<` character) — safe insertion points for a broken
/// entity.
fn text_starts(xml: &str) -> Vec<usize> {
    let bytes = xml.as_bytes();
    (1..bytes.len())
        .filter(|&i| bytes[i - 1] == b'>' && bytes[i] != b'<' && xml.is_char_boundary(i))
        .collect()
}

/// Apply `mutator` to `xml` deterministically under `seed`.
pub fn mutate(xml: &str, mutator: Mutator, seed: u64) -> Mutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let unchanged = |m: Mutator| Mutation {
        mutator: m,
        offset: 0,
        xml: xml.to_string(),
        changed: false,
    };
    match mutator {
        Mutator::TruncateAtByte => {
            if xml.len() < 2 {
                return unchanged(mutator);
            }
            let mut cut = rng.gen_range(1..xml.len());
            while !xml.is_char_boundary(cut) {
                cut -= 1;
            }
            Mutation {
                mutator,
                offset: cut,
                xml: xml[..cut].to_string(),
                changed: true,
            }
        }
        Mutator::SwapClose => {
            let spans = close_tag_spans(xml);
            if spans.len() < 2 {
                return unchanged(mutator);
            }
            let a = rng.gen_range(0..spans.len());
            let mut b = rng.gen_range(0..spans.len() - 1);
            if b >= a {
                b += 1;
            }
            let (first, second) = if a < b { (a, b) } else { (b, a) };
            let (fs, fe) = spans[first];
            let (ss, se) = spans[second];
            let first_tag = &xml[fs..fe];
            let second_tag = &xml[ss..se];
            if first_tag == second_tag {
                return unchanged(mutator);
            }
            let mut out = String::with_capacity(xml.len());
            out.push_str(&xml[..fs]);
            out.push_str(second_tag);
            out.push_str(&xml[fe..ss]);
            out.push_str(first_tag);
            out.push_str(&xml[se..]);
            Mutation {
                mutator,
                offset: fs,
                xml: out,
                changed: true,
            }
        }
        Mutator::DuplicateClose => {
            let spans = close_tag_spans(xml);
            if spans.is_empty() {
                return unchanged(mutator);
            }
            let (s, e) = spans[rng.gen_range(0..spans.len())];
            let mut out = String::with_capacity(xml.len() + (e - s));
            out.push_str(&xml[..e]);
            out.push_str(&xml[s..e]);
            out.push_str(&xml[e..]);
            Mutation {
                mutator,
                offset: e,
                xml: out,
                changed: true,
            }
        }
        Mutator::DeleteClose => {
            let spans = close_tag_spans(xml);
            if spans.is_empty() {
                return unchanged(mutator);
            }
            let (s, e) = spans[rng.gen_range(0..spans.len())];
            let mut out = String::with_capacity(xml.len());
            out.push_str(&xml[..s]);
            out.push_str(&xml[e..]);
            Mutation {
                mutator,
                offset: s,
                xml: out,
                changed: true,
            }
        }
        Mutator::CorruptEntity => {
            let starts = text_starts(xml);
            if starts.is_empty() {
                return unchanged(mutator);
            }
            let at = starts[rng.gen_range(0..starts.len())];
            let mut out = String::with_capacity(xml.len() + 8);
            out.push_str(&xml[..at]);
            out.push_str("&bogus;");
            out.push_str(&xml[at..]);
            Mutation {
                mutator,
                offset: at,
                xml: out,
                changed: true,
            }
        }
        Mutator::SpliceGarbage => {
            // Every splice string fails to parse as markup; none can be
            // mistaken for a well-formed element open.
            const GARBAGE: [&str; 4] = ["<!JUNK ", "<%%%>", "</zzz-nope>", "<???"];
            let bytes = xml.as_bytes();
            let opens: Vec<usize> = (1..bytes.len()).filter(|&i| bytes[i] == b'<').collect();
            if opens.is_empty() {
                return unchanged(mutator);
            }
            let at = opens[rng.gen_range(0..opens.len())];
            let junk = GARBAGE[rng.gen_range(0..GARBAGE.len())];
            let mut out = String::with_capacity(xml.len() + junk.len());
            out.push_str(&xml[..at]);
            out.push_str(junk);
            out.push_str(&xml[at..]);
            Mutation {
                mutator,
                offset: at,
                xml: out,
                changed: true,
            }
        }
    }
}

/// Multiset subset test: every string of `sub` occurs in `sup` at least as
/// often.
pub fn is_sub_multiset(sub: &[String], sup: &[String]) -> bool {
    let mut counts = std::collections::HashMap::new();
    for s in sup {
        *counts.entry(s.as_str()).or_insert(0i64) += 1;
    }
    sub.iter().all(|s| {
        let c = counts.entry(s.as_str()).or_insert(0);
        *c -= 1;
        *c >= 0
    })
}

/// One soundness violation found by [`fault_sweep`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description (query, mutator, seed, what went wrong).
    pub detail: String,
}

/// Aggregate outcome of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Mutants actually produced (mutator applied and changed the bytes).
    pub mutants: usize,
    /// Mutator applications that found nothing to corrupt.
    pub unchanged: usize,
    /// Runs that reported at least one fault.
    pub faulted_runs: usize,
    /// Total faults reported across all runs.
    pub faults_reported: usize,
    /// Result fragments delivered across all runs.
    pub delivered: usize,
    /// Result fragments quarantined across all runs.
    pub quarantined: usize,
    /// Soundness or completion violations (must be empty).
    pub violations: Vec<Violation>,
}

/// Run one mutant through the recovery pipeline, appending to `outcome`.
fn check_mutant(
    network: &CompiledNetwork,
    oracle: &[String],
    mutation: &Mutation,
    policy: RecoveryPolicy,
    label: &str,
    outcome: &mut SweepOutcome,
) -> Option<RunReport> {
    let mut collector = FragmentCollector::new();
    let options = RecoveryOptions {
        policy,
        ..RecoveryOptions::default()
    };
    let report = match evaluate_recovering(
        network,
        std::io::Cursor::new(mutation.xml.as_bytes().to_vec()),
        options,
        spex_core::ResourceLimits::default(),
        &mut collector,
    ) {
        Ok(r) => r,
        Err(e) => {
            outcome.violations.push(Violation {
                detail: format!("{label}: {policy} run surfaced an error: {e}"),
            });
            return None;
        }
    };
    let frags = collector.into_fragments();
    if !is_sub_multiset(&frags, oracle) {
        outcome.violations.push(Violation {
            detail: format!(
                "{label}: {policy} results not a subset of the clean oracle \
                 ({} delivered vs {} clean)",
                frags.len(),
                oracle.len()
            ),
        });
    }
    if !report.faults.is_empty() {
        outcome.faulted_runs += 1;
    }
    outcome.faults_reported += report.faults.len();
    outcome.delivered += frags.len();
    outcome.quarantined += report.dropped as usize;
    Some(report)
}

/// Sweep `rounds` seeds × all mutators × all recovery policies over each
/// `(query, clean_xml)` workload pair. Returns aggregate counts; any entry
/// in [`SweepOutcome::violations`] is a bug.
pub fn fault_sweep(
    workloads: &[(spex_query::Rpeq, String)],
    seed_base: u64,
    rounds: usize,
) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for (wi, (query, xml)) in workloads.iter().enumerate() {
        let network = CompiledNetwork::compile(query);
        // The clean oracle: plain evaluation of the uncorrupted stream.
        let oracle = match spex_core::evaluate_str(&query.to_string(), xml) {
            Ok(frags) => frags,
            Err(e) => {
                outcome.violations.push(Violation {
                    detail: format!("workload {wi}: clean stream failed to evaluate: {e}"),
                });
                continue;
            }
        };
        for mutator in Mutator::ALL {
            for round in 0..rounds {
                let seed = seed_base
                    .wrapping_add(wi as u64)
                    .wrapping_mul(6151)
                    .wrapping_add(round as u64)
                    .wrapping_mul(31)
                    .wrapping_add(mutator as u64);
                let mutation = mutate(xml, mutator, seed);
                if !mutation.changed {
                    outcome.unchanged += 1;
                    continue;
                }
                outcome.mutants += 1;
                let label = format!("workload {wi} {mutator} seed {seed}");
                for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
                    check_mutant(&network, &oracle, &mutation, policy, &label, &mut outcome);
                }
            }
        }
    }
    outcome
}

/// The standard sweep workload: a small MONDIAL document × the paper's §VI
/// Mondial query classes. `countries` controls document size (and therefore
/// runtime; keep it small in debug builds).
pub fn mondial_workloads(countries: usize) -> Vec<(spex_query::Rpeq, String)> {
    let events = spex_workloads::mondial::mondial_with(&spex_workloads::mondial::MondialConfig {
        seed: 11,
        countries,
    });
    let xml = spex_xml::writer::events_to_string(&events);
    spex_workloads::queries_for(spex_workloads::Dataset::Mondial)
        .iter()
        .map(|qc| (qc.rpeq(), xml.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<r><a><b>x</b></a><c><d/>t</c><a><b>y</b></a></r>";

    #[test]
    fn mutators_are_deterministic_per_seed() {
        for m in Mutator::ALL {
            let x = mutate(DOC, m, 42);
            let y = mutate(DOC, m, 42);
            assert_eq!(x.xml, y.xml, "{m}");
            assert_eq!(x.offset, y.offset, "{m}");
            let z = mutate(DOC, m, 43);
            // Different seeds usually differ; at minimum they must not panic.
            let _ = z;
        }
    }

    #[test]
    fn each_mutator_changes_the_document() {
        for m in Mutator::ALL {
            let out = mutate(DOC, m, 7);
            assert!(out.changed, "{m} found nothing to corrupt in {DOC}");
            assert_ne!(out.xml, DOC, "{m} reported change but bytes equal");
            assert!(out.offset < DOC.len() + 1, "{m} offset out of range");
        }
    }

    #[test]
    fn truncation_cuts_at_the_reported_offset() {
        let out = mutate(DOC, Mutator::TruncateAtByte, 3);
        assert_eq!(out.xml.len(), out.offset);
        assert!(DOC.starts_with(&out.xml));
    }

    #[test]
    fn splice_strings_never_parse_as_markup() {
        // Each garbage string must make the document malformed wherever it
        // lands — otherwise the sweep would count clean runs as mutants.
        for seed in 0..32 {
            let out = mutate(DOC, Mutator::SpliceGarbage, seed);
            assert!(
                spex_xml::reader::parse_events(&out.xml).is_err(),
                "seed {seed} produced parseable output: {}",
                out.xml
            );
        }
    }

    #[test]
    fn sub_multiset_counts_duplicates() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(is_sub_multiset(&a(&["x"]), &a(&["x", "y"])));
        assert!(is_sub_multiset(&a(&[]), &a(&[])));
        assert!(!is_sub_multiset(&a(&["x", "x"]), &a(&["x", "y"])));
        assert!(!is_sub_multiset(&a(&["z"]), &a(&["x"])));
    }

    #[test]
    fn small_sweep_is_sound_and_panic_free() {
        let workloads = vec![
            ("r.a.b".parse().unwrap(), DOC.to_string()),
            ("_*.c[d]".parse().unwrap(), DOC.to_string()),
        ];
        let outcome = fault_sweep(&workloads, 1000, 8);
        assert!(outcome.mutants > 50, "only {} mutants", outcome.mutants);
        assert!(
            outcome.violations.is_empty(),
            "violations: {:#?}",
            outcome.violations
        );
        assert!(outcome.faulted_runs > 0, "no run reported any fault");
    }
}
