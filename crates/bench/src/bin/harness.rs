//! Paper-style benchmark harness: regenerates every table/figure of the
//! SPEX paper's evaluation section as text tables (experiments E1–E7 and
//! E12 of DESIGN.md; measured values are recorded in EXPERIMENTS.md).
//!
//! ```text
//! harness fig14              Fig. 14: Mondial + WordNet, 3 processors × 4 classes
//! harness fig15              Fig. 15: DMOZ structure + content, SPEX only
//! harness memory             §VI memory claim (peak RSS per processor, child process)
//! harness lemma_v1           Lemma V.1: translation time / network degree vs n
//! harness scaling            Theorem V.1: time vs stream size
//! harness formula_growth     §V: formula size vs depth and #qualified closures
//! harness multiquery         §VIII/E12: many profiles over one stream
//! harness transducers        §V per-transducer bounds, measured (messages, stacks)
//! harness fault-sweep [R [C]]  robustness: R seeds × 6 mutators × 2 recovery
//!                            policies over C-country Mondial (soundness check)
//! harness all                everything above
//! harness mem-probe P D C    (internal) run one evaluation and print peak RSS
//! ```
//!
//! DMOZ runs default to 1/10 of the paper's sizes; set `SPEX_BENCH_FULL=1`
//! for the full 300 MB / 1 GB streams or `SPEX_BENCH_SCALE=x` for a custom
//! factor.

use spex_bench::{
    dmoz_scale, mondial_events, peak_rss_kb, run_query, run_spex_streaming, stream_bytes,
    wordnet_events, Processor, RunResult,
};
use spex_core::CompiledNetwork;
use spex_query::{QueryMetrics, Rpeq};
use spex_workloads::{dmoz_content, dmoz_structure, queries_for, Dataset, QuoteStream};
use spex_xml::XmlEvent;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("all");
    match cmd {
        "fig14" => fig14(),
        "fig15" => fig15(),
        "memory" => memory(),
        "lemma_v1" => lemma_v1(),
        "scaling" => scaling(),
        "formula_growth" => formula_growth(),
        "multiquery" => multiquery(),
        "transducers" => transducers(),
        "fault-sweep" => fault_sweep_cmd(&args[1..]),
        "mem-probe" => mem_probe(&args[1..]),
        "all" => {
            fig14();
            fig15();
            memory();
            lemma_v1();
            scaling();
            formula_growth();
            multiquery();
            transducers();
            fault_sweep_cmd(&[]);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

fn secs(r: &RunResult) -> String {
    format!("{:8.3}s", r.elapsed.as_secs_f64())
}

/// Fig. 14: small and medium documents, three processors, the paper's query
/// classes.
fn fig14() {
    for (name, events) in [("Mondial", mondial_events()), ("Wordnet", wordnet_events())] {
        let dataset = if name == "Mondial" {
            Dataset::Mondial
        } else {
            Dataset::Wordnet
        };
        let bytes = stream_bytes(events);
        header(&format!(
            "Fig. 14 — {name} ({:.1} MB, {} events)",
            bytes as f64 / 1e6,
            events.len()
        ));
        println!(
            "{:>6} {:<34} {:>10} {:>10} {:>10} {:>9}",
            "class", "query", "spex", "dom", "treenfa", "results"
        );
        for qc in queries_for(dataset) {
            let q = qc.rpeq();
            let rows: Vec<RunResult> = Processor::ALL
                .iter()
                .map(|p| run_query(*p, &q, events))
                .collect();
            println!(
                "{:>6} {:<34} {:>10} {:>10} {:>10} {:>9}",
                qc.class,
                qc.text,
                secs(&rows[0]),
                secs(&rows[1]),
                secs(&rows[2]),
                rows[0].results
            );
            assert_eq!(rows[0].results, rows[1].results, "processors disagree!");
            assert_eq!(rows[1].results, rows[2].results, "processors disagree!");
        }
    }
}

/// Fig. 15: large documents, SPEX only (the in-memory processors exceed the
/// paper's 512 MB machine; `harness memory` demonstrates the same here).
fn fig15() {
    let scale = dmoz_scale();
    for (name, dataset) in [
        ("DMOZ structure (300 MB full)", Dataset::DmozStructure),
        ("DMOZ content (1 GB full)", Dataset::DmozContent),
    ] {
        header(&format!("Fig. 15 — {name}, scale {scale}"));
        println!(
            "{:>6} {:<34} {:>10} {:>12} {:>9} {:>14}",
            "class", "query", "spex", "MB/s", "results", "peak buffered"
        );
        for qc in queries_for(dataset) {
            let q = qc.rpeq();
            let make = || -> Box<dyn Iterator<Item = XmlEvent>> {
                match dataset {
                    Dataset::DmozStructure => Box::new(dmoz_structure(scale)),
                    _ => Box::new(dmoz_content(scale)),
                }
            };
            let bytes: u64 = make().map(|e| e.to_string().len() as u64).sum();
            let (r, _events) = run_spex_streaming(&q, make());
            println!(
                "{:>6} {:<34} {:>10} {:>12.1} {:>9} {:>14}",
                qc.class,
                qc.text,
                secs(&r),
                bytes as f64 / 1e6 / r.elapsed.as_secs_f64(),
                r.results,
                r.stats
                    .as_ref()
                    .map(|s| s.peak_buffered_events)
                    .unwrap_or(0),
            );
        }
    }
}

/// §VI memory claim: peak RSS per (processor, dataset), measured in a child
/// process so each measurement is isolated. Datasets are written to disk
/// first and the probes parse them *streaming from the file*, so the
/// measured memory is the evaluation strategy's own — SPEX stays constant,
/// the in-memory processors grow with the document.
fn memory() {
    header("§VI memory — peak RSS per processor (child process, class-2 query)");
    let exe = std::env::current_exe().expect("own path");
    let dir = std::env::temp_dir().join("spex-bench-memory");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // Materialize the datasets as XML files once.
    let files = [
        ("mondial", Dataset::Mondial),
        ("wordnet", Dataset::Wordnet),
        ("dmoz-structure", Dataset::DmozStructure),
    ];
    let scale_tag = format!("{}", dmoz_scale());
    for (name, ds) in files {
        let path = dir.join(format!("{name}-{scale_tag}.xml"));
        if path.exists() {
            continue;
        }
        let file = std::fs::File::create(&path).expect("create dataset file");
        let mut w = spex_xml::Writer::new(std::io::BufWriter::new(file));
        match ds {
            Dataset::Mondial => {
                for ev in spex_workloads::mondial() {
                    w.write(&ev).expect("write");
                }
            }
            Dataset::Wordnet => {
                for ev in spex_workloads::wordnet() {
                    w.write(&ev).expect("write");
                }
            }
            _ => {
                for ev in dmoz_structure(dmoz_scale()) {
                    w.write(&ev).expect("write");
                }
            }
        }
    }
    println!(
        "{:>10} {:<18} {:>10} {:>12}",
        "processor", "dataset", "file", "peak RSS"
    );
    for (name, _ds) in files {
        let path = dir.join(format!("{name}-{scale_tag}.xml"));
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        for proc in ["spex", "dom", "treenfa"] {
            let out = std::process::Command::new(&exe)
                .args(["mem-probe", proc, name, "2", path.to_str().unwrap()])
                .output()
                .expect("spawn mem-probe");
            let text = String::from_utf8_lossy(&out.stdout);
            let kb: u64 = text.trim().parse().unwrap_or(0);
            println!(
                "{:>10} {:<18} {:>7.1} MB {:>9.1} MB",
                proc,
                name,
                size as f64 / 1e6,
                kb as f64 / 1024.0
            );
        }
    }
    println!("(paper: SPEX constant 8.5-11 MB incl. JVM; Saxon/Fxgrep exceeded 512 MB on DMOZ)");
}

/// Internal: run one evaluation streaming from a file, print peak RSS (kB).
fn mem_probe(args: &[String]) {
    let proc = args.first().map(|s| s.as_str()).unwrap_or("spex");
    let dataset = args.get(1).map(|s| s.as_str()).unwrap_or("mondial");
    let class: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let path = args.get(3).expect("dataset file path");
    let ds = match dataset {
        "mondial" => Dataset::Mondial,
        "wordnet" => Dataset::Wordnet,
        "dmoz-structure" => Dataset::DmozStructure,
        "dmoz-content" => Dataset::DmozContent,
        _ => {
            eprintln!("unknown dataset");
            std::process::exit(2);
        }
    };
    let q = queries_for(ds)
        .into_iter()
        .find(|qc| qc.class as usize == class)
        .expect("class exists")
        .rpeq();
    let file = std::fs::File::open(path).expect("dataset file");
    let reader = spex_xml::Reader::new(std::io::BufReader::new(file));
    match proc {
        "spex" => {
            let network = CompiledNetwork::compile(&q);
            let mut sink = spex_core::CountingSink::new();
            let mut eval = spex_core::Evaluator::new(&network, &mut sink);
            for ev in reader {
                eval.push(ev.expect("well-formed"));
            }
            eval.finish();
        }
        p => {
            // In-memory processors: build the tree from the streaming
            // parser (no event buffering), then evaluate.
            let mut builder = spex_xml::TreeBuilder::new();
            for ev in reader {
                builder.push(ev.expect("well-formed")).expect("tree");
            }
            let doc = builder.finish().expect("tree");
            let n = match parse_proc(p) {
                Processor::Dom => spex_baseline::DomEvaluator::new(&doc).evaluate(&q).len(),
                _ => spex_baseline::TreeNfaEvaluator::new(&doc)
                    .evaluate(&q)
                    .len(),
            };
            let _ = n;
        }
    }
    println!("{}", peak_rss_kb().unwrap_or(0));
}

/// §V per-transducer bounds, measured: one row per network node for the
/// Mondial class-2 query, so a hot or stack-heavy transducer is visible.
/// Checks the paper's bounds row by row: every depth stack ≤ stream depth.
fn transducers() {
    header("§V — per-transducer measurements (Mondial, class-2 query)");
    let qc = &queries_for(Dataset::Mondial)[1];
    let events = mondial_events();
    let r = run_query(Processor::Spex, &qc.rpeq(), events);
    let stats = r.stats.as_ref().expect("spex stats");
    let rows = r
        .transducer_stats
        .as_ref()
        .expect("spex per-transducer stats");
    println!(
        "query: {} (stream depth {})",
        qc.text, stats.max_stream_depth
    );
    println!(
        "{:>5} {:<16} {:>12} {:>8} {:>8} {:>8}",
        "node", "kind", "messages", "d-stack", "c-stack", "o(phi)"
    );
    for t in rows {
        println!(
            "{:>5} {:<16} {:>12} {:>8} {:>8} {:>8}",
            t.node, t.kind, t.messages, t.max_depth_stack, t.max_cond_stack, t.max_formula_size
        );
        assert!(
            t.max_depth_stack <= stats.max_stream_depth,
            "Lemma V.2 violated at node {}",
            t.node
        );
    }
    let sum: u64 = rows.iter().map(|t| t.messages).sum();
    println!(
        "{:>5} {:<16} {:>12}   (= global message count)",
        "", "total", sum
    );
    assert_eq!(
        sum, stats.messages,
        "per-transducer sum must equal the global count"
    );

    // Faults section: the same query over a deliberately corrupted stream,
    // evaluated under the Repair policy. Shows what the recovery layer
    // reports (and that the damaged results were quarantined, not invented).
    println!();
    println!("faults (same query, one close tag deleted, --recover repair):");
    let xml = spex_xml::writer::events_to_string(events);
    let mutation = spex_bench::fault::mutate(&xml, spex_bench::fault::Mutator::DeleteClose, 5);
    let network = CompiledNetwork::compile(&qc.rpeq());
    let mut collector = spex_core::FragmentCollector::new();
    let report = spex_core::evaluate_recovering(
        &network,
        std::io::Cursor::new(mutation.xml.into_bytes()),
        spex_core::RecoveryOptions {
            policy: spex_xml::RecoveryPolicy::Repair,
            ..Default::default()
        },
        spex_core::ResourceLimits::default(),
        &mut collector,
    )
    .expect("repair run completes");
    println!(
        "{:<20} {:>8}   (injected at byte {})",
        "kind", "count", mutation.offset
    );
    for kind in spex_xml::FaultKind::ALL {
        let n = report.fault_count(kind);
        if n > 0 {
            println!("{:<20} {:>8}", kind.as_str(), n);
        }
    }
    println!(
        "delivered: {}  quarantined: {}  truncated: {}",
        report.results, report.dropped, report.truncated
    );
}

/// Robustness sweep: seeds × mutators × recovery policies over the Mondial
/// workload, asserting panic-freedom and subset soundness against the
/// clean-stream oracle (fixed seed base 0xFA17 for reproducibility).
fn fault_sweep_cmd(args: &[String]) {
    let rounds: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(9);
    let countries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    header("robustness — fault-injection sweep (Mondial)");
    let start = Instant::now();
    let workloads = spex_bench::fault::mondial_workloads(countries);
    println!(
        "{} queries x 6 mutators x {} seeds x 2 policies ({} countries)",
        workloads.len(),
        rounds,
        countries
    );
    let outcome = spex_bench::fault::fault_sweep(&workloads, 0xFA17, rounds);
    println!(
        "mutants: {}  unchanged: {}  runs with faults: {}  faults reported: {}",
        outcome.mutants, outcome.unchanged, outcome.faulted_runs, outcome.faults_reported
    );
    println!(
        "delivered: {}  quarantined: {}  elapsed: {:.2}s",
        outcome.delivered,
        outcome.quarantined,
        start.elapsed().as_secs_f64()
    );
    if !outcome.violations.is_empty() {
        for v in &outcome.violations {
            eprintln!("VIOLATION: {}", v.detail);
        }
        eprintln!("{} soundness violation(s)", outcome.violations.len());
        std::process::exit(1);
    }
    println!("soundness: every mutant's results are a subset of the clean oracle");
}

fn parse_proc(p: &str) -> Processor {
    match p {
        "dom" => Processor::Dom,
        "treenfa" => Processor::TreeNfa,
        _ => Processor::Spex,
    }
}

/// Lemma V.1: translation time and network degree are linear in the query
/// length.
fn lemma_v1() {
    header("Lemma V.1 — translation time / network degree vs query length");
    println!(
        "{:>6} {:>10} {:>8} {:>14}",
        "n", "AST len", "degree", "compile time"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let text = (0..n)
            .map(|i| format!("_*.s{i}[t{i}]"))
            .collect::<Vec<_>>()
            .join(".");
        let q: Rpeq = text.parse().unwrap();
        let m = QueryMetrics::of(&q);
        // Compile repeatedly for a stable timing.
        let reps = 200;
        let start = Instant::now();
        let mut degree = 0;
        for _ in 0..reps {
            degree = CompiledNetwork::compile(&q).degree();
        }
        let per = start.elapsed() / reps;
        println!("{:>6} {:>10} {:>8} {:>11.1?}", n, m.length, degree, per);
    }
}

/// Theorem V.1: evaluation time linear in the stream size.
fn scaling() {
    header("Theorem V.1 — SPEX time vs stream size (DMOZ structure, class 2)");
    let q = queries_for(Dataset::DmozStructure)[1].rpeq();
    println!("{:>10} {:>12} {:>10} {:>12}", "scale", "MB", "time", "MB/s");
    for scale in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let bytes: u64 = dmoz_structure(scale)
            .map(|e| e.to_string().len() as u64)
            .sum();
        let (r, _) = run_spex_streaming(&q, dmoz_structure(scale));
        println!(
            "{:>10} {:>12.2} {:>10} {:>12.1}",
            scale,
            bytes as f64 / 1e6,
            secs(&r),
            bytes as f64 / 1e6 / r.elapsed.as_secs_f64()
        );
    }
}

/// §V formula-size analysis: o(φ) per language fragment and depth.
fn formula_growth() {
    header("§V — max formula size o(φ) by fragment and stream depth");
    let nested = |d: usize| {
        let mut xml = String::new();
        for _ in 0..d {
            xml.push_str("<a>");
        }
        xml.push_str("<leaf/>");
        for _ in 0..d {
            xml.push_str("</a>");
        }
        xml
    };
    println!("{:>34} {:>6} {:>8}", "query", "d", "o(phi)");
    for d in [4usize, 8, 16, 32] {
        let events: Vec<XmlEvent> = spex_xml::reader::parse_events(&nested(d)).unwrap();
        for q in [
            "_*.a+._*.leaf",
            "_*._[leaf]",
            "_*._[leaf]._*._",
            "_*._[leaf]._*._[leaf]._*._",
        ] {
            let query: Rpeq = q.parse().unwrap();
            let r = run_query(Processor::Spex, &query, &events);
            println!(
                "{:>34} {:>6} {:>8}",
                q,
                d,
                r.stats.as_ref().map(|s| s.max_formula_size).unwrap_or(0)
            );
        }
    }
    println!("(rpeq* stays at 1; one qualified closure grows ~d; stacked qualified closures grow faster — the dⁿ analysis)");
}

/// E12: many profiles over one stream — per-query SPEX networks vs the
/// shared-pass NFA filter (XFilter/YFilter stand-in).
fn multiquery() {
    header("E12 — multi-query filtering, 2,000 quote documents");
    let docs: Vec<XmlEvent> = QuoteStream::new(5, 10).take(2_000 * 130).collect();
    println!(
        "{:>9} {:>14} {:>14} {:>14}",
        "profiles", "spex (each)", "spex (shared)", "nfa filter"
    );
    for n in [1usize, 10, 100] {
        let queries: Vec<Rpeq> = (0..n)
            .map(|i| {
                format!("quotes.quote.sym{}", i % 7)
                    .replace("sym0", "symbol")
                    .parse()
                    .unwrap()
            })
            .collect();
        // SPEX: n independent networks, one pass each … shared event loop.
        let networks: Vec<CompiledNetwork> = queries.iter().map(CompiledNetwork::compile).collect();
        let start = Instant::now();
        let mut sinks: Vec<spex_core::CountingSink> =
            (0..n).map(|_| spex_core::CountingSink::new()).collect();
        {
            let mut evals: Vec<spex_core::Evaluator> = networks
                .iter()
                .zip(sinks.iter_mut())
                .map(|(net, sink)| spex_core::Evaluator::new(net, sink))
                .collect();
            for ev in &docs {
                for e in &mut evals {
                    e.push(ev.clone());
                }
            }
            for e in evals {
                e.finish();
            }
        }
        let spex_time = start.elapsed();
        // Shared SPEX network (the §IX multi-query optimization).
        let named: Vec<(String, Rpeq)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (format!("q{i}"), q.clone()))
            .collect();
        let shared = spex_core::multi::SharedQuerySet::compile(&named);
        let start = Instant::now();
        let (_counts, _stats) = shared.count_events(docs.iter().cloned());
        let shared_time = start.elapsed();
        // NFA filter: one shared pass.
        let mut set = spex_baseline::FilterSet::new();
        for (i, q) in queries.iter().enumerate() {
            set.add(format!("q{i}"), q).unwrap();
        }
        let start = Instant::now();
        let matched = set.matching(&docs);
        let nfa_time = start.elapsed();
        let _ = matched;
        println!(
            "{:>9} {:>13.3}s {:>13.3}s {:>13.3}s",
            n,
            spex_time.as_secs_f64(),
            shared_time.as_secs_f64(),
            nfa_time.as_secs_f64()
        );
    }
    println!("(boolean filtering only — the NFA filter cannot answer qualifier queries, SPEX can)");
}
