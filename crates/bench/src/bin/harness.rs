//! Paper-style benchmark harness: regenerates every table/figure of the
//! SPEX paper's evaluation section as text tables (experiments E1–E7 and
//! E12 of DESIGN.md; measured values are recorded in EXPERIMENTS.md).
//!
//! ```text
//! harness fig14              Fig. 14: Mondial + WordNet, 3 processors × 4 classes
//! harness fig15              Fig. 15: DMOZ structure + content, SPEX only
//! harness memory             §VI memory claim (peak RSS per processor, child process)
//! harness lemma_v1           Lemma V.1: translation time / network degree vs n
//! harness scaling            Theorem V.1: time vs stream size
//! harness formula_growth     §V: formula size vs depth and #qualified closures
//! harness multiquery         §VIII/E12: many profiles over one stream
//! harness transducers        §V per-transducer bounds, measured (messages, stacks)
//! harness fault-sweep [R [C]]  robustness: R seeds × 6 mutators × 2 recovery
//!                            policies over C-country Mondial (soundness check)
//! harness bench [--json]     zero-copy pipeline: throughput, peak arena bytes,
//!                            allocations/event (owned vs zero-copy); --json
//!                            writes BENCH_3.json and guards >10% regressions;
//!                            also compares the bytecode VM against the
//!                            interpreter network (BENCH_6.json, gated: VM
//!                            >=2x events/s, <6 allocs/event, no >10% drop)
//! harness vm-diff [--cases N] [--seed S] [--fault-rounds R]
//!                            differential rig: N seeded random documents x
//!                            random queries through the VM, the interpreter
//!                            network and the DOM baseline simultaneously
//!                            (clean + fault-injected streams); any
//!                            divergence fails the run
//! harness scan-diff [--cases N] [--seed S] [--fault-rounds R]
//!                            scanner differential rig: the SWAR fast path
//!                            vs the classic scanner through the full
//!                            recovery pipeline (clean + every PR-2 fault
//!                            mutator x both engines x both policies);
//!                            fragments, faults, quarantine sets and stats
//!                            must be byte-identical or the run fails
//! harness scan-bench [--json] [--out PATH]
//!                            SWAR fast scanner vs classic (BENCH_10):
//!                            a parse-only leg (Reader::next_into into the
//!                            arena, no engine) and an end-to-end MB/s leg
//!                            over the bundled workloads plus a synthetic
//!                            attribute-heavy / text-heavy / deep-nesting
//!                            grid; gated at >=1.5x parse-only and >=1.25x
//!                            end-to-end aggregate speedup over classic;
//!                            --json writes BENCH_10.json
//! harness serve-bench [--json] [--clients N] [--docs M] [--engine E]
//!                            spex-serve: N concurrent clients x M documents
//!                            over a loopback server; aggregate events/sec,
//!                            p50/p99 session latency; the burst that drove
//!                            the old blocking server to 94% BUSY must now
//!                            be admitted in full (1 worker, zero rejects),
//!                            and a connection-scalability sweep holds
//!                            100 -> 10,000 mostly-idle connections with a
//!                            hot subset streaming (fd-limit clamped, hot
//!                            p99 gated under the blocking baseline's p50);
//!                            --json writes BENCH_4.json and BENCH_8.json
//!                            (--out8 PATH overrides the latter)
//! harness reactor-smoke [--spex PATH] [--conns N]
//!                            process-level reactor check: a real `spex
//!                            serve` child holds N (default 10,000) idle
//!                            connections plus live sessions, then SIGTERM
//!                            must drain and exit 0 with every idle
//!                            connection still open
//! harness trace-bench [--json] [--engine E]
//!                            spex-trace overhead: the zero-copy pipeline
//!                            with tracing off vs on (JSONL sink), run
//!                            interleaved; --json writes BENCH_5.json and
//!                            the run fails if trace-on is >5% slower
//! harness crash-diff [--cases N] [--seed S] [--kills K]
//!                            restart-transparency rig: N random streams x
//!                            queries, killed at K random byte offsets per
//!                            policy, restored from the latest document-
//!                            boundary snapshot and compared byte-for-byte
//!                            against the uninterrupted run (both engines x
//!                            strict/repair/skip-subtree, plus corrupt-
//!                            snapshot and torn-WAL structured-error checks);
//!                            any divergence fails the run
//! harness crash-bench [--json]
//!                            durable-session costs: snapshot size and
//!                            checkpoint/restore latency vs query class and
//!                            document depth, plus write-ahead-log overhead
//!                            on the streaming pipeline; --json writes
//!                            BENCH_7.json and the run fails if WAL-on is
//!                            >5% slower than WAL-off
//! harness filter-bench [--json] [--max N]
//!                            multi-tenant combiner sweep (E14): 10 → N
//!                            (default 10,000) standing queries compiled
//!                            into one shared plan by spex-combine, vs n
//!                            per-query networks and the boolean NFA
//!                            filter, over shared-prefix / shared-qualifier
//!                            / disjoint profiles; per-query counts are
//!                            cross-checked and the shared-prefix per-event
//!                            cost at N must stay within 20x the 10-query
//!                            cost; --json writes BENCH_9.json
//! harness crash-smoke [--spex PATH]
//!                            process-level restart transparency: SIGKILL a
//!                            real `spex serve --durable-dir` mid-stream,
//!                            restart it, resume by token and require the
//!                            concatenated output byte-identical to the
//!                            one-shot CLI (PATH defaults to the `spex`
//!                            binary next to this harness)
//! harness all                everything above except crash-smoke and
//!                            reactor-smoke (which need the separately
//!                            built `spex` binary)
//! harness mem-probe P D C    (internal) run one evaluation and print peak RSS
//! ```
//!
//! DMOZ runs default to 1/10 of the paper's sizes; set `SPEX_BENCH_FULL=1`
//! for the full 300 MB / 1 GB streams or `SPEX_BENCH_SCALE=x` for a custom
//! factor.

use spex_bench::{
    dmoz_scale, mondial_events, peak_rss_kb, run_parse_only, run_query, run_query_engine,
    run_spex_owned, run_spex_streaming, run_spex_zero_copy, run_spex_zero_copy_scanner,
    stream_bytes, synthetic_attr_heavy, synthetic_deep_nesting, synthetic_text_heavy,
    wordnet_events, Processor, RunResult,
};
use spex_core::{CompiledNetwork, Engine};
use spex_query::{QueryMetrics, Rpeq};
use spex_workloads::{dmoz_content, dmoz_structure, queries_for, Dataset, QuoteStream};
use spex_xml::{EventStore, ScannerKind, XmlEvent};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting allocator: wraps the system allocator and counts every
/// allocation and reallocation, so `harness bench` can report heap
/// allocations per event for the owned and zero-copy pipelines. The bench
/// *library* forbids unsafe code; the instrumentation lives here in the
/// binary, behind the narrowest possible surface.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter update has
// no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(|s| s.as_str()).unwrap_or("all");
    match cmd {
        "fig14" => fig14(),
        "fig15" => fig15(),
        "memory" => memory(),
        "lemma_v1" => lemma_v1(),
        "scaling" => scaling(),
        "formula_growth" => formula_growth(),
        "multiquery" => multiquery(),
        "transducers" => transducers(),
        "fault-sweep" => fault_sweep_cmd(&args[1..]),
        "vm-diff" => vm_diff_cmd(&args[1..]),
        "scan-diff" => scan_diff_cmd(&args[1..]),
        "scan-bench" => scan_bench_cmd(&args[1..]),
        "bench" => bench_cmd(&args[1..]),
        "serve-bench" => serve_bench_cmd(&args[1..]),
        "trace-bench" => trace_bench_cmd(&args[1..]),
        "crash-diff" => crash_diff_cmd(&args[1..]),
        "crash-bench" => crash_bench_cmd(&args[1..]),
        "filter-bench" => filter_bench_cmd(&args[1..]),
        "crash-smoke" => crash_smoke_cmd(&args[1..]),
        "reactor-smoke" => reactor_smoke_cmd(&args[1..]),
        "mem-probe" => mem_probe(&args[1..]),
        "all" => {
            fig14();
            fig15();
            memory();
            lemma_v1();
            scaling();
            formula_growth();
            multiquery();
            transducers();
            fault_sweep_cmd(&[]);
            vm_diff_cmd(&[]);
            scan_diff_cmd(&[]);
            bench_cmd(&[]);
            scan_bench_cmd(&[]);
            serve_bench_cmd(&[]);
            trace_bench_cmd(&[]);
            crash_diff_cmd(&[]);
            crash_bench_cmd(&[]);
            filter_bench_cmd(&[]);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

fn secs(r: &RunResult) -> String {
    format!("{:8.3}s", r.elapsed.as_secs_f64())
}

/// Fig. 14: small and medium documents, three processors, the paper's query
/// classes.
fn fig14() {
    for (name, events) in [("Mondial", mondial_events()), ("Wordnet", wordnet_events())] {
        let dataset = if name == "Mondial" {
            Dataset::Mondial
        } else {
            Dataset::Wordnet
        };
        let bytes = stream_bytes(events);
        header(&format!(
            "Fig. 14 — {name} ({:.1} MB, {} events)",
            bytes as f64 / 1e6,
            events.len()
        ));
        println!(
            "{:>6} {:<34} {:>10} {:>10} {:>10} {:>9}",
            "class", "query", "spex", "dom", "treenfa", "results"
        );
        for qc in queries_for(dataset) {
            let q = qc.rpeq();
            let rows: Vec<RunResult> = Processor::ALL
                .iter()
                .map(|p| run_query(*p, &q, events))
                .collect();
            println!(
                "{:>6} {:<34} {:>10} {:>10} {:>10} {:>9}",
                qc.class,
                qc.text,
                secs(&rows[0]),
                secs(&rows[1]),
                secs(&rows[2]),
                rows[0].results
            );
            assert_eq!(rows[0].results, rows[1].results, "processors disagree!");
            assert_eq!(rows[1].results, rows[2].results, "processors disagree!");
        }
    }
}

/// Fig. 15: large documents, SPEX only (the in-memory processors exceed the
/// paper's 512 MB machine; `harness memory` demonstrates the same here).
fn fig15() {
    let scale = dmoz_scale();
    for (name, dataset) in [
        ("DMOZ structure (300 MB full)", Dataset::DmozStructure),
        ("DMOZ content (1 GB full)", Dataset::DmozContent),
    ] {
        header(&format!("Fig. 15 — {name}, scale {scale}"));
        println!(
            "{:>6} {:<34} {:>10} {:>12} {:>9} {:>14}",
            "class", "query", "spex", "MB/s", "results", "peak buffered"
        );
        for qc in queries_for(dataset) {
            let q = qc.rpeq();
            let make = || -> Box<dyn Iterator<Item = XmlEvent>> {
                match dataset {
                    Dataset::DmozStructure => Box::new(dmoz_structure(scale)),
                    _ => Box::new(dmoz_content(scale)),
                }
            };
            let bytes: u64 = make().map(|e| e.to_string().len() as u64).sum();
            let (r, _events) = run_spex_streaming(&q, make());
            println!(
                "{:>6} {:<34} {:>10} {:>12.1} {:>9} {:>14}",
                qc.class,
                qc.text,
                secs(&r),
                bytes as f64 / 1e6 / r.elapsed.as_secs_f64(),
                r.results,
                r.stats
                    .as_ref()
                    .map(|s| s.peak_buffered_events)
                    .unwrap_or(0),
            );
        }
    }
}

/// §VI memory claim: peak RSS per (processor, dataset), measured in a child
/// process so each measurement is isolated. Datasets are written to disk
/// first and the probes parse them *streaming from the file*, so the
/// measured memory is the evaluation strategy's own — SPEX stays constant,
/// the in-memory processors grow with the document.
fn memory() {
    header("§VI memory — peak RSS per processor (child process, class-2 query)");
    let exe = std::env::current_exe().expect("own path");
    let dir = std::env::temp_dir().join("spex-bench-memory");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // Materialize the datasets as XML files once.
    let files = [
        ("mondial", Dataset::Mondial),
        ("wordnet", Dataset::Wordnet),
        ("dmoz-structure", Dataset::DmozStructure),
    ];
    let scale_tag = format!("{}", dmoz_scale());
    for (name, ds) in files {
        let path = dir.join(format!("{name}-{scale_tag}.xml"));
        if path.exists() {
            continue;
        }
        let file = std::fs::File::create(&path).expect("create dataset file");
        let mut w = spex_xml::Writer::new(std::io::BufWriter::new(file));
        match ds {
            Dataset::Mondial => {
                for ev in spex_workloads::mondial() {
                    w.write(&ev).expect("write");
                }
            }
            Dataset::Wordnet => {
                for ev in spex_workloads::wordnet() {
                    w.write(&ev).expect("write");
                }
            }
            _ => {
                for ev in dmoz_structure(dmoz_scale()) {
                    w.write(&ev).expect("write");
                }
            }
        }
    }
    println!(
        "{:>10} {:<18} {:>10} {:>12}",
        "processor", "dataset", "file", "peak RSS"
    );
    for (name, _ds) in files {
        let path = dir.join(format!("{name}-{scale_tag}.xml"));
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        for proc in ["spex", "dom", "treenfa"] {
            let out = std::process::Command::new(&exe)
                .args(["mem-probe", proc, name, "2", path.to_str().unwrap()])
                .output()
                .expect("spawn mem-probe");
            let text = String::from_utf8_lossy(&out.stdout);
            let kb: u64 = text.trim().parse().unwrap_or(0);
            println!(
                "{:>10} {:<18} {:>7.1} MB {:>9.1} MB",
                proc,
                name,
                size as f64 / 1e6,
                kb as f64 / 1024.0
            );
        }
    }
    println!("(paper: SPEX constant 8.5-11 MB incl. JVM; Saxon/Fxgrep exceeded 512 MB on DMOZ)");
}

/// Internal: run one evaluation streaming from a file, print peak RSS (kB).
fn mem_probe(args: &[String]) {
    let proc = args.first().map(|s| s.as_str()).unwrap_or("spex");
    let dataset = args.get(1).map(|s| s.as_str()).unwrap_or("mondial");
    let class: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let path = args.get(3).expect("dataset file path");
    let ds = match dataset {
        "mondial" => Dataset::Mondial,
        "wordnet" => Dataset::Wordnet,
        "dmoz-structure" => Dataset::DmozStructure,
        "dmoz-content" => Dataset::DmozContent,
        _ => {
            eprintln!("unknown dataset");
            std::process::exit(2);
        }
    };
    let q = queries_for(ds)
        .into_iter()
        .find(|qc| qc.class as usize == class)
        .expect("class exists")
        .rpeq();
    let file = std::fs::File::open(path).expect("dataset file");
    let reader = spex_xml::Reader::new(std::io::BufReader::new(file));
    match proc {
        "spex" => {
            let network = CompiledNetwork::compile(&q);
            let mut sink = spex_core::CountingSink::new();
            let mut eval = spex_core::Evaluator::new(&network, &mut sink);
            for ev in reader {
                eval.push(ev.expect("well-formed"));
            }
            eval.finish();
        }
        p => {
            // In-memory processors: build the tree from the streaming
            // parser (no event buffering), then evaluate.
            let mut builder = spex_xml::TreeBuilder::new();
            for ev in reader {
                builder.push(ev.expect("well-formed")).expect("tree");
            }
            let doc = builder.finish().expect("tree");
            let n = match parse_proc(p) {
                Processor::Dom => spex_baseline::DomEvaluator::new(&doc).evaluate(&q).len(),
                _ => spex_baseline::TreeNfaEvaluator::new(&doc)
                    .evaluate(&q)
                    .len(),
            };
            let _ = n;
        }
    }
    println!("{}", peak_rss_kb().unwrap_or(0));
}

/// §V per-transducer bounds, measured: one row per network node for the
/// Mondial class-2 query, so a hot or stack-heavy transducer is visible.
/// Checks the paper's bounds row by row: every depth stack ≤ stream depth.
fn transducers() {
    header("§V — per-transducer measurements (Mondial, class-2 query)");
    let qc = &queries_for(Dataset::Mondial)[1];
    let events = mondial_events();
    let r = run_query(Processor::Spex, &qc.rpeq(), events);
    let stats = r.stats.as_ref().expect("spex stats");
    let rows = r
        .transducer_stats
        .as_ref()
        .expect("spex per-transducer stats");
    println!(
        "query: {} (stream depth {})",
        qc.text, stats.max_stream_depth
    );
    println!(
        "{:>5} {:<16} {:>12} {:>8} {:>8} {:>8}",
        "node", "kind", "messages", "d-stack", "c-stack", "o(phi)"
    );
    for t in rows {
        println!(
            "{:>5} {:<16} {:>12} {:>8} {:>8} {:>8}",
            t.node, t.kind, t.messages, t.max_depth_stack, t.max_cond_stack, t.max_formula_size
        );
        assert!(
            t.max_depth_stack <= stats.max_stream_depth,
            "Lemma V.2 violated at node {}",
            t.node
        );
    }
    let sum: u64 = rows.iter().map(|t| t.messages).sum();
    println!(
        "{:>5} {:<16} {:>12}   (= global message count)",
        "", "total", sum
    );
    assert_eq!(
        sum, stats.messages,
        "per-transducer sum must equal the global count"
    );

    // Faults section: the same query over a deliberately corrupted stream,
    // evaluated under the Repair policy. Shows what the recovery layer
    // reports (and that the damaged results were quarantined, not invented).
    println!();
    println!("faults (same query, one close tag deleted, --recover repair):");
    let xml = spex_xml::writer::events_to_string(events);
    let mutation = spex_bench::fault::mutate(&xml, spex_bench::fault::Mutator::DeleteClose, 5);
    let network = CompiledNetwork::compile(&qc.rpeq());
    let mut collector = spex_core::FragmentCollector::new();
    let report = spex_core::evaluate_recovering(
        &network,
        std::io::Cursor::new(mutation.xml.into_bytes()),
        spex_core::RecoveryOptions {
            policy: spex_xml::RecoveryPolicy::Repair,
            ..Default::default()
        },
        spex_core::ResourceLimits::default(),
        &mut collector,
    )
    .expect("repair run completes");
    println!(
        "{:<20} {:>8}   (injected at byte {})",
        "kind", "count", mutation.offset
    );
    for kind in spex_xml::FaultKind::ALL {
        let n = report.fault_count(kind);
        if n > 0 {
            println!("{:<20} {:>8}", kind.as_str(), n);
        }
    }
    println!(
        "delivered: {}  quarantined: {}  truncated: {}",
        report.results, report.dropped, report.truncated
    );
}

/// Robustness sweep: seeds × mutators × recovery policies over the Mondial
/// workload, asserting panic-freedom and subset soundness against the
/// clean-stream oracle (fixed seed base 0xFA17 for reproducibility).
fn fault_sweep_cmd(args: &[String]) {
    let rounds: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(9);
    let countries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    header("robustness — fault-injection sweep (Mondial)");
    let start = Instant::now();
    let workloads = spex_bench::fault::mondial_workloads(countries);
    println!(
        "{} queries x 6 mutators x {} seeds x 2 policies ({} countries)",
        workloads.len(),
        rounds,
        countries
    );
    let outcome = spex_bench::fault::fault_sweep(&workloads, 0xFA17, rounds);
    println!(
        "mutants: {}  unchanged: {}  runs with faults: {}  faults reported: {}",
        outcome.mutants, outcome.unchanged, outcome.faulted_runs, outcome.faults_reported
    );
    println!(
        "delivered: {}  quarantined: {}  elapsed: {:.2}s",
        outcome.delivered,
        outcome.quarantined,
        start.elapsed().as_secs_f64()
    );
    if !outcome.violations.is_empty() {
        for v in &outcome.violations {
            eprintln!("VIOLATION: {}", v.detail);
        }
        eprintln!("{} soundness violation(s)", outcome.violations.len());
        std::process::exit(1);
    }
    println!("soundness: every mutant's results are a subset of the clean oracle");
}

/// Per-workload allocation profile of the *event pipeline alone* (parse →
/// event representation, no network attached): owned `XmlEvent`s vs the
/// arena path. This isolates what the zero-copy refactor changed — both
/// end-to-end paths share the same transducer network, so the representation
/// difference is invisible in whole-run counts.
struct PipelineRow {
    workload: &'static str,
    events: usize,
    owned_allocs: u64,
    zero_copy_allocs: u64,
}

impl PipelineRow {
    fn owned_per_event(&self) -> f64 {
        self.owned_allocs as f64 / self.events.max(1) as f64
    }

    fn zero_copy_per_event(&self) -> f64 {
        self.zero_copy_allocs as f64 / self.events.max(1) as f64
    }
}

/// One measured (workload, query) cell of the `bench` table.
struct BenchRow {
    workload: &'static str,
    class: u8,
    query: &'static str,
    events: usize,
    mb: f64,
    results: usize,
    zc_secs: f64,
    zc_allocs: u64,
    peak_arena_bytes: usize,
    interned_symbols: usize,
    ow_secs: f64,
    ow_allocs: u64,
}

impl BenchRow {
    fn zc_allocs_per_event(&self) -> f64 {
        self.zc_allocs as f64 / self.events.max(1) as f64
    }

    fn ow_allocs_per_event(&self) -> f64 {
        self.ow_allocs as f64 / self.events.max(1) as f64
    }

    fn events_per_s(&self) -> f64 {
        self.events as f64 / self.zc_secs.max(1e-9)
    }

    fn mb_per_s(&self) -> f64 {
        self.mb / self.zc_secs.max(1e-9)
    }
}

/// The `bench` subcommand: throughput and allocation profile of the
/// zero-copy event pipeline, per workload × query class. With `--json`,
/// writes `BENCH_3.json` (repo root by default, `--out PATH` overrides) and
/// exits non-zero if throughput regressed by more than 10% against an
/// existing `BENCH_3.json` baseline, or if the zero-copy path fails the
/// ≥2× fewer-allocations-per-event bar against the owned path on Mondial.
/// The `vm-diff` subcommand: drive the PR-6 differential rig
/// (`spex_bench::diff`) — seeded random documents × random queries through
/// the bytecode VM, the interpreter network, and the DOM baseline at once,
/// clean and fault-injected. Exits 1 on the first run with any divergence.
fn vm_diff_cmd(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let cases = flag("--cases").unwrap_or(250) as usize;
    let seed = flag("--seed").unwrap_or(0xd1ff);
    let fault_rounds = flag("--fault-rounds").unwrap_or(1) as usize;
    header(&format!(
        "vm-diff — {cases} random case(s), seed {seed}, {fault_rounds} fault round(s) each"
    ));
    let outcome = spex_bench::diff::vm_diff(cases, seed, fault_rounds);
    println!(
        "{} clean case(s) compared ({} selected >=1 node, {} fragment(s) agreed byte-for-byte)",
        outcome.cases, outcome.selecting_cases, outcome.fragments
    );
    println!(
        "{} fault comparison(s) (mutator x policy x engine), {} divergence(s)",
        outcome.fault_comparisons,
        outcome.divergences.len()
    );
    for d in &outcome.divergences {
        eprintln!("DIVERGENCE: {d}");
    }
    if !outcome.divergences.is_empty() {
        std::process::exit(1);
    }
}

/// The `scan-diff` subcommand: the PR-10 scanner differential rig
/// (`spex_bench::diff::scan_diff`) — the SWAR fast path against the classic
/// scanner through the full recovery pipeline, clean and fault-injected.
/// Exits 1 on any divergence.
fn scan_diff_cmd(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let cases = flag("--cases").unwrap_or(150) as usize;
    let seed = flag("--seed").unwrap_or(0x5ca7);
    let fault_rounds = flag("--fault-rounds").unwrap_or(1) as usize;
    header(&format!(
        "scan-diff — {cases} random case(s), seed {seed}, {fault_rounds} fault round(s) each"
    ));
    let outcome = spex_bench::diff::scan_diff(cases, seed, fault_rounds);
    println!(
        "{} case(s) compared fast-vs-classic ({} selected >=1 node, {} fragment(s) delivered)",
        outcome.cases, outcome.selecting_cases, outcome.fragments
    );
    println!(
        "{} stream comparison(s) (clean + mutators, x engine x policy), {} divergence(s)",
        outcome.fault_comparisons,
        outcome.divergences.len()
    );
    for d in &outcome.divergences {
        eprintln!("SCANNER DIVERGENCE: {d}");
    }
    if !outcome.divergences.is_empty() {
        std::process::exit(1);
    }
}

/// The `scan-bench` subcommand (BENCH_10): the SWAR fast scanner against
/// the classic scanner on two axes — a parse-only leg (`Reader::next_into`
/// into the arena, no engine attached) and an end-to-end leg (the full
/// zero-copy pipeline under the VM engine) — over the bundled workloads
/// plus the synthetic attribute-heavy / text-heavy / deep-nesting grid of
/// EXPERIMENTS.md E15. Interleaved best-of-5 per cell; the aggregate
/// fast/classic speedup is gated at ≥1.5× parse-only and ≥1.25× end-to-end.
fn scan_bench_cmd(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_10.json", env!("CARGO_MANIFEST_DIR")));
    let bench_dmoz_scale = 0.01;
    header("scan-bench — SWAR fast scanner vs classic: parse-only leg (BENCH_10)");
    let workloads: Vec<(&'static str, String)> = vec![
        (
            "mondial",
            spex_xml::writer::events_to_string(mondial_events()),
        ),
        (
            "wordnet",
            spex_xml::writer::events_to_string(wordnet_events()),
        ),
        (
            "dmoz-structure",
            spex_xml::writer::events_to_string(
                &dmoz_structure(bench_dmoz_scale).collect::<Vec<_>>(),
            ),
        ),
        ("attr-heavy", synthetic_attr_heavy(20_000)),
        ("text-heavy", synthetic_text_heavy(10_000)),
        ("deep-nesting", synthetic_deep_nesting(2_000, 30)),
    ];
    struct ParseRow {
        workload: &'static str,
        mb: f64,
        events: u64,
        fast_secs: f64,
        classic_secs: f64,
    }
    println!(
        "{:>14} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "workload", "MB", "events", "fast MB/s", "clas MB/s", "fast Mev/s", "clas Mev/s", "speedup"
    );
    let mut prows: Vec<ParseRow> = Vec::new();
    for (name, xml) in &workloads {
        let bytes = xml.as_bytes();
        let mut fast = run_parse_only(bytes, ScannerKind::Fast);
        let mut classic = run_parse_only(bytes, ScannerKind::Classic);
        assert_eq!(
            fast.events, classic.events,
            "scanners disagree on event count for {name}"
        );
        assert_eq!(
            fast.bytes, classic.bytes,
            "scanners disagree on bytes consumed for {name}"
        );
        for _ in 0..4 {
            let r = run_parse_only(bytes, ScannerKind::Fast);
            if r.elapsed < fast.elapsed {
                fast = r;
            }
            let r = run_parse_only(bytes, ScannerKind::Classic);
            if r.elapsed < classic.elapsed {
                classic = r;
            }
        }
        println!(
            "{:>14} {:>9.2} {:>9} {:>10.1} {:>10.1} {:>10.2} {:>10.2} {:>7.2}x",
            name,
            bytes.len() as f64 / 1e6,
            fast.events,
            fast.mb_per_s(),
            classic.mb_per_s(),
            fast.mev_per_s(),
            classic.mev_per_s(),
            classic.elapsed.as_secs_f64() / fast.elapsed.as_secs_f64().max(1e-9)
        );
        prows.push(ParseRow {
            workload: name,
            mb: bytes.len() as f64 / 1e6,
            events: fast.events,
            fast_secs: fast.elapsed.as_secs_f64(),
            classic_secs: classic.elapsed.as_secs_f64(),
        });
    }
    let parse_mb: f64 = prows.iter().map(|r| r.mb).sum();
    let parse_fast_secs: f64 = prows.iter().map(|r| r.fast_secs).sum();
    let parse_classic_secs: f64 = prows.iter().map(|r| r.classic_secs).sum();
    let parse_speedup = parse_classic_secs / parse_fast_secs.max(1e-9);
    println!(
        "parse-only aggregate: fast {:.1} MB/s vs classic {:.1} MB/s ({:.2}x)",
        parse_mb / parse_fast_secs.max(1e-9),
        parse_mb / parse_classic_secs.max(1e-9),
        parse_speedup
    );

    header("scan-bench — end-to-end zero-copy pipeline, fast vs classic (BENCH_10)");
    // One representative class-1 path query per workload — the shape the
    // one-shot CLI runs in the common case, where the scanner's share of the
    // pipeline is visible. The engine-bound per-class grid (qualifiers,
    // select-everything) lives in `harness bench`; those cells measure the
    // engine, which is byte-identical under both scanners.
    let mut e2e_specs: Vec<(&'static str, String, Rpeq)> = Vec::new();
    for (name, dataset) in [
        ("mondial", Dataset::Mondial),
        ("wordnet", Dataset::Wordnet),
        ("dmoz-structure", Dataset::DmozStructure),
    ] {
        for qc in queries_for(dataset) {
            if qc.class == 1 {
                e2e_specs.push((name, qc.text.to_string(), qc.rpeq()));
            }
        }
    }
    for (name, q) in [
        ("attr-heavy", "_*.rec"),
        ("text-heavy", "_*.p"),
        ("deep-nesting", "_*.c"),
    ] {
        e2e_specs.push((name, q.to_string(), q.parse().expect("synthetic query")));
    }
    struct E2eRow {
        workload: &'static str,
        query: String,
        mb: f64,
        results: usize,
        fast_secs: f64,
        classic_secs: f64,
    }
    println!(
        "{:>14} {:<28} {:>10} {:>10} {:>8} {:>11}",
        "workload", "query", "fast MB/s", "clas MB/s", "speedup", "results"
    );
    let mut erows: Vec<E2eRow> = Vec::new();
    for (name, text, q) in &e2e_specs {
        let xml = &workloads
            .iter()
            .find(|(n, _)| n == name)
            .expect("workload exists")
            .1;
        let bytes = xml.as_bytes();
        let mut fast = run_spex_zero_copy_scanner(q, bytes, Engine::Vm, ScannerKind::Fast);
        let mut classic = run_spex_zero_copy_scanner(q, bytes, Engine::Vm, ScannerKind::Classic);
        assert_eq!(
            fast.results, classic.results,
            "scanners disagree on result count for {name} `{text}`"
        );
        for _ in 0..4 {
            let r = run_spex_zero_copy_scanner(q, bytes, Engine::Vm, ScannerKind::Fast);
            if r.elapsed < fast.elapsed {
                fast = r;
            }
            let r = run_spex_zero_copy_scanner(q, bytes, Engine::Vm, ScannerKind::Classic);
            if r.elapsed < classic.elapsed {
                classic = r;
            }
        }
        let mb = bytes.len() as f64 / 1e6;
        println!(
            "{:>14} {:<28} {:>10.1} {:>10.1} {:>7.2}x {:>11}",
            name,
            text,
            mb / fast.elapsed.as_secs_f64().max(1e-9),
            mb / classic.elapsed.as_secs_f64().max(1e-9),
            classic.elapsed.as_secs_f64() / fast.elapsed.as_secs_f64().max(1e-9),
            fast.results
        );
        erows.push(E2eRow {
            workload: name,
            query: text.clone(),
            mb,
            results: fast.results,
            fast_secs: fast.elapsed.as_secs_f64(),
            classic_secs: classic.elapsed.as_secs_f64(),
        });
    }
    let e2e_mb: f64 = erows.iter().map(|r| r.mb).sum();
    let e2e_fast_secs: f64 = erows.iter().map(|r| r.fast_secs).sum();
    let e2e_classic_secs: f64 = erows.iter().map(|r| r.classic_secs).sum();
    let e2e_speedup = e2e_classic_secs / e2e_fast_secs.max(1e-9);
    println!(
        "end-to-end aggregate: fast {:.1} MB/s vs classic {:.1} MB/s ({:.2}x)",
        e2e_mb / e2e_fast_secs.max(1e-9),
        e2e_mb / e2e_classic_secs.max(1e-9),
        e2e_speedup
    );

    // The two BENCH_10 gates. Aggregates are used (total bytes over total
    // best-of-5 seconds) so one noisy cell cannot fail the run; both legs
    // run fast and classic interleaved in the same process, so the ratio
    // cancels machine-wide contention.
    let mut failed = false;
    if parse_speedup < 1.5 {
        eprintln!(
            "SCAN SPEEDUP REGRESSION: parse-only fast scanner only {parse_speedup:.2}x classic (gate: 1.5x)"
        );
        failed = true;
    }
    if e2e_speedup < 1.25 {
        eprintln!(
            "SCAN SPEEDUP REGRESSION: end-to-end fast scanner only {e2e_speedup:.2}x classic (gate: 1.25x)"
        );
        failed = true;
    }
    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"spex-scan-bench-10\",\n");
        out.push_str(&format!("  \"dmoz_scale\": {bench_dmoz_scale},\n"));
        out.push_str("  \"parse\": [\n");
        for (i, r) in prows.iter().enumerate() {
            let sep = if i + 1 == prows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"mb\":{:.3},\"events\":{},\"fast\":{{\"secs\":{:.6},\"mb_per_s\":{:.3},\"mev_per_s\":{:.3}}},\"classic\":{{\"secs\":{:.6},\"mb_per_s\":{:.3},\"mev_per_s\":{:.3}}},\"speedup\":{:.3}}}{sep}\n",
                r.workload,
                r.mb,
                r.events,
                r.fast_secs,
                r.mb / r.fast_secs.max(1e-9),
                r.events as f64 / 1e6 / r.fast_secs.max(1e-9),
                r.classic_secs,
                r.mb / r.classic_secs.max(1e-9),
                r.events as f64 / 1e6 / r.classic_secs.max(1e-9),
                r.classic_secs / r.fast_secs.max(1e-9),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"e2e\": [\n");
        for (i, r) in erows.iter().enumerate() {
            let sep = if i + 1 == erows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"query\":{:?},\"mb\":{:.3},\"results\":{},\"fast\":{{\"secs\":{:.6},\"mb_per_s\":{:.3}}},\"classic\":{{\"secs\":{:.6},\"mb_per_s\":{:.3}}},\"speedup\":{:.3}}}{sep}\n",
                r.workload,
                r.query,
                r.mb,
                r.results,
                r.fast_secs,
                r.mb / r.fast_secs.max(1e-9),
                r.classic_secs,
                r.mb / r.classic_secs.max(1e-9),
                r.classic_secs / r.fast_secs.max(1e-9),
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"parse_speedup\":{:.4},\"parse_fast_mb_per_s\":{:.3},\"parse_classic_mb_per_s\":{:.3},\"e2e_speedup\":{:.4},\"e2e_fast_mb_per_s\":{:.3},\"e2e_classic_mb_per_s\":{:.3}}},\n",
            parse_speedup,
            parse_mb / parse_fast_secs.max(1e-9),
            parse_mb / parse_classic_secs.max(1e-9),
            e2e_speedup,
            e2e_mb / e2e_fast_secs.max(1e-9),
            e2e_mb / e2e_classic_secs.max(1e-9),
        ));
        out.push_str("  \"gates\": {\"parse_min_speedup\":1.5,\"e2e_min_speedup\":1.25}\n");
        out.push_str("}\n");
        std::fs::write(&out_path, out).expect("write BENCH_10.json");
        println!("wrote {out_path}");
    }
    if failed {
        std::process::exit(1);
    }
}

fn bench_cmd(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_3.json", env!("CARGO_MANIFEST_DIR")));
    // A smoke-sized DMOZ slice keeps the CI run under a minute; the full
    // figures come from `harness fig15` / SPEX_BENCH_FULL.
    let bench_dmoz_scale = 0.01;
    header("bench — zero-copy pipeline: throughput + allocations per event");
    println!(
        "{:>14} {:>5} {:<28} {:>9} {:>9} {:>9} {:>8} {:>8} {:>6} {:>11}",
        "workload",
        "class",
        "query",
        "Mev/s",
        "MB/s",
        "arena",
        "al/ev",
        "owned",
        "ratio",
        "results"
    );
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut pipeline: Vec<PipelineRow> = Vec::new();
    let workloads: Vec<(&'static str, Dataset, Vec<XmlEvent>)> = vec![
        ("mondial", Dataset::Mondial, mondial_events().to_vec()),
        ("wordnet", Dataset::Wordnet, wordnet_events().to_vec()),
        (
            "dmoz-structure",
            Dataset::DmozStructure,
            dmoz_structure(bench_dmoz_scale).collect(),
        ),
    ];
    for (name, dataset, events) in &workloads {
        let xml = spex_xml::writer::events_to_string(events);
        let mb = xml.len() as f64 / 1e6;
        // Pipeline-only allocation profile: parse the same bytes into owned
        // events, then into the arena, counting allocations around each.
        let before = alloc_count();
        let mut reader = spex_xml::Reader::new(xml.as_bytes());
        let mut n = 0usize;
        while let Some(ev) = reader.next_event().expect("well-formed") {
            n += 1;
            std::hint::black_box(&ev);
        }
        let owned_allocs = alloc_count() - before;
        let before = alloc_count();
        let mut reader = spex_xml::Reader::new(xml.as_bytes());
        let mut store = EventStore::new();
        while let Some(id) = reader.next_into(&mut store).expect("well-formed") {
            std::hint::black_box(id);
        }
        let zero_copy_allocs = alloc_count() - before;
        pipeline.push(PipelineRow {
            workload: name,
            events: n,
            owned_allocs,
            zero_copy_allocs,
        });
        for qc in queries_for(*dataset) {
            let q = qc.rpeq();
            // Owned baseline first, then zero-copy, each bracketed by the
            // allocation counter (compile happens inside but is identical
            // for both paths, so the *difference* is pipeline-only). Timing
            // is best-of-N so run-to-run noise stays inside the 10%
            // regression margin (N=5 for the guarded zero-copy path).
            let before = alloc_count();
            let mut ow = run_spex_owned(&q, xml.as_bytes());
            let ow_allocs = alloc_count() - before;
            let before = alloc_count();
            let mut zc = run_spex_zero_copy(&q, xml.as_bytes());
            let zc_allocs = alloc_count() - before;
            for i in 0..4 {
                if i < 2 {
                    let r = run_spex_owned(&q, xml.as_bytes());
                    if r.elapsed < ow.elapsed {
                        ow = r;
                    }
                }
                let r = run_spex_zero_copy(&q, xml.as_bytes());
                if r.elapsed < zc.elapsed {
                    zc = r;
                }
            }
            assert_eq!(zc.results, ow.results, "pipelines disagree on {name}");
            let stats = zc.stats.as_ref().expect("spex stats");
            let row = BenchRow {
                workload: name,
                class: qc.class,
                query: qc.text,
                events: events.len(),
                mb,
                results: zc.results,
                zc_secs: zc.elapsed.as_secs_f64(),
                zc_allocs,
                peak_arena_bytes: stats.peak_arena_bytes,
                interned_symbols: stats.interned_symbols,
                ow_secs: ow.elapsed.as_secs_f64(),
                ow_allocs,
            };
            println!(
                "{:>14} {:>5} {:<28} {:>9.2} {:>9.1} {:>8}B {:>8.2} {:>8.2} {:>5.1}x {:>11}",
                row.workload,
                row.class,
                row.query,
                row.events_per_s() / 1e6,
                row.mb_per_s(),
                row.peak_arena_bytes,
                row.zc_allocs_per_event(),
                row.ow_allocs_per_event(),
                row.ow_allocs_per_event() / row.zc_allocs_per_event().max(1e-9),
                row.results
            );
            rows.push(row);
        }
    }
    println!();
    println!("event pipeline alone (parse → representation, no network):");
    println!(
        "{:>14} {:>10} {:>14} {:>14} {:>8}",
        "workload", "events", "owned al/ev", "arena al/ev", "ratio"
    );
    for p in &pipeline {
        println!(
            "{:>14} {:>10} {:>14.3} {:>14.3} {:>7.0}x",
            p.workload,
            p.events,
            p.owned_per_event(),
            p.zero_copy_per_event(),
            p.owned_per_event() / p.zero_copy_per_event().max(1e-9)
        );
    }
    // Acceptance bar: on Mondial the arena pipeline must allocate at least
    // 2× less per event than owned `XmlEvent` construction.
    let mut failed = false;
    for p in pipeline.iter().filter(|p| p.workload == "mondial") {
        if p.owned_per_event() < 2.0 * p.zero_copy_per_event() {
            eprintln!(
                "ALLOC REGRESSION: mondial pipeline zero-copy {:.3} allocs/event vs owned {:.3} (< 2x)",
                p.zero_copy_per_event(),
                p.owned_per_event()
            );
            failed = true;
        }
    }
    // Per-workload aggregates: zero-copy and owned throughput (total bytes
    // over total best-of-N seconds across the classes), and their ratio.
    // The regression guard compares the *ratio* — both paths run
    // interleaved in the same process, so machine-wide contention cancels
    // out, while a real slowdown of the zero-copy pipeline does not.
    let mut summary: Vec<(&'static str, f64, f64)> = Vec::new();
    for (name, _, _) in &workloads {
        let cells: Vec<&BenchRow> = rows.iter().filter(|r| r.workload == *name).collect();
        let total_mb: f64 = cells.iter().map(|r| r.mb).sum();
        let zc_secs: f64 = cells.iter().map(|r| r.zc_secs).sum();
        let ow_secs: f64 = cells.iter().map(|r| r.ow_secs).sum();
        summary.push((
            name,
            total_mb / zc_secs.max(1e-9),
            total_mb / ow_secs.max(1e-9),
        ));
    }
    // In-run floor: the zero-copy pipeline must never be >10% slower than
    // the owned pipeline it replaced.
    for (name, zc_mbps, ow_mbps) in &summary {
        if *zc_mbps < ow_mbps * 0.9 {
            eprintln!(
                "THROUGHPUT REGRESSION: {} zero-copy {:.1} MB/s vs owned {:.1} MB/s in the same run (>10% slower)",
                name, zc_mbps, ow_mbps
            );
            failed = true;
        }
    }
    if json {
        let baseline = std::fs::read_to_string(&out_path).ok();
        if let Some(base) = &baseline {
            for (name, zc_mbps, ow_mbps) in &summary {
                let now = zc_mbps / ow_mbps.max(1e-9);
                if let Some(prev) = baseline_vs_owned(base, name) {
                    if now < prev * 0.9 {
                        eprintln!(
                            "THROUGHPUT REGRESSION: {} zero-copy/owned ratio {:.3} vs baseline {:.3} (>10% drop)",
                            name, now, prev
                        );
                        failed = true;
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"spex-bench-3\",\n");
        out.push_str(&format!("  \"dmoz_scale\": {bench_dmoz_scale},\n"));
        out.push_str("  \"runs\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"class\":{},\"query\":{:?},\"events\":{},\"mb\":{:.3},\"results\":{},\"zero_copy\":{{\"secs\":{:.6},\"events_per_s\":{:.0},\"mb_per_s\":{:.3},\"allocs\":{},\"allocs_per_event\":{:.3},\"peak_arena_bytes\":{},\"interned_symbols\":{}}},\"owned\":{{\"secs\":{:.6},\"allocs\":{},\"allocs_per_event\":{:.3}}}}}{sep}\n",
                r.workload,
                r.class,
                r.query,
                r.events,
                r.mb,
                r.results,
                r.zc_secs,
                r.events_per_s(),
                r.mb_per_s(),
                r.zc_allocs,
                r.zc_allocs_per_event(),
                r.peak_arena_bytes,
                r.interned_symbols,
                r.ow_secs,
                r.ow_allocs,
                r.ow_allocs_per_event(),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": [\n");
        for (i, (name, zc_mbps, ow_mbps)) in summary.iter().enumerate() {
            let sep = if i + 1 == summary.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{name}\",\"mb_per_s\":{zc_mbps:.3},\"owned_mb_per_s\":{ow_mbps:.3},\"vs_owned\":{:.4}}}{sep}\n",
                zc_mbps / ow_mbps.max(1e-9)
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"pipeline\": [\n");
        for (i, p) in pipeline.iter().enumerate() {
            let sep = if i + 1 == pipeline.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"events\":{},\"owned_allocs\":{},\"owned_allocs_per_event\":{:.3},\"zero_copy_allocs\":{},\"zero_copy_allocs_per_event\":{:.3}}}{sep}\n",
                p.workload,
                p.events,
                p.owned_allocs,
                p.owned_per_event(),
                p.zero_copy_allocs,
                p.zero_copy_per_event(),
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&out_path, out).expect("write BENCH_3.json");
        println!("wrote {out_path}");
    }

    // BENCH_6: the bytecode VM against the interpreter network it lowers.
    // Both engines consume the same pre-parsed event stream (the bench
    // crate's convention), so the ratio isolates engine execution — the
    // component the plan lowering replaces — from XML parsing, which is
    // byte-identical on both paths and measured by the pipeline table
    // above. Interleaved best-of-5 per cell so machine noise cancels out
    // of the speedup. The results *and* engine statistics must be
    // identical (the differential rig's identity, re-checked in release
    // mode on the real workloads).
    header("bench — bytecode VM vs interpreter network (BENCH_6)");
    println!(
        "{:>14} {:>5} {:<28} {:>9} {:>9} {:>8} {:>8} {:>8} {:>11}",
        "workload",
        "class",
        "query",
        "vm Mev/s",
        "net Mev/s",
        "speedup",
        "vm al/ev",
        "net al/ev",
        "results"
    );
    struct VmRow {
        workload: &'static str,
        class: u8,
        query: &'static str,
        events: usize,
        results: usize,
        vm_secs: f64,
        net_secs: f64,
        vm_allocs: u64,
        net_allocs: u64,
    }
    let mut vrows: Vec<VmRow> = Vec::new();
    for (name, dataset, events) in &workloads {
        for qc in queries_for(*dataset) {
            let q = qc.rpeq();
            let before = alloc_count();
            let mut vm = run_query_engine(&q, events, Engine::Vm);
            let vm_allocs = alloc_count() - before;
            let before = alloc_count();
            let mut net = run_query_engine(&q, events, Engine::Network);
            let net_allocs = alloc_count() - before;
            for _ in 0..4 {
                let r = run_query_engine(&q, events, Engine::Vm);
                if r.elapsed < vm.elapsed {
                    vm = r;
                }
                let r = run_query_engine(&q, events, Engine::Network);
                if r.elapsed < net.elapsed {
                    net = r;
                }
            }
            assert_eq!(vm.results, net.results, "engines disagree on {name}");
            assert_eq!(
                vm.stats, net.stats,
                "engine statistics diverge on {name} class {}",
                qc.class
            );
            let row = VmRow {
                workload: name,
                class: qc.class,
                query: qc.text,
                events: events.len(),
                results: vm.results,
                vm_secs: vm.elapsed.as_secs_f64(),
                net_secs: net.elapsed.as_secs_f64(),
                vm_allocs,
                net_allocs,
            };
            println!(
                "{:>14} {:>5} {:<28} {:>9.2} {:>9.2} {:>7.1}x {:>8.2} {:>8.2} {:>11}",
                row.workload,
                row.class,
                row.query,
                row.events as f64 / row.vm_secs.max(1e-9) / 1e6,
                row.events as f64 / row.net_secs.max(1e-9) / 1e6,
                row.net_secs / row.vm_secs.max(1e-9),
                row.vm_allocs as f64 / row.events as f64,
                row.net_allocs as f64 / row.events as f64,
                row.results
            );
            vrows.push(row);
        }
    }
    // Per-workload aggregates and the three BENCH_6 gates: VM at least 2x
    // the interpreter's events/s, VM under 6 heap allocations per event,
    // and (against a baseline JSON) no >10% drop in the speedup run over
    // run.
    let mut vm_summary: Vec<(&'static str, f64, f64, f64, f64)> = Vec::new();
    for (name, _, _) in &workloads {
        let cells: Vec<&VmRow> = vrows.iter().filter(|r| r.workload == *name).collect();
        let events: f64 = cells.iter().map(|r| r.events as f64).sum();
        let vm_secs: f64 = cells.iter().map(|r| r.vm_secs).sum();
        let net_secs: f64 = cells.iter().map(|r| r.net_secs).sum();
        let vm_allocs: f64 = cells.iter().map(|r| r.vm_allocs as f64).sum();
        let vm_eps = events / vm_secs.max(1e-9);
        let net_eps = events / net_secs.max(1e-9);
        vm_summary.push((
            name,
            vm_eps,
            net_eps,
            net_secs / vm_secs.max(1e-9),
            vm_allocs / events.max(1.0),
        ));
    }
    for (name, vm_eps, net_eps, speedup, vm_apev) in &vm_summary {
        println!(
            "{:>14}: vm {:.2} Mev/s vs network {:.2} Mev/s ({:.1}x), {:.2} vm allocs/event",
            name,
            vm_eps / 1e6,
            net_eps / 1e6,
            speedup,
            vm_apev
        );
        if *speedup < 2.0 {
            eprintln!(
                "VM SPEEDUP REGRESSION: {name} vm only {speedup:.2}x the interpreter (gate: 2x)"
            );
            failed = true;
        }
        if *vm_apev >= 6.0 {
            eprintln!("VM ALLOC REGRESSION: {name} vm {vm_apev:.2} allocs/event (gate: <6)");
            failed = true;
        }
    }
    if json {
        let out6_path = args
            .iter()
            .position(|a| a == "--out6")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| format!("{}/../../BENCH_6.json", env!("CARGO_MANIFEST_DIR")));
        if let Ok(base) = std::fs::read_to_string(&out6_path) {
            for (name, _, _, speedup, _) in &vm_summary {
                if let Some(prev) = baseline_speedup(&base, name) {
                    if *speedup < prev * 0.9 {
                        eprintln!(
                            "VM SPEEDUP REGRESSION: {name} speedup {speedup:.3} vs baseline {prev:.3} (>10% drop)"
                        );
                        failed = true;
                    }
                }
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"spex-vm-bench-6\",\n");
        out.push_str(&format!("  \"dmoz_scale\": {bench_dmoz_scale},\n"));
        out.push_str("  \"runs\": [\n");
        for (i, r) in vrows.iter().enumerate() {
            let sep = if i + 1 == vrows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"class\":{},\"query\":{:?},\"events\":{},\"results\":{},\"vm\":{{\"secs\":{:.6},\"events_per_s\":{:.0},\"allocs\":{},\"allocs_per_event\":{:.3}}},\"network\":{{\"secs\":{:.6},\"events_per_s\":{:.0},\"allocs\":{},\"allocs_per_event\":{:.3}}},\"speedup\":{:.3}}}{sep}\n",
                r.workload,
                r.class,
                r.query,
                r.events,
                r.results,
                r.vm_secs,
                r.events as f64 / r.vm_secs.max(1e-9),
                r.vm_allocs,
                r.vm_allocs as f64 / r.events as f64,
                r.net_secs,
                r.events as f64 / r.net_secs.max(1e-9),
                r.net_allocs,
                r.net_allocs as f64 / r.events as f64,
                r.net_secs / r.vm_secs.max(1e-9),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": [\n");
        for (i, (name, vm_eps, net_eps, speedup, vm_apev)) in vm_summary.iter().enumerate() {
            let sep = if i + 1 == vm_summary.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{name}\",\"vm_events_per_s\":{vm_eps:.0},\"network_events_per_s\":{net_eps:.0},\"speedup\":{speedup:.4},\"vm_allocs_per_event\":{vm_apev:.3}}}{sep}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&out6_path, out).expect("write BENCH_6.json");
        println!("wrote {out6_path}");
    }
    if failed {
        std::process::exit(1);
    }
}

/// Extract a prior run's VM-vs-network speedup for a workload from the
/// `summary` section of a BENCH_6.json baseline (line scan, like
/// [`baseline_vs_owned`]).
fn baseline_speedup(json: &str, workload: &str) -> Option<f64> {
    let tag = format!("{{\"workload\":\"{workload}\",\"vm_events_per_s\":");
    let line = json.lines().find(|l| l.trim_start().starts_with(&tag))?;
    let at = line.find("\"speedup\":")?;
    let rest = &line[at + "\"speedup\":".len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extract a prior run's zero-copy/owned throughput ratio for a workload
/// from the `summary` section of a BENCH_3.json baseline. The file is
/// written one record per line, so a line scan suffices — no JSON parser
/// dependency.
fn baseline_vs_owned(json: &str, workload: &str) -> Option<f64> {
    let tag = format!("{{\"workload\":\"{workload}\",\"mb_per_s\":");
    let line = json.lines().find(|l| l.trim_start().starts_with(&tag))?;
    let at = line.find("\"vs_owned\":")?;
    let rest = &line[at + "\"vs_owned\":".len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The `serve-bench` subcommand: N concurrent clients, each running M
/// sessions over a loopback spex-serve instance (one Mondial document per
/// session, rotating through the paper's query classes). Reports aggregate
/// engine throughput, p50/p99 session latency, and the reject rate of a
/// deliberately under-provisioned second server (1 worker, queue of 1)
/// under the same burst. With `--json`, writes `BENCH_4.json` (repo root by
/// default, `--out PATH` overrides).
fn serve_bench_cmd(args: &[String]) {
    use spex_serve::{Client, Server, ServerConfig};

    let json = args.iter().any(|a| a == "--json");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let clients = flag("--clients").unwrap_or(4).max(1);
    let docs = flag("--docs").unwrap_or(6).max(1);
    let engine: Engine = args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--engine: vm or network"))
        .unwrap_or_default();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_4.json", env!("CARGO_MANIFEST_DIR")));
    header(&format!(
        "serve-bench — {clients} clients x {docs} documents over loopback spex-serve ({engine} engine)"
    ));
    let xml = std::sync::Arc::new(spex_xml::writer::events_to_string(mondial_events()));
    let mb = xml.len() as f64 / 1e6;
    let queries: Vec<(String, String)> = queries_for(Dataset::Mondial)
        .into_iter()
        .map(|qc| (format!("c{}", qc.class), qc.text.to_string()))
        .collect();

    // Main phase: a server provisioned to match the offered concurrency.
    let server = Server::bind(ServerConfig {
        workers: clients,
        engine,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let xml = xml.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut latencies_ms = Vec::with_capacity(docs);
                for d in 0..docs {
                    let (name, expr) = &queries[(c + d) % queries.len()];
                    let t0 = Instant::now();
                    let mut client = Client::connect(addr).expect("connect");
                    // Class-3 queries match subtrees the size of the whole
                    // document; accept result frames that large.
                    client.set_max_frame(16 * 1024 * 1024);
                    let t = client
                        .run_session(&[(name.as_str(), expr.as_str())], xml.as_bytes())
                        .expect("session");
                    assert!(t.clean_end && !t.busy, "session did not complete");
                    assert!(t.errors.is_empty(), "session errors: {:?}", t.errors);
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    handle.shutdown();
    let report = join.join().expect("server thread").expect("server run");
    assert_eq!(report.sessions_failed, 0, "no session may fail");
    assert_eq!(report.documents, (clients * docs) as u64);
    latencies_ms.sort_by(f64::total_cmp);
    let pct = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p).round() as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let events_per_s = report.engine.ticks as f64 / elapsed.max(1e-9);
    let mb_per_s = mb * (clients * docs) as f64 / elapsed.max(1e-9);
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "sessions", "Mev/s", "MB/s", "p50 ms", "p99 ms", "wall s"
    );
    println!(
        "{:>10} {:>10.2} {:>10.1} {:>10.1} {:>10.1} {:>10.2}",
        latencies_ms.len(),
        events_per_s / 1e6,
        mb_per_s,
        p50,
        p99,
        elapsed
    );

    // Admission phase: the burst that drove the blocking thread-per-session
    // server to 94% BUSY (1 worker, queue of 1 — BENCH_4 history). The
    // reactor admits by connection count, not worker count, so the same
    // burst must now be served in full: zero rejects, zero failures, even
    // on a single worker.
    let burst = (clients * 4).max(8);
    let server = Server::bind(ServerConfig {
        workers: 1,
        queue_cap: 1,
        engine,
        ..ServerConfig::default()
    })
    .expect("bind admission-phase server");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    let threads: Vec<_> = (0..burst)
        .map(|i| {
            let xml = xml.clone();
            let (name, expr) = queries[i % queries.len()].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect burst");
                client.set_max_frame(16 * 1024 * 1024);
                let t = client
                    .run_session(&[(name.as_str(), expr.as_str())], xml.as_bytes())
                    .expect("burst session");
                assert!(!t.busy, "burst connection was rejected with BUSY");
                assert!(t.clean_end, "burst session did not complete");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("burst thread");
    }
    handle.shutdown();
    let reject_report = join.join().expect("server thread").expect("server run");
    let offered = reject_report.sessions_started + reject_report.sessions_rejected;
    assert_eq!(
        reject_report.sessions_rejected, 0,
        "the reactor must admit the full burst that the blocking server rejected"
    );
    assert_eq!(
        reject_report.sessions_failed, 0,
        "no burst session may fail"
    );
    let reject_rate = reject_report.sessions_rejected as f64 / (offered as f64).max(1.0);
    println!(
        "admission: {} offered, {} served, {} rejected on 1 worker \
         (the blocking design rejected 94% of this burst)",
        offered, reject_report.sessions_started, reject_report.sessions_rejected,
    );

    // Connection-scalability sweep (BENCH_8): tiers of mostly-idle
    // connections held open while a hot subset streams real sessions. The
    // tier list climbs to 10,000 where the process fd budget allows (both
    // ends of every loopback connection live in this process, so each
    // connection costs two descriptors).
    const BLOCKING_P50_MS: f64 = 329.0; // BENCH_4 p50 of the blocking server
    const HOT_CLIENTS: usize = 4;
    // The latency bar is defined at the acceptance operating point — an
    // optimized build on >=4 cores (CI) — where the hot set is not
    // artificially serialized by the host. Elsewhere the sweep still runs
    // and records, but the bar is advisory.
    let gate_latency = !cfg!(debug_assertions)
        && std::thread::available_parallelism()
            .map(|p| p.get() >= 4)
            .unwrap_or(false);
    let out8_path = args
        .iter()
        .position(|a| a == "--out8")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_8.json", env!("CARGO_MANIFEST_DIR")));
    let fd_budget = spex_serve::soft_fd_limit().unwrap_or(1024) as usize;
    let idle_cap = fd_budget.saturating_sub(256) / 2;
    let tiers: Vec<usize> = [100usize, 1_000, 10_000]
        .into_iter()
        .filter(|t| *t <= idle_cap)
        .collect();
    if tiers.len() < 3 {
        println!(
            "note: fd soft limit {fd_budget} clamps the sweep to {} idle connection(s); \
             raise `ulimit -n` for the full 10,000-connection tier",
            idle_cap
        );
    }
    struct Tier {
        conns: usize,
        hot_sessions: usize,
        rejected: u64,
        elapsed_s: f64,
        p50: f64,
        p99: f64,
        min: f64,
        max: f64,
    }
    let hot_docs = docs.clamp(1, 3);
    let mut sweep: Vec<Tier> = Vec::new();
    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "idle conns", "hot", "p50 ms", "p99 ms", "rejected", "wall s"
    );
    for &tier in &tiers {
        let server = Server::bind(ServerConfig {
            workers: 4,
            engine,
            max_conns: tier + HOT_CLIENTS + 64,
            ..ServerConfig::default()
        })
        .expect("bind sweep server");
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        // Hold `tier` idle connections open for the whole measurement. A
        // dropped SYN under connect bursts (listener backlog) surfaces as a
        // transient error; retry briefly rather than fail the sweep.
        let mut idle: Vec<std::net::TcpStream> = Vec::with_capacity(tier);
        for _ in 0..tier {
            let mut tries = 0;
            let stream = loop {
                match std::net::TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) if tries < 50 => {
                        tries += 1;
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        let _ = e;
                    }
                    Err(e) => panic!("sweep: connect idle conn: {e}"),
                }
            };
            idle.push(stream);
        }
        let t0 = Instant::now();
        let threads: Vec<_> = (0..HOT_CLIENTS)
            .map(|c| {
                let xml = xml.clone();
                let queries = queries.clone();
                std::thread::spawn(move || {
                    let mut latencies_ms = Vec::with_capacity(hot_docs);
                    for d in 0..hot_docs {
                        let (name, expr) = &queries[(c + d) % queries.len()];
                        let s0 = Instant::now();
                        let mut client = Client::connect(addr).expect("connect hot");
                        client.set_max_frame(16 * 1024 * 1024);
                        let t = client
                            .run_session(&[(name.as_str(), expr.as_str())], xml.as_bytes())
                            .expect("hot session");
                        assert!(t.clean_end && !t.busy, "hot session did not complete");
                        assert!(t.errors.is_empty(), "hot session errors: {:?}", t.errors);
                        latencies_ms.push(s0.elapsed().as_secs_f64() * 1e3);
                    }
                    latencies_ms
                })
            })
            .collect();
        let mut hot_ms: Vec<f64> = threads
            .into_iter()
            .flat_map(|t| t.join().expect("hot client thread"))
            .collect();
        let elapsed_s = t0.elapsed().as_secs_f64();
        // Shut down with every idle connection still open: the drain must
        // not wait on peers that never sent a byte.
        handle.shutdown();
        let report = join
            .join()
            .expect("sweep server thread")
            .expect("sweep server run");
        drop(idle);
        assert_eq!(
            report.sessions_rejected, 0,
            "sweep tier {tier}: the reactor rejected connections under its cap"
        );
        hot_ms.sort_by(f64::total_cmp);
        let pct = |p: f64| hot_ms[((hot_ms.len() - 1) as f64 * p).round() as usize];
        let (p50, p99) = (pct(0.50), pct(0.99));
        println!(
            "{:>10} {:>8} {:>10.1} {:>10.1} {:>10} {:>10.2}",
            tier,
            hot_ms.len(),
            p50,
            p99,
            report.sessions_rejected,
            elapsed_s
        );
        // The acceptance gate: hot-path p99 with thousands of idle
        // connections multiplexed must beat the blocking baseline's p50.
        if gate_latency {
            assert!(
                p99 < BLOCKING_P50_MS,
                "sweep tier {tier}: hot p99 {p99:.1} ms >= blocking baseline p50 {BLOCKING_P50_MS} ms"
            );
        } else if p99 >= BLOCKING_P50_MS {
            println!(
                "note: hot p99 {p99:.1} ms over the {BLOCKING_P50_MS} ms bar; \
                 gate advisory here (debug build or <4 cores)"
            );
        }
        sweep.push(Tier {
            conns: tier,
            hot_sessions: hot_ms.len(),
            rejected: report.sessions_rejected,
            elapsed_s,
            p50,
            p99,
            min: hot_ms.first().copied().unwrap_or(0.0),
            max: hot_ms.last().copied().unwrap_or(0.0),
        });
    }
    if json {
        let tiers_json: Vec<String> = sweep
            .iter()
            .map(|t| {
                format!(
                    "    {{\"conns\": {}, \"hot_sessions\": {}, \"rejected\": {}, \"elapsed_s\": {:.3}, \
                     \"latency_ms\": {{\"p50\": {:.2}, \"p99\": {:.2}, \"min\": {:.2}, \"max\": {:.2}}}}}",
                    t.conns, t.hot_sessions, t.rejected, t.elapsed_s, t.p50, t.p99, t.min, t.max
                )
            })
            .collect();
        let out = format!(
            "{{\n  \"schema\": \"spex-serve-bench-8\",\n  \"engine\": \"{engine}\",\n  \"workers\": 4,\n  \
             \"hot_clients\": {HOT_CLIENTS},\n  \"docs_per_hot_client\": {hot_docs},\n  \
             \"workload\": \"mondial\",\n  \"document_mb\": {mb:.3},\n  \
             \"fd_soft_limit\": {fd_budget},\n  \
             \"blocking_baseline_p50_ms\": {BLOCKING_P50_MS},\n  \
             \"latency_gate_enforced\": {gate_latency},\n  \"tiers\": [\n{}\n  ]\n}}\n",
            tiers_json.join(",\n"),
        );
        std::fs::write(&out8_path, out).expect("write BENCH_8.json");
        println!("wrote {out8_path}");
    }

    if json {
        let out = format!(
            "{{\n  \"schema\": \"spex-serve-bench-4\",\n  \"engine\": \"{engine}\",\n  \"clients\": {clients},\n  \"docs_per_client\": {docs},\n  \"workers\": {clients},\n  \"workload\": \"mondial\",\n  \"document_mb\": {mb:.3},\n  \"sessions\": {},\n  \"documents\": {},\n  \"elapsed_s\": {elapsed:.3},\n  \"events_per_s\": {events_per_s:.0},\n  \"mb_per_s\": {mb_per_s:.3},\n  \"latency_ms\": {{\"p50\": {p50:.2}, \"p99\": {p99:.2}, \"min\": {:.2}, \"max\": {:.2}}},\n  \"reject\": {{\"workers\": 1, \"queue\": 1, \"offered\": {offered}, \"rejected\": {}, \"rate\": {reject_rate:.4}}}\n}}\n",
            latencies_ms.len(),
            report.documents,
            latencies_ms.first().copied().unwrap_or(0.0),
            latencies_ms.last().copied().unwrap_or(0.0),
            reject_report.sessions_rejected,
        );
        std::fs::write(&out_path, out).expect("write BENCH_4.json");
        println!("wrote {out_path}");
    }
}

/// The `trace-bench` subcommand: tracing overhead of the full zero-copy
/// pipeline. Each (workload, query) cell is evaluated with the tracer
/// disabled and with a live JSONL tracer (the `--trace-jsonl`
/// configuration), interleaved best-of-N in one process so machine-wide
/// noise cancels out of the comparison. The acceptance bar from DESIGN.md
/// §13 — trace-on within 5% of trace-off overall — is enforced on every
/// run; with `--json` the measurements are also written to `BENCH_5.json`
/// (repo root by default, `--out PATH` overrides).
fn trace_bench_cmd(args: &[String]) {
    use spex_bench::run_spex_traced_engine;
    use spex_trace::{JsonlSink, Tracer};

    let json = args.iter().any(|a| a == "--json");
    let engine: Engine = args
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--engine: vm or network"))
        .unwrap_or_default();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_5.json", env!("CARGO_MANIFEST_DIR")));
    header(&format!(
        "trace-bench — spex-trace overhead (tracer off vs JSONL tracer on, {engine} engine)"
    ));
    let jsonl_path = std::env::temp_dir().join("spex-trace-bench.jsonl");
    let sink = std::sync::Arc::new(JsonlSink::create(&jsonl_path).expect("create trace file"));
    let on = Tracer::to_sink(sink.clone());
    let off = Tracer::disabled();

    struct Cell {
        workload: &'static str,
        class: u8,
        query: &'static str,
        events: usize,
        off_secs: f64,
        on_secs: f64,
    }
    let bench_dmoz_scale = 0.01;
    let workloads: Vec<(&'static str, Dataset, Vec<XmlEvent>)> = vec![
        ("mondial", Dataset::Mondial, mondial_events().to_vec()),
        (
            "dmoz-structure",
            Dataset::DmozStructure,
            dmoz_structure(bench_dmoz_scale).collect(),
        ),
    ];
    println!(
        "{:>14} {:>5} {:<28} {:>10} {:>10} {:>9}",
        "workload", "class", "query", "off", "on", "overhead"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for (name, dataset, events) in &workloads {
        let xml = spex_xml::writer::events_to_string(events);
        for qc in queries_for(*dataset) {
            let q = qc.rpeq();
            // Interleaved best-of-5: off, on, off, on, … so a load spike
            // hits both arms equally and the minimum stays comparable.
            let mut off_secs = f64::INFINITY;
            let mut on_secs = f64::INFINITY;
            for _ in 0..5 {
                let a = run_spex_traced_engine(&q, xml.as_bytes(), &off, engine);
                let b = run_spex_traced_engine(&q, xml.as_bytes(), &on, engine);
                assert_eq!(a.results, b.results, "tracing changed results on {name}");
                off_secs = off_secs.min(a.elapsed.as_secs_f64());
                on_secs = on_secs.min(b.elapsed.as_secs_f64());
            }
            println!(
                "{:>14} {:>5} {:<28} {:>9.1}ms {:>9.1}ms {:>+8.2}%",
                name,
                qc.class,
                qc.text,
                off_secs * 1e3,
                on_secs * 1e3,
                (on_secs / off_secs.max(1e-9) - 1.0) * 100.0
            );
            cells.push(Cell {
                workload: name,
                class: qc.class,
                query: qc.text,
                events: events.len(),
                off_secs,
                on_secs,
            });
        }
    }
    on.flush();
    assert!(!sink.had_error(), "trace sink reported a write error");
    let trace_records = std::fs::read_to_string(&jsonl_path)
        .map(|s| s.lines().count())
        .unwrap_or(0);
    let off_total: f64 = cells.iter().map(|c| c.off_secs).sum();
    let on_total: f64 = cells.iter().map(|c| c.on_secs).sum();
    let overhead_pct = (on_total / off_total.max(1e-9) - 1.0) * 100.0;
    let gate_pct = 5.0;
    let pass = overhead_pct <= gate_pct;
    println!(
        "total: off {:.1}ms, on {:.1}ms, overhead {:+.2}% (gate {}%); {} trace record(s) written",
        off_total * 1e3,
        on_total * 1e3,
        overhead_pct,
        gate_pct,
        trace_records
    );
    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"spex-trace-bench-5\",\n");
        out.push_str(&format!("  \"engine\": \"{engine}\",\n"));
        out.push_str(&format!("  \"dmoz_scale\": {bench_dmoz_scale},\n"));
        out.push_str("  \"runs\": [\n");
        for (i, c) in cells.iter().enumerate() {
            let sep = if i + 1 == cells.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"class\":{},\"query\":{:?},\"events\":{},\"off_secs\":{:.6},\"on_secs\":{:.6},\"overhead_pct\":{:.3}}}{sep}\n",
                c.workload,
                c.class,
                c.query,
                c.events,
                c.off_secs,
                c.on_secs,
                (c.on_secs / c.off_secs.max(1e-9) - 1.0) * 100.0,
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"off_secs\":{off_total:.6},\"on_secs\":{on_total:.6},\"overhead_pct\":{overhead_pct:.3},\"gate_pct\":{gate_pct},\"pass\":{pass},\"trace_records\":{trace_records}}}\n"
        ));
        out.push_str("}\n");
        std::fs::write(&out_path, out).expect("write BENCH_5.json");
        println!("wrote {out_path}");
    }
    if !pass {
        eprintln!(
            "TRACE OVERHEAD REGRESSION: trace-on {overhead_pct:+.2}% vs trace-off (gate {gate_pct}%)"
        );
        std::process::exit(1);
    }
}

fn crash_diff_cmd(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let cases = flag("--cases").unwrap_or(125) as usize;
    let seed = flag("--seed").unwrap_or(0xc4a5);
    let kills = flag("--kills").unwrap_or(3) as usize;
    header(&format!(
        "crash-diff — {cases} random case(s), seed {seed}, {kills} kill-point(s) per policy"
    ));
    let outcome = spex_bench::crash::crash_diff(cases, seed, kills);
    println!(
        "{} case(s) x both engines x strict/repair/skip-subtree: {} kill-point(s), \
         {} resumed run(s) ({} restored from a document-boundary snapshot)",
        outcome.cases, outcome.kills, outcome.resumed_runs, outcome.snapshot_resumes
    );
    println!(
        "{} corrupt-snapshot / torn-WAL check(s), {} divergence(s)",
        outcome.corruption_checks,
        outcome.divergences.len()
    );
    for d in &outcome.divergences {
        eprintln!("DIVERGENCE: {d}");
    }
    if !outcome.divergences.is_empty() {
        std::process::exit(1);
    }
}

fn crash_smoke_cmd(args: &[String]) {
    let spex = args
        .iter()
        .position(|a| a == "--spex")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // Default: the `spex` binary sitting next to this harness.
            std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.join("spex")))
                .unwrap_or_else(|| std::path::PathBuf::from("spex"))
        });
    header("crash-smoke — SIGKILL a live durable server, restart, resume by token");
    if !spex.exists() {
        eprintln!(
            "crash-smoke: `{}` not found (build it with `cargo build --release -p spex-cli` \
             or pass --spex PATH)",
            spex.display()
        );
        std::process::exit(2);
    }
    match spex_bench::crash::crash_smoke(&spex) {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("crash-smoke FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// The `reactor-smoke` subcommand: a real `spex serve` child process holds
/// thousands of idle connections while live sessions stream through it,
/// then a SIGTERM must drain the live work and exit 0 without waiting on
/// the idle peers. This is the process-level version of the acceptance bar
/// the in-process sweep measures — same reactor, real signals, real fds.
fn reactor_smoke_cmd(args: &[String]) {
    use spex_serve::Client;
    use std::io::Read as _;

    let spex = args
        .iter()
        .position(|a| a == "--spex")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.join("spex")))
                .unwrap_or_else(|| std::path::PathBuf::from("spex"))
        });
    let conns_want = args
        .iter()
        .position(|a| a == "--conns")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10_000);
    header("reactor-smoke — 10k idle connections + live traffic, SIGTERM must drain to exit 0");
    if !spex.exists() {
        eprintln!(
            "reactor-smoke: `{}` not found (build it with `cargo build --release -p spex-cli` \
             or pass --spex PATH)",
            spex.display()
        );
        std::process::exit(2);
    }
    // This process holds one fd per idle connection; the child holds the
    // other end under its own (inherited) limit.
    let fd_budget = spex_serve::soft_fd_limit().unwrap_or(1024) as usize;
    let conns = conns_want.min(fd_budget.saturating_sub(256));
    if conns < conns_want {
        println!(
            "note: fd soft limit {fd_budget} clamps the idle herd to {conns} \
             (raise `ulimit -n` for the full {conns_want})"
        );
    }
    let log_path =
        std::env::temp_dir().join(format!("spex-reactor-smoke-{}.log", std::process::id()));
    let log = std::fs::File::create(&log_path).expect("create server log");
    let mut child = std::process::Command::new(&spex)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
        .stderr(log)
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn spex serve");
    // The listen address is announced on stderr once the socket is bound.
    let addr: std::net::SocketAddr = 'addr: {
        for _ in 0..100 {
            if let Ok(text) = std::fs::read_to_string(&log_path) {
                if let Some(line) = text.lines().find(|l| l.contains("listening on ")) {
                    let addr = line.rsplit("listening on ").next().unwrap().trim();
                    break 'addr addr.parse().expect("parse listen address");
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        let _ = child.kill();
        panic!(
            "server never announced its listen address (see {})",
            log_path.display()
        );
    };
    // The idle herd: connected, never sends a byte, stays open through the
    // shutdown below.
    let mut idle: Vec<std::net::TcpStream> = Vec::with_capacity(conns);
    for i in 0..conns {
        let mut tries = 0;
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if tries < 50 => {
                    tries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    let _ = e;
                }
                Err(e) => {
                    let _ = child.kill();
                    panic!("idle conn {i}: {e}");
                }
            }
        };
        idle.push(stream);
    }
    // Live traffic while the herd sits on the reactor.
    let xml = std::sync::Arc::new(spex_xml::writer::events_to_string(mondial_events()));
    let queries: Vec<(String, String)> = queries_for(Dataset::Mondial)
        .into_iter()
        .map(|qc| (format!("c{}", qc.class), qc.text.to_string()))
        .collect();
    let live: Vec<_> = (0..8usize)
        .map(|c| {
            let xml = xml.clone();
            let (name, expr) = queries[c % queries.len()].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect live");
                client.set_max_frame(16 * 1024 * 1024);
                let t = client
                    .run_session(&[(name.as_str(), expr.as_str())], xml.as_bytes())
                    .expect("live session");
                assert!(t.clean_end && !t.busy, "live session did not complete");
                assert!(t.errors.is_empty(), "live session errors: {:?}", t.errors);
            })
        })
        .collect();
    for t in live {
        t.join().expect("live client thread");
    }
    // SIGTERM with the whole herd still connected. `Child::kill` is
    // SIGKILL, so shell out for the graceful signal.
    let status = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    let exit = 'exit: {
        for _ in 0..300 {
            if let Some(status) = child.try_wait().expect("wait on server") {
                break 'exit status;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        let _ = child.kill();
        panic!("server did not exit within 30s of SIGTERM with the idle herd connected");
    };
    drop(idle);
    assert!(
        exit.success(),
        "server exited non-zero after SIGTERM: {exit}"
    );
    let mut log_text = String::new();
    let _ = std::fs::File::open(&log_path).and_then(|mut f| f.read_to_string(&mut log_text));
    assert!(
        log_text.contains("drained"),
        "server log does not report a drained shutdown:\n{log_text}"
    );
    let _ = std::fs::remove_file(&log_path);
    println!(
        "reactor-smoke survived: {conns} idle connection(s) held through 8 live session(s) \
         and a SIGTERM drain to exit 0"
    );
}

/// Drive `xml` to its final document boundary, then time `checkpoint()` +
/// encode and decode + `restore()` into a fresh run (best-of-7 each).
/// Returns (events, snapshot bytes, checkpoint µs, restore µs).
fn measure_snapshot(query: &Rpeq, engine: Engine, xml: &str) -> (u64, usize, f64, f64) {
    let network = CompiledNetwork::compile(query);
    let mut sink = spex_core::CountingSink::new();
    let mut eval = spex_core::Evaluator::with_engine(&network, &mut sink, engine);
    let mut reader =
        spex_xml::Reader::new(std::io::Cursor::new(xml.as_bytes().to_vec())).multi_document();
    let mut events = 0u64;
    while let Some(end) = eval.push_step(&mut reader).expect("clean stream") {
        events += 1;
        if end {
            eval.reset_session();
        }
    }
    let mut checkpoint_us = f64::INFINITY;
    let mut bytes = Vec::new();
    for _ in 0..7 {
        let t = Instant::now();
        let snap = eval.checkpoint().expect("quiescent at document boundary");
        let enc = snap.encode();
        checkpoint_us = checkpoint_us.min(t.elapsed().as_secs_f64() * 1e6);
        bytes = enc;
    }
    let mut restore_us = f64::INFINITY;
    for _ in 0..7 {
        let t = Instant::now();
        let snap = spex_core::Snapshot::decode(&bytes).expect("decode own snapshot");
        let mut fresh_sink = spex_core::CountingSink::new();
        let mut fresh = spex_core::Evaluator::with_engine(&network, &mut fresh_sink, engine);
        fresh.restore(&snap).expect("restore own snapshot");
        restore_us = restore_us.min(t.elapsed().as_secs_f64() * 1e6);
    }
    (events, bytes.len(), checkpoint_us, restore_us)
}

fn crash_bench_cmd(args: &[String]) {
    use spex_serve::{Client, FsyncPolicy, Server, ServerConfig, SessionLog};

    let json = args.iter().any(|a| a == "--json");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_7.json", env!("CARGO_MANIFEST_DIR")));
    header("crash-bench — durable sessions: snapshot size/latency and WAL overhead");

    // Snapshot size and checkpoint/restore latency across the paper's query
    // classes, both engines.
    struct SnapCell {
        workload: &'static str,
        class: u8,
        query: String,
        engine: Engine,
        events: u64,
        snapshot_bytes: usize,
        checkpoint_us: f64,
        restore_us: f64,
    }
    let mondial_xml = spex_xml::writer::events_to_string(mondial_events());
    let mut snaps: Vec<SnapCell> = Vec::new();
    println!(
        "{:>8} {:>5} {:<28} {:>8} {:>10} {:>12} {:>11}",
        "workload", "class", "query", "engine", "snapshot", "checkpoint", "restore"
    );
    for engine in [Engine::Vm, Engine::Network] {
        for qc in queries_for(Dataset::Mondial) {
            let q = qc.rpeq();
            let (events, snapshot_bytes, checkpoint_us, restore_us) =
                measure_snapshot(&q, engine, &mondial_xml);
            println!(
                "{:>8} {:>5} {:<28} {:>8} {:>9}B {:>10.1}us {:>9.1}us",
                "mondial", qc.class, qc.text, engine, snapshot_bytes, checkpoint_us, restore_us
            );
            snaps.push(SnapCell {
                workload: "mondial",
                class: qc.class,
                query: qc.text.to_string(),
                engine,
                events,
                snapshot_bytes,
                checkpoint_us,
                restore_us,
            });
        }
    }

    // Snapshot size vs document depth: the state captured at a quiescent
    // boundary is O(query), not O(document) — depth should not move it.
    struct DepthCell {
        depth: usize,
        events: u64,
        snapshot_bytes: usize,
        checkpoint_us: f64,
        restore_us: f64,
    }
    let depth_query: Rpeq = "_*.a[b].c".parse().expect("depth-sweep query");
    let mut depths: Vec<DepthCell> = Vec::new();
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>11}",
        "depth", "events", "snapshot", "checkpoint", "restore"
    );
    for depth in [4usize, 16, 64, 256] {
        let mut xml = String::new();
        for _ in 0..depth {
            xml.push_str("<a><b></b>");
        }
        xml.push_str("<c>leaf</c>");
        for _ in 0..depth {
            xml.push_str("</a>");
        }
        let (events, snapshot_bytes, checkpoint_us, restore_us) =
            measure_snapshot(&depth_query, Engine::Vm, &xml);
        println!(
            "{:>8} {:>8} {:>9}B {:>10.1}us {:>9.1}us",
            depth, events, snapshot_bytes, checkpoint_us, restore_us
        );
        depths.push(DepthCell {
            depth,
            events,
            snapshot_bytes,
            checkpoint_us,
            restore_us,
        });
    }

    // WAL overhead end-to-end: the same single-query session streamed over
    // loopback against a vanilla server and against one with a durable
    // directory (fsync=never, so the gate prices the append path —
    // checksums, copies, segment and snapshot writes — not disk-sync
    // latency, which is what the fsync policy knob trades away). The first
    // iteration per cell is an uncounted warm-up; the rest are interleaved
    // best-of, since noise only ever inflates a run.
    struct WalCell {
        class: u8,
        query: String,
        off_secs: f64,
        on_secs: f64,
    }
    let wal_root = std::env::temp_dir().join(format!("spex-crash-bench-{}", std::process::id()));
    std::fs::create_dir_all(&wal_root).expect("create WAL scratch dir");
    let off_server = Server::bind(ServerConfig::default()).expect("bind server");
    let off_addr = off_server.local_addr();
    let off_handle = off_server.handle();
    let off_join = std::thread::spawn(move || off_server.run());
    let on_server = Server::bind(ServerConfig {
        durable_dir: Some(wal_root.to_string_lossy().into_owned()),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    })
    .expect("bind durable server");
    let on_addr = on_server.local_addr();
    let on_handle = on_server.handle();
    let on_join = std::thread::spawn(move || on_server.run());

    let mut wal_cells: Vec<WalCell> = Vec::new();
    println!(
        "{:>5} {:<28} {:>10} {:>10} {:>9}",
        "class", "query", "wal off", "wal on", "overhead"
    );
    for qc in queries_for(Dataset::Mondial) {
        let mut off_secs = f64::INFINITY;
        let mut on_secs = f64::INFINITY;
        for iteration in 0..9 {
            for (addr, secs) in [(off_addr, &mut off_secs), (on_addr, &mut on_secs)] {
                let t0 = Instant::now();
                let mut client = Client::connect(addr).expect("connect");
                // Class-3 queries match subtrees the size of the document.
                client.set_max_frame(16 * 1024 * 1024);
                let t = client
                    .run_session(&[("q", qc.text)], mondial_xml.as_bytes())
                    .expect("session");
                assert!(t.clean_end && !t.busy, "session did not complete");
                assert!(t.errors.is_empty(), "session errors: {:?}", t.errors);
                if iteration > 0 {
                    *secs = secs.min(t0.elapsed().as_secs_f64());
                }
            }
        }
        println!(
            "{:>5} {:<28} {:>9.1}ms {:>9.1}ms {:>+8.2}%",
            qc.class,
            qc.text,
            off_secs * 1e3,
            on_secs * 1e3,
            (on_secs / off_secs.max(1e-9) - 1.0) * 100.0
        );
        wal_cells.push(WalCell {
            class: qc.class,
            query: qc.text.to_string(),
            off_secs,
            on_secs,
        });
    }
    off_handle.shutdown();
    on_handle.shutdown();
    off_join.join().expect("server thread").expect("server run");
    on_join.join().expect("server thread").expect("server run");

    // Raw WAL bytes for one session at the client's 64 KiB frame size, for
    // the report only.
    let mut log = SessionLog::create(
        &wal_root,
        "bytes-probe",
        &[("q".to_string(), "probe".to_string())],
        FsyncPolicy::Never,
    )
    .expect("probe log");
    for chunk in mondial_xml.as_bytes().chunks(64 * 1024) {
        log.append_data(chunk).expect("probe append");
    }
    log.append_end().expect("probe end");
    let wal_bytes = log.wal_bytes_written();
    drop(log);
    let _ = std::fs::remove_dir_all(&wal_root);
    let off_total: f64 = wal_cells.iter().map(|c| c.off_secs).sum();
    let on_total: f64 = wal_cells.iter().map(|c| c.on_secs).sum();
    let overhead_pct = (on_total / off_total.max(1e-9) - 1.0) * 100.0;
    let gate_pct = 5.0;
    let pass = overhead_pct <= gate_pct;
    println!(
        "total: wal-off {:.1}ms, wal-on {:.1}ms, overhead {:+.2}% (gate {}%); {} WAL byte(s) per run",
        off_total * 1e3,
        on_total * 1e3,
        overhead_pct,
        gate_pct,
        wal_bytes
    );

    if json {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"spex-crash-bench-7\",\n");
        out.push_str("  \"snapshots\": [\n");
        for (i, c) in snaps.iter().enumerate() {
            let sep = if i + 1 == snaps.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workload\":\"{}\",\"class\":{},\"query\":{:?},\"engine\":\"{}\",\"events\":{},\"snapshot_bytes\":{},\"checkpoint_us\":{:.3},\"restore_us\":{:.3}}}{sep}\n",
                c.workload,
                c.class,
                c.query,
                c.engine,
                c.events,
                c.snapshot_bytes,
                c.checkpoint_us,
                c.restore_us,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"depth_sweep\": [\n");
        for (i, c) in depths.iter().enumerate() {
            let sep = if i + 1 == depths.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"depth\":{},\"events\":{},\"snapshot_bytes\":{},\"checkpoint_us\":{:.3},\"restore_us\":{:.3}}}{sep}\n",
                c.depth, c.events, c.snapshot_bytes, c.checkpoint_us, c.restore_us,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"wal\": {\n");
        out.push_str("    \"runs\": [\n");
        for (i, c) in wal_cells.iter().enumerate() {
            let sep = if i + 1 == wal_cells.len() { "" } else { "," };
            out.push_str(&format!(
                "      {{\"class\":{},\"query\":{:?},\"off_secs\":{:.6},\"on_secs\":{:.6},\"overhead_pct\":{:.3}}}{sep}\n",
                c.class,
                c.query,
                c.off_secs,
                c.on_secs,
                (c.on_secs / c.off_secs.max(1e-9) - 1.0) * 100.0,
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"summary\": {{\"off_secs\":{off_total:.6},\"on_secs\":{on_total:.6},\"overhead_pct\":{overhead_pct:.3},\"gate_pct\":{gate_pct},\"pass\":{pass},\"wal_bytes\":{wal_bytes}}}\n"
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        std::fs::write(&out_path, out).expect("write BENCH_7.json");
        println!("wrote {out_path}");
    }
    if !pass {
        eprintln!(
            "WAL OVERHEAD REGRESSION: wal-on {overhead_pct:+.2}% vs wal-off (gate {gate_pct}%)"
        );
        std::process::exit(1);
    }
}

fn parse_proc(p: &str) -> Processor {
    match p {
        "dom" => Processor::Dom,
        "treenfa" => Processor::TreeNfa,
        _ => Processor::Spex,
    }
}

/// Lemma V.1: translation time and network degree are linear in the query
/// length.
fn lemma_v1() {
    header("Lemma V.1 — translation time / network degree vs query length");
    println!(
        "{:>6} {:>10} {:>8} {:>14}",
        "n", "AST len", "degree", "compile time"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let text = (0..n)
            .map(|i| format!("_*.s{i}[t{i}]"))
            .collect::<Vec<_>>()
            .join(".");
        let q: Rpeq = text.parse().unwrap();
        let m = QueryMetrics::of(&q);
        // Compile repeatedly for a stable timing.
        let reps = 200;
        let start = Instant::now();
        let mut degree = 0;
        for _ in 0..reps {
            degree = CompiledNetwork::compile(&q).degree();
        }
        let per = start.elapsed() / reps;
        println!("{:>6} {:>10} {:>8} {:>11.1?}", n, m.length, degree, per);
    }
}

/// Theorem V.1: evaluation time linear in the stream size.
fn scaling() {
    header("Theorem V.1 — SPEX time vs stream size (DMOZ structure, class 2)");
    let q = queries_for(Dataset::DmozStructure)[1].rpeq();
    println!("{:>10} {:>12} {:>10} {:>12}", "scale", "MB", "time", "MB/s");
    for scale in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let bytes: u64 = dmoz_structure(scale)
            .map(|e| e.to_string().len() as u64)
            .sum();
        let (r, _) = run_spex_streaming(&q, dmoz_structure(scale));
        println!(
            "{:>10} {:>12.2} {:>10} {:>12.1}",
            scale,
            bytes as f64 / 1e6,
            secs(&r),
            bytes as f64 / 1e6 / r.elapsed.as_secs_f64()
        );
    }
}

/// §V formula-size analysis: o(φ) per language fragment and depth.
fn formula_growth() {
    header("§V — max formula size o(φ) by fragment and stream depth");
    let nested = |d: usize| {
        let mut xml = String::new();
        for _ in 0..d {
            xml.push_str("<a>");
        }
        xml.push_str("<leaf/>");
        for _ in 0..d {
            xml.push_str("</a>");
        }
        xml
    };
    println!("{:>34} {:>6} {:>8}", "query", "d", "o(phi)");
    for d in [4usize, 8, 16, 32] {
        let events: Vec<XmlEvent> = spex_xml::reader::parse_events(&nested(d)).unwrap();
        for q in [
            "_*.a+._*.leaf",
            "_*._[leaf]",
            "_*._[leaf]._*._",
            "_*._[leaf]._*._[leaf]._*._",
        ] {
            let query: Rpeq = q.parse().unwrap();
            let r = run_query(Processor::Spex, &query, &events);
            println!(
                "{:>34} {:>6} {:>8}",
                q,
                d,
                r.stats.as_ref().map(|s| s.max_formula_size).unwrap_or(0)
            );
        }
    }
    println!("(rpeq* stays at 1; one qualified closure grows ~d; stacked qualified closures grow faster — the dⁿ analysis)");
}

/// E12: many profiles over one stream — per-query SPEX networks vs the
/// shared-pass NFA filter (XFilter/YFilter stand-in).
fn multiquery() {
    header("E12 — multi-query filtering, 2,000 quote documents");
    let docs: Vec<XmlEvent> = QuoteStream::new(5, 10).take(2_000 * 130).collect();
    println!(
        "{:>9} {:>14} {:>14} {:>14}",
        "profiles", "spex (each)", "spex (shared)", "nfa filter"
    );
    for n in [1usize, 10, 100] {
        let queries: Vec<Rpeq> = (0..n)
            .map(|i| {
                format!("quotes.quote.sym{}", i % 7)
                    .replace("sym0", "symbol")
                    .parse()
                    .unwrap()
            })
            .collect();
        // SPEX: n independent networks, one pass each … shared event loop.
        let networks: Vec<CompiledNetwork> = queries.iter().map(CompiledNetwork::compile).collect();
        let start = Instant::now();
        let mut sinks: Vec<spex_core::CountingSink> =
            (0..n).map(|_| spex_core::CountingSink::new()).collect();
        {
            let mut evals: Vec<spex_core::Evaluator> = networks
                .iter()
                .zip(sinks.iter_mut())
                .map(|(net, sink)| spex_core::Evaluator::new(net, sink))
                .collect();
            for ev in &docs {
                for e in &mut evals {
                    e.push(ev.clone());
                }
            }
            for e in evals {
                e.finish();
            }
        }
        let spex_time = start.elapsed();
        // Shared SPEX network through the multi-query combiner (the §IX
        // multi-query optimization): canonical forms collapse the seven
        // distinct profiles, the step trie shares the `quotes.quote`
        // prefix, and the remaining duplicates alias sinks on one plan.
        let named: Vec<(String, Rpeq)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (format!("q{i}"), q.clone()))
            .collect();
        let shared = spex_combine::combine_set(&named).expect("E12 queries compile");
        let start = Instant::now();
        let (_counts, _stats) = shared.count_events(docs.iter().cloned());
        let shared_time = start.elapsed();
        // NFA filter: one shared pass.
        let mut set = spex_baseline::FilterSet::new();
        for (i, q) in queries.iter().enumerate() {
            set.add(format!("q{i}"), q).unwrap();
        }
        let start = Instant::now();
        let matched = set.matching(&docs);
        let nfa_time = start.elapsed();
        let _ = matched;
        println!(
            "{:>9} {:>13.3}s {:>13.3}s {:>13.3}s",
            n,
            spex_time.as_secs_f64(),
            shared_time.as_secs_f64(),
            nfa_time.as_secs_f64()
        );
    }
    println!("(boolean filtering only — the NFA filter cannot answer qualifier queries, SPEX can)");
}

/// Per-document event stream for `filter-bench`: `count` catalog documents,
/// each one product carrying a rotating window of `fld{k}` children from a
/// pool of `pool` field names, with a `meta.lang` subtree on every other
/// document so qualifier queries actually filter.
fn filter_catalog_docs(count: usize, pool: usize) -> Vec<Vec<XmlEvent>> {
    (0..count)
        .map(|d| {
            let mut ev = vec![
                XmlEvent::StartDocument,
                XmlEvent::open("catalog"),
                XmlEvent::open("product"),
            ];
            if d % 2 == 0 {
                ev.push(XmlEvent::open("meta"));
                ev.push(XmlEvent::open("lang"));
                ev.push(XmlEvent::text("en"));
                ev.push(XmlEvent::close("lang"));
                ev.push(XmlEvent::close("meta"));
            }
            for k in 0..8usize {
                let fld = format!("fld{}", (d * 8 + k) % pool);
                ev.push(XmlEvent::open(&fld));
                ev.push(XmlEvent::text("v"));
                ev.push(XmlEvent::close(&fld));
            }
            ev.push(XmlEvent::close("product"));
            ev.push(XmlEvent::close("catalog"));
            ev.push(XmlEvent::EndDocument);
            ev
        })
        .collect()
}

/// Per-document event stream for the disjoint profile: document `d` is the
/// three-element spine `a{j}.b{j}.c{j}` with `j = d % cap`, so every
/// registered disjoint query matches some documents.
fn filter_disjoint_docs(count: usize, cap: usize) -> Vec<Vec<XmlEvent>> {
    (0..count)
        .map(|d| {
            let j = d % cap;
            vec![
                XmlEvent::StartDocument,
                XmlEvent::open(format!("a{j}")),
                XmlEvent::open(format!("b{j}")),
                XmlEvent::open(format!("c{j}")),
                XmlEvent::text("v"),
                XmlEvent::close(format!("c{j}")),
                XmlEvent::close(format!("b{j}")),
                XmlEvent::close(format!("a{j}")),
                XmlEvent::EndDocument,
            ]
        })
        .collect()
}

/// `n` independently-compiled networks over one flattened stream: the
/// per-query baseline the combiner is measured against.
fn filter_independent(queries: &[(String, Rpeq)], events: &[XmlEvent]) -> (Vec<usize>, f64) {
    let networks: Vec<CompiledNetwork> = queries
        .iter()
        .map(|(_, q)| CompiledNetwork::compile(q))
        .collect();
    let mut sinks: Vec<spex_core::CountingSink> = (0..queries.len())
        .map(|_| spex_core::CountingSink::new())
        .collect();
    let start = Instant::now();
    {
        let mut evals: Vec<spex_core::Evaluator> = networks
            .iter()
            .zip(sinks.iter_mut())
            .map(|(net, sink)| spex_core::Evaluator::new(net, sink))
            .collect();
        for ev in events {
            for e in &mut evals {
                e.push(ev.clone());
            }
        }
        for e in evals {
            e.finish();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (sinks.iter().map(|s| s.results).collect(), elapsed)
}

/// One `filter-bench` measurement row.
struct FilterRow {
    profile: &'static str,
    queries: usize,
    distinct: usize,
    degree: usize,
    unshared_degree: usize,
    combined_ns: f64,
    independent_ns: Option<f64>,
    independent_estimated: bool,
    filter_ns: Option<f64>,
}

/// The `filter-bench` subcommand (E14): multi-tenant filtering, 10 →
/// 10,000 concurrent standing queries compiled through the spex-combine
/// combiner into **one** shared plan, against (a) n independently-compiled
/// per-query networks and (b) the boolean NFA filter baseline
/// (`spex_baseline::FilterSet`). Three query profiles: shared-prefix
/// (`catalog.product.fld{k}`, k from a pool of 128), shared-qualifier
/// (the same chains behind a `[meta.lang]` qualifier — the baseline cannot
/// express these), and disjoint (`a{i}.b{i}.c{i}`, capped at 1,000). The
/// per-query baseline is measured up to 1,000 queries and linearly
/// extrapolated past that (marked `est.`). Combined per-query counts are
/// checked against the independent counts wherever both run; any mismatch
/// fails the run, as does the sublinearity gate: shared-prefix per-event
/// cost at the largest n must stay within 20x the 10-query cost. With
/// `--json`, writes `BENCH_9.json` (`--out PATH` overrides); `--max N`
/// truncates the sweep (CI runs `--max 1000`).
fn filter_bench_cmd(args: &[String]) {
    let json = args.iter().any(|a| a == "--json");
    let max = args
        .iter()
        .position(|a| a == "--max")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10_000);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../BENCH_9.json", env!("CARGO_MANIFEST_DIR")));

    const POOL: usize = 128; // distinct suffix fields across all tenants
    const INDEP_CAP: usize = 1_000; // past this, extrapolate the per-query baseline
    const DISJOINT_CAP: usize = 1_000; // the disjoint profile stops here
    const DOCS: usize = 200;

    let ns: Vec<usize> = [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|n| *n <= max)
        .collect();
    assert!(!ns.is_empty(), "--max must be at least 10");

    header(&format!(
        "filter-bench — multi-tenant combiner sweep, {} → {} standing queries",
        ns[0],
        ns[ns.len() - 1]
    ));
    println!(
        "{:>17} {:>7} {:>9} {:>7} {:>9} {:>11} {:>13} {:>13}",
        "profile",
        "queries",
        "distinct",
        "degree",
        "unshared",
        "comb ns/ev",
        "indep ns/ev",
        "filter ns/ev"
    );

    let catalog_docs = filter_catalog_docs(DOCS, POOL);
    let disjoint_docs = filter_disjoint_docs(DOCS, DISJOINT_CAP);
    // One sweep profile: display name, query template, per-document event
    // stream, and whether the boolean NFA baseline can express it.
    type FilterProfile<'a> = (&'static str, fn(usize) -> String, &'a [Vec<XmlEvent>], bool);
    let profiles: [FilterProfile<'_>; 3] = [
        (
            "shared-prefix",
            |i| format!("catalog.product.fld{}", i % POOL),
            &catalog_docs,
            true,
        ),
        (
            "shared-qualifier",
            |i| format!("catalog.product[meta.lang].fld{}", i % POOL),
            &catalog_docs,
            false, // FilterSet rejects qualifiers
        ),
        (
            "disjoint",
            |i| format!("a{i}.b{i}.c{i}"),
            &disjoint_docs,
            true,
        ),
    ];

    let mut rows: Vec<FilterRow> = Vec::new();
    let mut mismatches = 0usize;
    for (profile, make, docs, filterable) in profiles {
        let events: Vec<XmlEvent> = docs.iter().flatten().cloned().collect();
        let per_event = |secs: f64| secs * 1e9 / events.len() as f64;
        for &n in &ns {
            if profile == "disjoint" && n > DISJOINT_CAP {
                println!(
                    "{:>17} {:>7}  (capped at {DISJOINT_CAP}: past it every added query is new topology, scaling is linear by construction)",
                    profile, n
                );
                continue;
            }
            let queries: Vec<(String, Rpeq)> = (0..n)
                .map(|i| {
                    (
                        format!("q{i}"),
                        make(i).parse().expect("bench query parses"),
                    )
                })
                .collect();
            let combined = spex_combine::combine(&queries).expect("bench queries compile");
            let report = combined.report;
            let start = Instant::now();
            let (combined_counts, _stats) = combined.set.count_events(events.iter().cloned());
            let combined_secs = start.elapsed().as_secs_f64();

            // Per-query baseline, measured to INDEP_CAP and extrapolated past
            // it (compiling 10,000 evaluators is exactly the cost the
            // combiner exists to avoid).
            let measured_n = n.min(INDEP_CAP);
            let (indep_counts, indep_secs) = filter_independent(&queries[..measured_n], &events);
            let estimated = measured_n < n;
            let indep_secs_scaled = indep_secs * n as f64 / measured_n as f64;

            // Equivalence spot-check over the measured slice: the combined
            // plan must deliver exactly as many results per query as the
            // query's own network.
            let by_name: std::collections::HashMap<&str, usize> = combined
                .set
                .ids()
                .iter()
                .map(|s| s.as_str())
                .zip(combined_counts.iter().copied())
                .collect();
            for ((name, _), independent) in queries[..measured_n].iter().zip(&indep_counts) {
                let shared = by_name.get(name.as_str()).copied().unwrap_or(usize::MAX);
                if shared != *independent {
                    eprintln!(
                        "MISMATCH [{profile} n={n}] {name}: combined delivered {shared}, independent {independent}"
                    );
                    mismatches += 1;
                }
            }

            // Boolean NFA filter, one matching() pass per document (the SDI
            // scenario: which documents match which profiles).
            let filter_secs = if filterable {
                let mut set = spex_baseline::FilterSet::new();
                for (name, q) in &queries {
                    set.add(name.clone(), q).expect("structure-only profile");
                }
                let start = Instant::now();
                let mut hits = 0usize;
                for doc in docs {
                    hits += set.matching(doc).len();
                }
                std::hint::black_box(hits);
                Some(start.elapsed().as_secs_f64())
            } else {
                None
            };

            let row = FilterRow {
                profile,
                queries: n,
                distinct: report.distinct,
                degree: report.degree,
                unshared_degree: report.unshared_degree,
                combined_ns: per_event(combined_secs),
                independent_ns: Some(per_event(indep_secs_scaled)),
                independent_estimated: estimated,
                filter_ns: filter_secs.map(per_event),
            };
            println!(
                "{:>17} {:>7} {:>9} {:>7} {:>9} {:>11.0} {:>9.0}{} {:>13}",
                row.profile,
                row.queries,
                row.distinct,
                row.degree,
                row.unshared_degree,
                row.combined_ns,
                row.independent_ns.unwrap(),
                if estimated { " est." } else { "     " },
                row.filter_ns
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "n/a".to_string()),
            );
            rows.push(row);
        }
    }
    println!(
        "(filter column is boolean match/no-match per document — the NFA baseline cannot \
         answer qualifier queries or extract fragments, the shared plan does both)"
    );

    // Sublinearity gate: growing the shared-prefix tenant set from 10 to
    // the sweep maximum must not grow per-event cost by more than 20x —
    // canonical dedup bounds live topology by the distinct-query pool, so
    // cost saturates where per-query compilation keeps growing linearly.
    let prefix_rows: Vec<&FilterRow> = rows
        .iter()
        .filter(|r| r.profile == "shared-prefix")
        .collect();
    let base = prefix_rows.first().expect("shared-prefix rows exist");
    let top = prefix_rows.last().expect("shared-prefix rows exist");
    let ratio = top.combined_ns / base.combined_ns;
    const GATE: f64 = 20.0;
    let gate_pass = ratio <= GATE;
    println!(
        "sublinearity: shared-prefix per-event {:.0} ns @ {} queries vs {:.0} ns @ {} queries — {:.2}x (gate {GATE}x): {}",
        top.combined_ns,
        top.queries,
        base.combined_ns,
        base.queries,
        ratio,
        if gate_pass { "PASS" } else { "FAIL" },
    );

    if json {
        let mut out = String::from("{\n  \"bench\": \"filter\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"profile\": \"{}\", \"queries\": {}, \"distinct\": {}, \"degree\": {}, \
                 \"unshared_degree\": {}, \"combined_ns_per_event\": {:.1}, \
                 \"independent_ns_per_event\": {}, \"independent_estimated\": {}, \
                 \"filter_ns_per_event\": {}}}{}\n",
                r.profile,
                r.queries,
                r.distinct,
                r.degree,
                r.unshared_degree,
                r.combined_ns,
                r.independent_ns
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "null".to_string()),
                r.independent_estimated,
                r.filter_ns
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "null".to_string()),
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"summary\": {{\"shared_prefix_ratio\": {ratio:.3}, \
             \"gate_max_ratio\": {GATE:.1}, \"mismatches\": {mismatches}, \"pass\": {}}}\n}}\n",
            gate_pass && mismatches == 0,
        ));
        std::fs::write(&out_path, out).expect("write BENCH_9.json");
        println!("wrote {out_path}");
    }
    if mismatches > 0 {
        eprintln!("filter-bench: {mismatches} combined-vs-independent count mismatch(es)");
        std::process::exit(1);
    }
    if !gate_pass {
        eprintln!("filter-bench: sublinearity gate failed ({ratio:.2}x > {GATE}x)");
        std::process::exit(1);
    }
}
