//! The VM ↔ network differential test rig.
//!
//! PR 6 lowers the transducer network into a flat bytecode [`spex_core::Plan`]
//! executed by [`spex_core::PlanRun`]; the interpreter network stays as the
//! semantic oracle. This module is the proof obligation: seeded random
//! documents × seeded random rpeq queries are evaluated by **both** engines
//! (plus the DOM baseline as an outside witness), and the first divergence in
//! delivered fragments, engine statistics, per-transducer statistics,
//! determination-latency histograms, or fault reports fails the run.
//!
//! Three layers of comparison:
//!
//! 1. **Clean streams** ([`diff_case`]) — byte-identical fragments, equal
//!    [`spex_core::EngineStats`] / [`spex_core::TransducerStats`], equal
//!    per-output determination-latency summaries, and a result count that
//!    matches the in-memory DOM evaluation.
//! 2. **Corrupted streams** ([`diff_fault_case`]) — every PR-2 fault
//!    [`crate::fault::Mutator`] × recovery policy must yield the same
//!    [`spex_core::RunReport`] (faults, truncation, delivered, quarantined)
//!    and the same surviving fragments on both engines.
//! 3. **Volume** ([`vm_diff`]) — the `harness vm-diff` subcommand and the CI
//!    `vm-diff-smoke` job drive thousands of seeded cases; any entry in
//!    [`DiffOutcome::divergences`] is a bug in the VM lowering.
//! 4. **Scanners** ([`scan_diff`]) — PR 10 adds a SWAR fast path to the XML
//!    reader; the same machinery compares the fast and classic scanners
//!    (clean stream + every mutator × both engines × both policies) so the
//!    byte-scanning optimization stays observationally invisible.
//!
//! Everything is deterministic per seed so a failing case replays exactly.

use crate::fault::{mutate, Mutator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_baseline::DomEvaluator;
use spex_core::{
    evaluate_recovering, CompiledNetwork, Engine, Evaluator, FragmentCollector, RecoveryOptions,
    ResourceLimits,
};
use spex_query::{Label, Rpeq};
use spex_trace::HistogramSummary;
use spex_xml::{Document, RecoveryPolicy, ScannerKind};

/// The closed label alphabet. Small on purpose: collisions between query
/// labels and document labels are what make random cases select anything.
const LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// Text snippets spliced between elements (entities included, so the
/// fault mutators always find something to corrupt).
const TEXTS: [&str; 4] = ["x", "some text", "a &amp; b", "42"];

fn gen_label(rng: &mut StdRng) -> Label {
    if rng.gen_bool(0.2) {
        Label::Wildcard
    } else {
        Label::name(LABELS[rng.gen_range(0..LABELS.len())])
    }
}

/// One leaf step. `in_qualifier` excludes `^label`: the compiler rejects
/// the preceding axis inside qualifiers (see `CompileError`).
fn gen_atom(rng: &mut StdRng, in_qualifier: bool) -> Rpeq {
    match rng.gen_range(0..12u32) {
        0..=5 => Rpeq::Step(gen_label(rng)),
        6..=7 => Rpeq::Plus(gen_label(rng)),
        8..=9 => Rpeq::Star(gen_label(rng)),
        10 => Rpeq::Following(gen_label(rng)),
        _ if in_qualifier => Rpeq::Step(gen_label(rng)),
        _ => Rpeq::Preceding(gen_label(rng)),
    }
}

/// One composite piece: an atom possibly qualified, unioned, or made
/// optional — the shapes the VM lowering has to get right (qualifier
/// sub-networks, Split/Join pairs, Union merges).
fn gen_piece(rng: &mut StdRng, depth: usize, in_qualifier: bool) -> Rpeq {
    let mut q = gen_atom(rng, in_qualifier);
    if depth == 0 {
        return q;
    }
    if rng.gen_bool(0.35) {
        // Qualifier bodies are full rpeqs: nested qualifiers, unions and
        // closures under them are all fair game.
        let body = gen_piece(rng, depth - 1, true);
        q = q.with_qualifier(body);
    }
    if rng.gen_bool(0.2) {
        q = q.or(gen_piece(rng, depth - 1, in_qualifier));
    }
    if rng.gen_bool(0.15) {
        q = q.optional();
    }
    q
}

/// A seeded random query: a short concatenation chain of composite pieces,
/// usually anchored with the paper's `_*` descendant prefix.
pub fn gen_query(rng: &mut StdRng) -> Rpeq {
    let mut q = if rng.gen_bool(0.6) {
        Rpeq::descend()
    } else {
        gen_piece(rng, 1, false)
    };
    for _ in 0..rng.gen_range(1..4usize) {
        q = q.then(gen_piece(rng, 2, false));
    }
    q
}

fn gen_element(rng: &mut StdRng, out: &mut String, depth: usize) {
    let label = LABELS[rng.gen_range(0..LABELS.len())];
    out.push('<');
    out.push_str(label);
    out.push('>');
    if depth > 0 {
        for _ in 0..rng.gen_range(0..4usize) {
            if rng.gen_bool(0.25) {
                out.push_str(TEXTS[rng.gen_range(0..TEXTS.len())]);
            } else {
                gen_element(rng, out, depth - 1);
            }
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

/// A seeded random well-formed document over the closed alphabet.
pub fn gen_document(rng: &mut StdRng) -> String {
    let mut out = String::new();
    let depth = rng.gen_range(2..6usize);
    gen_element(rng, &mut out, depth);
    out
}

/// What one engine produced on a clean stream.
struct EngineOutcome {
    fragments: Vec<String>,
    stats: spex_core::EngineStats,
    transducers: Vec<spex_core::TransducerStats>,
    latency: Vec<(usize, HistogramSummary)>,
}

fn run_engine(
    network: &CompiledNetwork,
    engine: Engine,
    xml: &str,
) -> Result<EngineOutcome, String> {
    let mut sink = FragmentCollector::new();
    let mut eval = Evaluator::with_engine(network, &mut sink, engine);
    eval.push_str(xml).map_err(|e| format!("{engine}: {e}"))?;
    let latency = eval
        .determination_latency()
        .iter()
        .map(|(id, h)| (*id, h.summary()))
        .collect();
    let (stats, transducers) = eval.finish_full();
    Ok(EngineOutcome {
        fragments: sink.into_fragments(),
        stats,
        transducers,
        latency,
    })
}

/// Run one clean-stream case through VM, network, and the DOM baseline.
/// Returns one human-readable line per divergence (empty = agreement).
pub fn diff_case(query: &Rpeq, xml: &str) -> Vec<String> {
    let mut divergences = Vec::new();
    let network = match CompiledNetwork::try_compile(query) {
        Ok(n) => n,
        Err(e) => return vec![format!("query failed to compile: {e}")],
    };
    let vm = run_engine(&network, Engine::Vm, xml);
    let net = run_engine(&network, Engine::Network, xml);
    let (vm, net) = match (vm, net) {
        (Ok(v), Ok(n)) => (v, n),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
            return vec![format!("one engine errored, the other did not: {e}")]
        }
        (Err(_), Err(_)) => return divergences, // both reject: agreement
    };
    if vm.fragments != net.fragments {
        divergences.push(format!(
            "fragments diverge: vm delivered {:?}, network {:?}",
            vm.fragments, net.fragments
        ));
    }
    if vm.stats != net.stats {
        divergences.push(format!(
            "engine stats diverge: vm {:?}, network {:?}",
            vm.stats, net.stats
        ));
    }
    if vm.transducers != net.transducers {
        divergences.push("per-transducer stats diverge".to_string());
    }
    if vm.latency != net.latency {
        divergences.push(format!(
            "determination-latency histograms diverge: vm {:?}, network {:?}",
            vm.latency, net.latency
        ));
    }
    // Outside witness: the in-memory DOM evaluation must select the same
    // number of nodes as the streamed run delivered fragments. Skipped when
    // a following step sits inside a qualifier body: the streamed engine
    // determines qualifier conditions when the candidate's subtree closes,
    // so a `[~l]` condition satisfiable only by later stream content is
    // decided false, while the DOM evaluates it over the whole document.
    // Both engines implement the streamed semantics identically (the
    // comparison above still covers these queries); the witness is only
    // meaningful where the two models agree.
    if !following_in_qualifier(query) {
        check_dom_witness(query, xml, &vm.fragments, &mut divergences);
    }
    divergences
}

/// Does a `~label` step occur anywhere inside a qualifier body?
fn following_in_qualifier(query: &Rpeq) -> bool {
    fn go(q: &Rpeq, in_qualifier: bool) -> bool {
        match q {
            Rpeq::Following(_) => in_qualifier,
            Rpeq::Empty | Rpeq::Step(_) | Rpeq::Plus(_) | Rpeq::Star(_) | Rpeq::Preceding(_) => {
                false
            }
            Rpeq::Union(a, b) | Rpeq::Concat(a, b) => go(a, in_qualifier) || go(b, in_qualifier),
            Rpeq::Optional(a) => go(a, in_qualifier),
            Rpeq::Qualified(a, qual) => go(a, in_qualifier) || go(qual, true),
        }
    }
    go(query, false)
}

fn check_dom_witness(query: &Rpeq, xml: &str, fragments: &[String], divergences: &mut Vec<String>) {
    if let Ok(events) = spex_xml::reader::parse_events(xml) {
        if let Ok(doc) = Document::from_events(events) {
            let dom = DomEvaluator::new(&doc).evaluate(query).len();
            if dom != fragments.len() {
                divergences.push(format!(
                    "DOM oracle selected {dom} node(s), vm delivered {}",
                    fragments.len()
                ));
            }
        }
    }
}

/// What one engine produced on a corrupted stream under a recovery policy.
struct FaultOutcome {
    fragments: Vec<String>,
    report: spex_core::RunReport,
}

fn run_fault_engine(
    network: &CompiledNetwork,
    engine: Engine,
    policy: RecoveryPolicy,
    scanner: ScannerKind,
    xml: &str,
) -> Result<FaultOutcome, String> {
    let mut collector = FragmentCollector::new();
    let options = RecoveryOptions {
        policy,
        engine,
        scanner,
        ..RecoveryOptions::default()
    };
    let report = evaluate_recovering(
        network,
        std::io::Cursor::new(xml.as_bytes().to_vec()),
        options,
        ResourceLimits::default(),
        &mut collector,
    )
    .map_err(|e| format!("{engine}/{policy}: {e}"))?;
    Ok(FaultOutcome {
        fragments: collector.into_fragments(),
        report,
    })
}

/// Run every PR-2 fault mutator × recovery policy over `xml`, comparing the
/// VM and network recovery pipelines end to end: surviving fragments (the
/// quarantine sets), fault lists, truncation flags, delivered/dropped counts
/// and engine statistics must all be identical.
pub fn diff_fault_case(query: &Rpeq, xml: &str, seed: u64) -> Vec<String> {
    let mut divergences = Vec::new();
    let network = match CompiledNetwork::try_compile(query) {
        Ok(n) => n,
        Err(e) => return vec![format!("query failed to compile: {e}")],
    };
    for mutator in Mutator::ALL {
        let mutation = mutate(xml, mutator, seed);
        if !mutation.changed {
            continue;
        }
        for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
            let vm = run_fault_engine(
                &network,
                Engine::Vm,
                policy,
                ScannerKind::default(),
                &mutation.xml,
            );
            let net = run_fault_engine(
                &network,
                Engine::Network,
                policy,
                ScannerKind::default(),
                &mutation.xml,
            );
            let (vm, net) = match (vm, net) {
                (Ok(v), Ok(n)) => (v, n),
                (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
                    divergences.push(format!(
                        "{mutator}: one engine errored, the other did not: {e}"
                    ));
                    continue;
                }
                (Err(_), Err(_)) => continue,
            };
            if vm.fragments != net.fragments {
                divergences.push(format!(
                    "{mutator}/{policy}: surviving fragments diverge: vm {:?}, network {:?}",
                    vm.fragments, net.fragments
                ));
            }
            let (v, n) = (&vm.report, &net.report);
            if (v.results, v.dropped, v.truncated) != (n.results, n.dropped, n.truncated) {
                divergences.push(format!(
                    "{mutator}/{policy}: report counts diverge: vm ({}, {}, {}), \
                     network ({}, {}, {})",
                    v.results, v.dropped, v.truncated, n.results, n.dropped, n.truncated
                ));
            }
            if format!("{:?}", v.faults) != format!("{:?}", n.faults) {
                divergences.push(format!("{mutator}/{policy}: fault lists diverge"));
            }
            if format!("{:?}", v.exhausted) != format!("{:?}", n.exhausted) {
                divergences.push(format!("{mutator}/{policy}: exhaustion reports diverge"));
            }
            if v.stats != n.stats || v.transducers != n.transducers {
                divergences.push(format!("{mutator}/{policy}: engine statistics diverge"));
            }
        }
    }
    divergences
}

/// Aggregate outcome of a [`vm_diff`] sweep.
#[derive(Debug, Clone, Default)]
pub struct DiffOutcome {
    /// Clean-stream cases compared.
    pub cases: usize,
    /// Corrupted-stream (mutator × policy pair) comparisons run.
    pub fault_comparisons: usize,
    /// Fragments delivered (and agreed on) across all clean cases.
    pub fragments: usize,
    /// Clean cases that selected at least one node.
    pub selecting_cases: usize,
    /// Every divergence found; must be empty.
    pub divergences: Vec<String>,
}

/// The rig's top-level driver: `cases` seeded random (document, query)
/// pairs through [`diff_case`], plus `fault_rounds` seeds of
/// [`diff_fault_case`] per pair. Deterministic per `seed`.
pub fn vm_diff(cases: usize, seed: u64, fault_rounds: usize) -> DiffOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcome = DiffOutcome::default();
    for i in 0..cases {
        let query = gen_query(&mut rng);
        let xml = gen_document(&mut rng);
        let label = format!("case {i} (seed {seed}, query `{query}`)");
        outcome.cases += 1;
        let clean = diff_case(&query, &xml);
        if clean.is_empty() {
            let n = count_results(&query, &xml);
            outcome.fragments += n;
            if n > 0 {
                outcome.selecting_cases += 1;
            }
        }
        for d in clean {
            outcome
                .divergences
                .push(format!("{label}: {d} [doc: {xml}]"));
        }
        for round in 0..fault_rounds {
            let fault_seed = seed
                .wrapping_add(i as u64)
                .wrapping_mul(7919)
                .wrapping_add(round as u64);
            outcome.fault_comparisons += Mutator::ALL.len();
            for d in diff_fault_case(&query, &xml, fault_seed) {
                outcome
                    .divergences
                    .push(format!("{label} fault seed {fault_seed}: {d} [doc: {xml}]"));
            }
        }
    }
    outcome
}

/// Compare the fast (SWAR) and classic scanners end to end through the full
/// recovery pipeline: the clean document plus every PR-2 fault mutator, ×
/// both engines × both recovery policies. The surviving fragments (the
/// quarantine sets), fault lists, truncation flags, delivered/dropped counts
/// and engine statistics must be byte-identical — the fast path is only an
/// optimization if nobody can observe it.
pub fn scan_diff_case(query: &Rpeq, xml: &str, seed: u64) -> Vec<String> {
    let mut divergences = Vec::new();
    let network = match CompiledNetwork::try_compile(query) {
        Ok(n) => n,
        Err(e) => return vec![format!("query failed to compile: {e}")],
    };
    let mut streams: Vec<(String, String)> = vec![("clean".to_string(), xml.to_string())];
    for mutator in Mutator::ALL {
        let mutation = mutate(xml, mutator, seed);
        if mutation.changed {
            streams.push((mutator.to_string(), mutation.xml));
        }
    }
    for (label, stream) in &streams {
        for engine in [Engine::Vm, Engine::Network] {
            for policy in [RecoveryPolicy::Repair, RecoveryPolicy::SkipSubtree] {
                let fast = run_fault_engine(&network, engine, policy, ScannerKind::Fast, stream);
                let classic =
                    run_fault_engine(&network, engine, policy, ScannerKind::Classic, stream);
                let (fast, classic) = match (fast, classic) {
                    (Ok(f), Ok(c)) => (f, c),
                    (Err(e), Ok(_)) => {
                        divergences.push(format!(
                            "{label}/{engine}/{policy}: fast scanner errored, classic did not: {e}"
                        ));
                        continue;
                    }
                    (Ok(_), Err(e)) => {
                        divergences.push(format!(
                            "{label}/{engine}/{policy}: classic scanner errored, fast did not: {e}"
                        ));
                        continue;
                    }
                    (Err(ef), Err(ec)) => {
                        if ef != ec {
                            divergences.push(format!(
                                "{label}/{engine}/{policy}: error texts diverge: \
                                 fast `{ef}`, classic `{ec}`"
                            ));
                        }
                        continue;
                    }
                };
                if fast.fragments != classic.fragments {
                    divergences.push(format!(
                        "{label}/{engine}/{policy}: fragments diverge: fast {:?}, classic {:?}",
                        fast.fragments, classic.fragments
                    ));
                }
                let (f, c) = (&fast.report, &classic.report);
                if (f.results, f.dropped, f.truncated) != (c.results, c.dropped, c.truncated) {
                    divergences.push(format!(
                        "{label}/{engine}/{policy}: report counts diverge: fast ({}, {}, {}), \
                         classic ({}, {}, {})",
                        f.results, f.dropped, f.truncated, c.results, c.dropped, c.truncated
                    ));
                }
                if format!("{:?}", f.faults) != format!("{:?}", c.faults) {
                    divergences.push(format!(
                        "{label}/{engine}/{policy}: fault lists diverge: fast {:?}, classic {:?}",
                        f.faults, c.faults
                    ));
                }
                if format!("{:?}", f.exhausted) != format!("{:?}", c.exhausted) {
                    divergences.push(format!(
                        "{label}/{engine}/{policy}: exhaustion reports diverge"
                    ));
                }
                if f.stats != c.stats || f.transducers != c.transducers {
                    divergences.push(format!(
                        "{label}/{engine}/{policy}: engine statistics diverge"
                    ));
                }
            }
        }
    }
    divergences
}

/// The scanner rig's top-level driver, mirroring [`vm_diff`]: `cases` seeded
/// random (document, query) pairs, each compared fast-vs-classic on the clean
/// stream and under `fault_rounds` seeds of every fault mutator.
/// Deterministic per `seed`.
pub fn scan_diff(cases: usize, seed: u64, fault_rounds: usize) -> DiffOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcome = DiffOutcome::default();
    for i in 0..cases {
        let query = gen_query(&mut rng);
        let xml = gen_document(&mut rng);
        let label = format!("case {i} (seed {seed}, query `{query}`)");
        outcome.cases += 1;
        let n = count_results(&query, &xml);
        outcome.fragments += n;
        if n > 0 {
            outcome.selecting_cases += 1;
        }
        for round in 0..fault_rounds.max(1) {
            let fault_seed = seed
                .wrapping_add(i as u64)
                .wrapping_mul(6361)
                .wrapping_add(round as u64);
            outcome.fault_comparisons += Mutator::ALL.len() + 1;
            for d in scan_diff_case(&query, &xml, fault_seed) {
                outcome
                    .divergences
                    .push(format!("{label} fault seed {fault_seed}: {d} [doc: {xml}]"));
            }
        }
    }
    outcome
}

fn count_results(query: &Rpeq, xml: &str) -> usize {
    spex_core::evaluate_str(&query.to_string(), xml)
        .map(|f| f.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let q1 = gen_query(&mut StdRng::seed_from_u64(9));
        let q2 = gen_query(&mut StdRng::seed_from_u64(9));
        assert_eq!(q1, q2);
        let d1 = gen_document(&mut StdRng::seed_from_u64(9));
        let d2 = gen_document(&mut StdRng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    fn generated_queries_compile_and_documents_parse() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let q = gen_query(&mut rng);
            CompiledNetwork::try_compile(&q)
                .unwrap_or_else(|e| panic!("generated query `{q}` rejected: {e}"));
            let doc = gen_document(&mut rng);
            spex_xml::reader::parse_events(&doc)
                .unwrap_or_else(|e| panic!("generated document failed to parse: {e}\n{doc}"));
        }
    }

    #[test]
    fn paper_examples_have_no_divergence() {
        let xml = "<a><a><c/></a><b/><c/></a>";
        for q in [
            "a.c",
            "a+.c+",
            "_*.a[b].c",
            "a[b|c].c?",
            "_*.a[b[c]]",
            "^a",
            "~b",
        ] {
            let query: Rpeq = q.parse().unwrap();
            let d = diff_case(&query, xml);
            assert!(d.is_empty(), "query {q}: {d:?}");
        }
    }

    #[test]
    fn fault_equivalence_on_a_small_document() {
        let xml = "<r><a><b>x</b></a><c><d/>t</c><a><b>y</b></a></r>";
        for q in ["r.a.b", "_*.c[d]", "_*.a[b].b"] {
            let query: Rpeq = q.parse().unwrap();
            let d = diff_fault_case(&query, xml, 77);
            assert!(d.is_empty(), "query {q}: {d:?}");
        }
    }

    #[test]
    fn scanner_equivalence_on_paper_examples() {
        let xml = "<a><a><c/></a><b/><c/></a>";
        for q in ["a.c", "_*.a[b].c", "a[b|c].c?"] {
            let query: Rpeq = q.parse().unwrap();
            let d = scan_diff_case(&query, xml, 31);
            assert!(d.is_empty(), "query {q}: {d:?}");
        }
    }

    #[test]
    fn scan_sweep_is_divergence_free() {
        let outcome = scan_diff(25, 0x5ca7, 1);
        assert_eq!(outcome.cases, 25);
        assert!(outcome.fault_comparisons > 0);
        assert!(
            outcome.divergences.is_empty(),
            "divergences: {:#?}",
            outcome.divergences
        );
    }

    #[test]
    fn small_sweep_is_divergence_free() {
        let outcome = vm_diff(40, 0xd1ff, 1);
        assert_eq!(outcome.cases, 40);
        assert!(outcome.fault_comparisons > 0);
        assert!(
            outcome.divergences.is_empty(),
            "divergences: {:#?}",
            outcome.divergences
        );
        // The alphabet is closed, so a healthy fraction of random cases
        // must actually select something — otherwise the rig tests nothing.
        assert!(
            outcome.selecting_cases >= 5,
            "only {} of 40 cases selected anything",
            outcome.selecting_cases
        );
    }
}
