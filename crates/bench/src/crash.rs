//! The crash-diff rig: restart-transparency as a proof obligation.
//!
//! PR 7 adds durable sessions — document-boundary snapshots
//! ([`spex_core::Snapshot`]) plus a write-ahead input log
//! ([`spex_serve::SessionLog`]) — with the claim that a killed run, once
//! restored, continues **byte-identically**: same fragments, same engine
//! statistics, same fault reports, same determination-latency histograms.
//! This module turns that claim into a seeded differential test, the same
//! way [`crate::diff`] proves the VM lowering against the interpreter.
//!
//! One case is a random query over a random multi-document stream,
//! evaluated three ways per engine:
//!
//! 1. **Baseline** — an uninterrupted run that also captures a snapshot at
//!    every `</$>` boundary (exactly what `--checkpoint` and the server's
//!    durable sessions do), recording how many fragments were delivered at
//!    each.
//! 2. **Kill + resume** — a random kill byte offset selects the latest
//!    snapshot at or before it; a **fresh** run restores that snapshot and
//!    consumes only the remaining input. Baseline-prefix + resumed output
//!    must equal the uninterrupted output, and final statistics, fault
//!    lists and latency histograms must be *exactly* the baseline's.
//! 3. **Corruption** — snapshot bytes with bit flips or truncations must
//!    fail decoding with a structured [`spex_core::SnapshotError`] (never a
//!    panic), and a WAL segment torn mid-record must recover to the
//!    longest valid prefix.
//!
//! Every policy (`strict`, `repair`, `skip-subtree`) runs on both engines;
//! recovery policies run over mutated (damaged) streams so quarantine sets
//! and damage intervals cross the snapshot too.

use crate::diff::{gen_document, gen_query};
use crate::fault::{mutate, Mutator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spex_core::{
    CompiledNetwork, Engine, Evaluator, FragmentFnSink, Quarantine, ResourceLimits, ResultSink,
    SessionState, Snapshot, TruncationOutcome,
};
use spex_trace::HistogramSummary;
use spex_xml::{Fault, Reader, RecoveryPolicy};
use std::cell::RefCell;
use std::rc::Rc;

/// A [`Quarantine`] behind `Rc<RefCell>` so the checkpoint hook can export
/// its fragments while the evaluator holds the sink borrow (mirrors the
/// server's durable session wiring).
struct SharedQuarantine(Rc<RefCell<Quarantine>>);

impl ResultSink for SharedQuarantine {
    fn begin(&mut self, meta: spex_core::ResultMeta, now: u64) {
        self.0.borrow_mut().begin(meta, now);
    }
    fn event(&mut self, event: &spex_xml::RawEvent<'_>, now: u64) {
        self.0.borrow_mut().event(event, now);
    }
    fn end(&mut self, now: u64) {
        self.0.borrow_mut().end(now);
    }
}

/// A snapshot captured at one document boundary of a baseline run.
struct CheckpointAt {
    /// Input byte offset of the boundary (`position.offset`).
    offset: u64,
    /// Fragments delivered before this boundary (strict mode; recovery
    /// delivers only at end of run, so always 0 there).
    delivered: usize,
    snapshot: Snapshot,
}

/// Everything one (engine, policy) run produced, plus its checkpoints.
struct RunResult {
    checkpoints: Vec<CheckpointAt>,
    fragments: Vec<String>,
    /// Debug-formatted final fault list (recovery policies).
    faults: String,
    stats: spex_core::EngineStats,
    transducers: Vec<spex_core::TransducerStats>,
    latency: Vec<(usize, HistogramSummary)>,
}

type BoxedSink<'a> = FragmentFnSink<Box<dyn FnMut(&[u8]) + 'a>>;

fn collecting_sink(store: &Rc<RefCell<Vec<String>>>) -> BoxedSink<'static> {
    let store = Rc::clone(store);
    FragmentFnSink::new(Box::new(move |fragment: &[u8]| {
        store
            .borrow_mut()
            .push(String::from_utf8_lossy(fragment).into_owned());
    }))
}

/// Drive one run to completion: from scratch (`resume == None`) or from a
/// restored snapshot consuming only the input after its boundary. When
/// `checkpoint` is set, a snapshot is captured at every `</$>` — exactly
/// the durable layer's write path, minus the disk.
fn drive(
    network: &CompiledNetwork,
    engine: Engine,
    policy: RecoveryPolicy,
    xml: &str,
    resume: Option<&Snapshot>,
    checkpoint: bool,
) -> Result<RunResult, String> {
    let recovering = policy != RecoveryPolicy::Strict;
    let session = resume.and_then(|s| s.session.clone()).unwrap_or_default();
    let prior_faults: Vec<Fault> = session.faults.clone();

    let source = std::io::Cursor::new(xml.as_bytes()[session.position.offset as usize..].to_vec());
    let mut reader = Reader::new(source).multi_document();
    if recovering {
        reader = reader.with_recovery(policy);
    }
    if resume.is_some() {
        reader = reader.resume_at(
            session.reader_emitted,
            session.position,
            session.lt_consumed,
        );
    }

    let fragments: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let quarantine = Rc::new(RefCell::new(Quarantine::new()));
    if recovering {
        if let Some(frags) = session.quarantines.first() {
            quarantine.borrow_mut().import_fragments(frags.clone());
        }
    }
    let mut stream_sink;
    let mut quarantine_sink;
    let sink: &mut dyn ResultSink = if recovering {
        quarantine_sink = SharedQuarantine(Rc::clone(&quarantine));
        &mut quarantine_sink
    } else {
        stream_sink = collecting_sink(&fragments);
        &mut stream_sink
    };

    let mut eval = Evaluator::with_engine_limits(network, sink, engine, ResourceLimits::default());
    if let Some(snap) = resume {
        eval.restore(snap)
            .map_err(|e| format!("{engine}/{policy}: restore failed: {e}"))?;
    }

    let mut documents = session.documents;
    let mut checkpoints = Vec::new();
    loop {
        match eval.push_step(&mut reader) {
            Ok(Some(true)) => {
                documents += 1;
                eval.reset_session();
                if checkpoint {
                    let mut snap = eval
                        .checkpoint()
                        .map_err(|e| format!("{engine}/{policy}: checkpoint failed: {e}"))?;
                    let (reader_emitted, position, lt_consumed) = reader.resume_point();
                    let mut faults = prior_faults.clone();
                    faults.extend(reader.faults().iter().cloned());
                    snap.session = Some(SessionState {
                        faults,
                        quarantines: vec![quarantine.borrow().export_fragments()],
                        delivered: vec![fragments.borrow().len() as u64],
                        reader_emitted,
                        position,
                        lt_consumed,
                        documents,
                    });
                    checkpoints.push(CheckpointAt {
                        offset: position.offset,
                        delivered: fragments.borrow().len(),
                        snapshot: snap,
                    });
                }
            }
            Ok(Some(false)) => {}
            Ok(None) => break,
            Err(e) => return Err(format!("{engine}/{policy}: {e}")),
        }
    }

    let mut all_faults = prior_faults;
    all_faults.extend(reader.take_faults());
    if recovering {
        let mut out = collecting_sink(&fragments);
        quarantine
            .borrow_mut()
            .drain_into(&all_faults, TruncationOutcome::Drop, &mut out);
    }
    let latency = eval
        .determination_latency()
        .iter()
        .map(|(id, h)| (*id, h.summary()))
        .collect();
    let (stats, transducers) = eval.finish_full();
    let fragments = fragments.borrow().clone();
    Ok(RunResult {
        checkpoints,
        fragments,
        faults: format!("{all_faults:?}"),
        stats,
        transducers,
        latency,
    })
}

/// Aggregate outcome of a [`crash_diff`] sweep.
#[derive(Debug, Clone, Default)]
pub struct CrashOutcome {
    /// (query, stream) cases generated.
    pub cases: usize,
    /// Seeded kill-points exercised (case × policy × kill offset).
    pub kills: usize,
    /// Restore-and-continue runs driven (two engines per kill-point).
    pub resumed_runs: usize,
    /// Kill-points that resumed from a real snapshot (not a from-scratch
    /// rerun because the kill landed before the first boundary).
    pub snapshot_resumes: usize,
    /// Corrupt-snapshot decode attempts + torn-WAL recoveries checked.
    pub corruption_checks: usize,
    /// Every restart-transparency violation found; must be empty.
    pub divergences: Vec<String>,
}

const POLICIES: [RecoveryPolicy; 3] = [
    RecoveryPolicy::Strict,
    RecoveryPolicy::Repair,
    RecoveryPolicy::SkipSubtree,
];

/// The rig's top-level driver: `cases` seeded random (multi-document
/// stream, query) pairs; per case and per recovery policy, both engines
/// run an uninterrupted checkpointing baseline, then `kills` random kill
/// offsets each restore the latest preceding snapshot into a fresh run and
/// the continuation is compared against the baseline. Deterministic per
/// `seed`.
pub fn crash_diff(cases: usize, seed: u64, kills: usize) -> CrashOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = CrashOutcome::default();
    for i in 0..cases {
        let query = gen_query(&mut rng);
        let ndocs = rng.gen_range(2..5usize);
        let clean: String = (0..ndocs).map(|_| gen_document(&mut rng)).collect();
        let network = match CompiledNetwork::try_compile(&query) {
            Ok(n) => n,
            Err(_) => continue,
        };
        out.cases += 1;
        for policy in POLICIES {
            // Recovery policies run over damaged streams, so the snapshot
            // has to carry fault lists and quarantined fragments across
            // the restart, not just engine state.
            let xml = if policy == RecoveryPolicy::Strict {
                clean.clone()
            } else {
                let mutator = Mutator::ALL[rng.gen_range(0..Mutator::ALL.len())];
                mutate(&clean, mutator, rng.gen()).xml
            };
            let label = format!("case {i} (seed {seed}, query `{query}`, {policy})");
            let vm = drive(&network, Engine::Vm, policy, &xml, None, true);
            let net = drive(&network, Engine::Network, policy, &xml, None, true);
            let baselines = match (vm, net) {
                (Ok(v), Ok(n)) => [(Engine::Vm, v), (Engine::Network, n)],
                (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
                    out.divergences
                        .push(format!("{label}: one engine errored: {e} [doc: {xml}]"));
                    continue;
                }
                // Both engines reject the stream the same way (e.g. strict
                // over rare still-malformed repairs): agreement, no resume
                // to test.
                (Err(_), Err(_)) => continue,
            };
            if xml.len() < 2 {
                continue;
            }
            for _ in 0..kills {
                let cut = rng.gen_range(1..xml.len() as u64);
                out.kills += 1;
                for (engine, base) in &baselines {
                    let ckpt = base.checkpoints.iter().rev().find(|c| c.offset <= cut);
                    if ckpt.is_some() {
                        out.snapshot_resumes += 1;
                    }
                    out.resumed_runs += 1;
                    let resumed = match drive(
                        &network,
                        *engine,
                        policy,
                        &xml,
                        ckpt.map(|c| &c.snapshot),
                        false,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            out.divergences.push(format!(
                                "{label}: {engine} resume after kill@{cut} errored: {e} [doc: {xml}]"
                            ));
                            continue;
                        }
                    };
                    let delivered = ckpt.map_or(0, |c| c.delivered);
                    if resumed.fragments[..] != base.fragments[delivered..] {
                        out.divergences.push(format!(
                            "{label}: {engine} kill@{cut}: continuation fragments diverge: \
                             resumed {:?}, baseline tail {:?} [doc: {xml}]",
                            resumed.fragments,
                            &base.fragments[delivered..]
                        ));
                    }
                    if resumed.stats != base.stats {
                        out.divergences.push(format!(
                            "{label}: {engine} kill@{cut}: final stats diverge: \
                             resumed {:?}, baseline {:?} [doc: {xml}]",
                            resumed.stats, base.stats
                        ));
                    }
                    if resumed.transducers != base.transducers {
                        out.divergences.push(format!(
                            "{label}: {engine} kill@{cut}: per-transducer stats diverge [doc: {xml}]"
                        ));
                    }
                    if resumed.latency != base.latency {
                        out.divergences.push(format!(
                            "{label}: {engine} kill@{cut}: determination-latency diverges: \
                             resumed {:?}, baseline {:?} [doc: {xml}]",
                            resumed.latency, base.latency
                        ));
                    }
                    if resumed.faults != base.faults {
                        out.divergences.push(format!(
                            "{label}: {engine} kill@{cut}: fault reports diverge: \
                             resumed {}, baseline {} [doc: {xml}]",
                            resumed.faults, base.faults
                        ));
                    }
                }
            }
            // Corruption leg: snapshot bytes with a random bit flip or
            // truncation must fail decoding with a structured error.
            if let Some(ckpt) = baselines[0].1.checkpoints.first() {
                let bytes = ckpt.snapshot.encode();
                for _ in 0..4 {
                    let mut bad = bytes.clone();
                    let bit = rng.gen_range(0..bad.len() * 8);
                    bad[bit / 8] ^= 1 << (bit % 8);
                    out.corruption_checks += 1;
                    if Snapshot::decode(&bad).is_ok() {
                        out.divergences.push(format!(
                            "{label}: flipped bit {bit} of the snapshot decoded successfully"
                        ));
                    }
                    let cut = rng.gen_range(0..bytes.len());
                    out.corruption_checks += 1;
                    if Snapshot::decode(&bytes[..cut]).is_ok() {
                        out.divergences.push(format!(
                            "{label}: snapshot truncated to {cut} bytes decoded successfully"
                        ));
                    }
                }
            }
        }
        // Torn-WAL leg: a session log whose active segment is cut
        // mid-record must recover exactly the longest valid prefix.
        if i % 16 == 0 {
            out.corruption_checks += 1;
            if let Err(e) = torn_wal_check(&clean, &mut rng) {
                out.divergences
                    .push(format!("case {i} (seed {seed}): torn WAL: {e}"));
            }
        }
    }
    out
}

/// Write the stream into a durable session WAL, tear the final segment at
/// a random byte, and verify recovery returns the longest intact record
/// prefix (a prefix of the input, ending at a record boundary).
fn torn_wal_check(xml: &str, rng: &mut StdRng) -> Result<(), String> {
    use spex_serve::{FsyncPolicy, SessionLog};
    let dir = std::env::temp_dir().join(format!(
        "spex-crash-wal-{}-{}",
        std::process::id(),
        rng.gen::<u64>()
    ));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let token = "s0-torn";
    let queries = [("q".to_string(), "a".to_string())];
    let mut log =
        SessionLog::create(&dir, token, &queries, FsyncPolicy::Never).map_err(|e| e.to_string())?;
    // Several records so a torn tail still leaves intact ones.
    for chunk in xml.as_bytes().chunks(16.max(xml.len() / 8)) {
        log.append_data(chunk).map_err(|e| e.to_string())?;
    }
    drop(log);
    // Tear the (single) segment at a random byte.
    let seg_dir = dir.join(token);
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&seg_dir)
        .map_err(|e| e.to_string())?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    segments.sort();
    let seg = segments.last().ok_or("no WAL segment written")?;
    let len = std::fs::metadata(seg).map_err(|e| e.to_string())?.len();
    let torn = rng.gen_range(0..len);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(seg)
        .map_err(|e| e.to_string())?;
    file.set_len(torn).map_err(|e| e.to_string())?;
    drop(file);
    let recovered = spex_serve::durable::recover(&dir, token)
        .map_err(|e| format!("recover errored on a torn tail: {e}"))?
        .ok_or("recover lost the whole session")?;
    let _ = std::fs::remove_dir_all(&dir);
    if !xml.as_bytes().starts_with(&recovered.wal) {
        return Err(format!(
            "recovered WAL ({} bytes) is not a prefix of the input ({} bytes)",
            recovered.wal.len(),
            xml.len()
        ));
    }
    Ok(())
}

/// The process-level smoke: SIGKILL a real `spex serve --durable-dir`
/// mid-stream, restart it, resume by token, and require the concatenated
/// client-side output byte-identical to the one-shot CLI over the same
/// input. This is the end of the proof chain that [`crash_diff`] starts
/// in-process: same contract, now across an actual process death.
///
/// `spex` is the path to the CLI binary (the harness defaults to its own
/// sibling `spex` in `target/release`).
pub fn crash_smoke(spex: &std::path::Path) -> Result<String, String> {
    use spex_serve::{split_result, Client, FrameKind};
    use std::io::{BufRead, Write};

    let dir = std::env::temp_dir().join(format!("spex-crash-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let dir_arg = dir.to_str().ok_or("non-UTF-8 temp dir")?.to_string();

    /// Start `spex serve` on a free port and parse the bound address from
    /// its "listening on" banner.
    fn spawn_server(
        spex: &std::path::Path,
        dir: &str,
    ) -> Result<(std::process::Child, String), String> {
        let mut child = std::process::Command::new(spex)
            .args(["serve", "--addr", "127.0.0.1:0", "--durable-dir", dir])
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning {}: {e}", spex.display()))?;
        let stderr = child.stderr.take().ok_or("no stderr pipe")?;
        let mut lines = std::io::BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .ok_or("server exited before its listening banner")?
                .map_err(|e| e.to_string())?;
            if let Some(addr) = line
                .rsplit("listening on ")
                .next()
                .filter(|_| line.contains("listening on "))
            {
                break addr.trim().to_string();
            }
        };
        // Keep draining stderr so the server never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Ok((child, addr))
    }

    let doc1: &[u8] = b"<r><x>one</x></r>";
    let doc2: &[u8] = b"<r><x>two</x><x>three</x></r>";
    let full: Vec<u8> = [doc1, doc2].concat();
    let cut = doc1.len() + 13; // mid-document: after "<r><x>two</x>"

    // --- Life one: stream past the first document boundary, then die. ----
    let (mut server, addr) = spawn_server(spex, &dir_arg)?;
    let mut a = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    a.register("q", "r.x").map_err(|e| e.to_string())?;
    let ack = a.next_frame().map_err(|e| e.to_string())?;
    if ack.map(|f| f.kind) != Some(FrameKind::Ok) {
        return Err("registration was not acknowledged".into());
    }
    a.send_xml(&full[..doc1.len()]).map_err(|e| e.to_string())?;
    a.send_xml(&full[doc1.len()..cut])
        .map_err(|e| e.to_string())?;
    // Wait for the token and both early fragments: fragment two comes from
    // document two, so the document-one checkpoint has deterministically
    // been written (and, under the default fsync policy, synced) by then.
    let mut token = None;
    let mut received = 0u64;
    let mut output = Vec::new();
    while token.is_none() || received < 2 {
        let frame = a
            .next_frame()
            .map_err(|e| e.to_string())?
            .ok_or("server hung up before the kill point")?;
        match frame.kind {
            FrameKind::Ok => {
                let ack = String::from_utf8_lossy(&frame.payload).into_owned();
                token = ack.strip_prefix("session=").map(str::to_string);
            }
            FrameKind::Result => {
                let (name, fragment) =
                    split_result(&frame.payload).ok_or("malformed result frame")?;
                if name != "q" {
                    return Err(format!("fragment for unknown query `{name}`"));
                }
                received += 1;
                output.extend_from_slice(fragment);
            }
            other => return Err(format!("unexpected pre-kill frame {other:?}")),
        }
    }
    let token = token.ok_or("no session token ack")?;
    server.kill().map_err(|e| format!("SIGKILL: {e}"))?; // SIGKILL on unix
    let status = server.wait().map_err(|e| e.to_string())?;
    if status.success() {
        return Err("server exited cleanly despite SIGKILL".into());
    }
    drop(a);

    // --- Life two: restart over the same durable root and resume. --------
    let (mut server, addr) = spawn_server(spex, &dir_arg)?;
    let mut b = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    b.register("q", "r.x").map_err(|e| e.to_string())?;
    let ack = b.next_frame().map_err(|e| e.to_string())?;
    if ack.map(|f| f.kind) != Some(FrameKind::Ok) {
        return Err("re-registration was not acknowledged".into());
    }
    b.resume(&token, &[received]).map_err(|e| e.to_string())?;
    // RESUME-OK arrives before any replayed results and tells us where the
    // durable input ends; the kill may have cost the unsynced WAL tail, so
    // the client continues from the server's count, not its own.
    let frame = b
        .next_frame()
        .map_err(|e| e.to_string())?
        .ok_or("server hung up instead of answering the resume")?;
    if frame.kind != FrameKind::ResumeOk {
        return Err(format!(
            "expected RESUME-OK, got {:?} ({})",
            frame.kind,
            String::from_utf8_lossy(&frame.payload)
        ));
    }
    let durable = u64::from_be_bytes(
        frame.payload[..]
            .try_into()
            .map_err(|_| "RESUME-OK payload is not a u64")?,
    ) as usize;
    if durable < doc1.len() || durable > full.len() {
        return Err(format!(
            "durable byte count {durable} outside [{}, {}]",
            doc1.len(),
            full.len()
        ));
    }
    b.send_xml(&full[durable..]).map_err(|e| e.to_string())?;
    b.end().map_err(|e| e.to_string())?;
    let t = b.drain().map_err(|e| e.to_string())?;
    if !t.clean_end || !t.errors.is_empty() {
        return Err(format!(
            "resumed session failed (clean_end={}, errors={:?})",
            t.clean_end, t.errors
        ));
    }
    output.extend_from_slice(&t.output_of("q"));

    // --- Oracle: the one-shot CLI over the uninterrupted stream. ----------
    let mut oneshot = std::process::Command::new(spex)
        .args(["--stream", "r.x"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawning one-shot {}: {e}", spex.display()))?;
    oneshot
        .stdin
        .take()
        .ok_or("no stdin pipe")?
        .write_all(&full)
        .map_err(|e| e.to_string())?;
    let oracle = oneshot.wait_with_output().map_err(|e| e.to_string())?;
    if !oracle.status.success() {
        return Err(format!("one-shot CLI failed: {}", oracle.status));
    }
    if output != oracle.stdout {
        return Err(format!(
            "DIVERGENCE: crash+resume output {:?} != one-shot output {:?}",
            String::from_utf8_lossy(&output),
            String::from_utf8_lossy(&oracle.stdout)
        ));
    }

    // --- Graceful teardown: 'Q' must drain and exit 0. --------------------
    let mut q = Client::connect(&addr).map_err(|e| e.to_string())?;
    q.request_shutdown().map_err(|e| e.to_string())?;
    let _ = q.next_frame();
    drop(q);
    let status = server.wait().map_err(|e| e.to_string())?;
    if !status.success() {
        return Err(format!("graceful shutdown exited {status}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(format!(
        "SIGKILL at byte {cut} survived: token {token}, {durable} durable byte(s), \
         {received} pre-kill fragment(s), {} total output byte(s) byte-identical \
         to the one-shot CLI",
        output.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_restart_transparent() {
        let outcome = crash_diff(12, 0xc4a5, 2);
        assert_eq!(outcome.cases, 12);
        assert!(outcome.kills >= 60, "only {} kill-points", outcome.kills);
        assert!(
            outcome.divergences.is_empty(),
            "divergences: {:#?}",
            outcome.divergences
        );
        // Kills must actually land after a snapshot sometimes, or the rig
        // only ever tests from-scratch reruns.
        assert!(
            outcome.snapshot_resumes > 0,
            "no kill-point ever resumed from a snapshot"
        );
        assert!(outcome.corruption_checks > 0);
    }

    #[test]
    fn sweeps_are_deterministic_per_seed() {
        let a = crash_diff(4, 7, 1);
        let b = crash_diff(4, 7, 1);
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.snapshot_resumes, b.snapshot_resumes);
        assert_eq!(a.divergences, b.divergences);
    }
}
