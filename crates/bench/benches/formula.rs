//! Experiment E7 — the §V formula-size analysis: evaluation cost of
//! qualified wildcard closures over recursive documents, where condition
//! formulas grow with the stream depth (and with the number of stacked
//! qualified closure steps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spex_bench::{run_query, Processor};
use spex_query::Rpeq;
use spex_xml::XmlEvent;

/// `<a><a>…<leaf/>…</a></a>` with `width` siblings at every level: depth d,
/// recursive labels — the worst case for closure-scope nesting.
fn recursive_doc(depth: usize) -> Vec<XmlEvent> {
    let mut xml = String::new();
    for _ in 0..depth {
        xml.push_str("<a><leaf></leaf>");
    }
    for _ in 0..depth {
        xml.push_str("</a>");
    }
    spex_xml::reader::parse_events(&xml).unwrap()
}

fn formula_growth(c: &mut Criterion) {
    let queries = [
        ("no_qualifier", "_*.a+._*.leaf"),
        ("one_qualified_closure", "_*._[leaf]._*._"),
        ("two_qualified_closures", "_*._[leaf]._*._[leaf]._*._"),
    ];
    let mut group = c.benchmark_group("formula_growth");
    group.sample_size(10);
    for depth in [8usize, 16, 32] {
        let events = recursive_doc(depth);
        for (name, q) in queries {
            let query: Rpeq = q.parse().unwrap();
            group.bench_with_input(BenchmarkId::new(name, depth), &events, |b, events| {
                b.iter(|| run_query(Processor::Spex, &query, events).results);
            });
        }
    }
    group.finish();
}

criterion_group!(benches, formula_growth);
criterion_main!(benches);
