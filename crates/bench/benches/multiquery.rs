//! Experiment E12 — the XFilter/YFilter scenario of §VIII: many profile
//! queries over one stream. Compares N independent SPEX networks (full
//! node-selecting semantics) against the shared-pass boolean NFA filter
//! (document filtering only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spex_baseline::FilterSet;
use spex_core::{CompiledNetwork, CountingSink, Evaluator};
use spex_query::Rpeq;
use spex_workloads::QuoteStream;
use spex_xml::XmlEvent;

fn profiles(n: usize) -> Vec<Rpeq> {
    let labels = ["symbol", "price", "volume", "alert", "nothing1", "nothing2"];
    (0..n)
        .map(|i| {
            format!("quotes.quote.{}", labels[i % labels.len()])
                .parse()
                .unwrap()
        })
        .collect()
}

fn multiquery(c: &mut Criterion) {
    let docs: Vec<XmlEvent> = QuoteStream::new(5, 10).take(50_000).collect();
    let mut group = c.benchmark_group("multiquery");
    group.sample_size(10);
    for n in [1usize, 10, 50] {
        let queries = profiles(n);
        group.bench_with_input(
            BenchmarkId::new("spex_networks", n),
            &queries,
            |b, queries| {
                let networks: Vec<CompiledNetwork> =
                    queries.iter().map(CompiledNetwork::compile).collect();
                b.iter(|| {
                    let mut sinks: Vec<CountingSink> =
                        (0..networks.len()).map(|_| CountingSink::new()).collect();
                    let mut evals: Vec<Evaluator> = networks
                        .iter()
                        .zip(sinks.iter_mut())
                        .map(|(net, sink)| Evaluator::new(net, sink))
                        .collect();
                    for ev in &docs {
                        for e in &mut evals {
                            e.push(ev.clone());
                        }
                    }
                    evals.into_iter().map(|e| e.finish().results).sum::<u64>()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("nfa_filter", n), &queries, |b, queries| {
            let mut set = FilterSet::new();
            for (i, q) in queries.iter().enumerate() {
                set.add(format!("q{i}"), q).unwrap();
            }
            b.iter(|| set.matching(&docs).len());
        });
    }
    group.finish();
}

criterion_group!(benches, multiquery);
criterion_main!(benches);
