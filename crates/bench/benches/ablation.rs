//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Generality cost** — what does the transducer network's machinery
//!   (condition formulas, qualifier support, fragment output) cost on
//!   queries that do not need it? Compare SPEX against the specialized
//!   streaming NFA (X-Scan stand-in) on the qualifier-free fragment, where
//!   both are single-pass/stack-bounded and select the same nodes.
//! * **Prefix sharing** — the §IX multi-query optimization: one shared
//!   network versus independent networks for queries with common prefixes.
//! * **Qualifier placement** — past conditions (stream-through) versus
//!   future conditions (buffer-until-determined) on the same data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spex_baseline::StreamNfa;
use spex_bench::stream_bytes;
use spex_core::multi::SharedQuerySet;
use spex_core::{CompiledNetwork, CountingSink, Evaluator};
use spex_query::Rpeq;
use spex_xml::XmlEvent;

fn spex_count(net: &CompiledNetwork, events: &[XmlEvent]) -> usize {
    let mut sink = CountingSink::new();
    let mut eval = Evaluator::new(net, &mut sink);
    for ev in events {
        eval.push(ev.clone());
    }
    eval.finish();
    sink.results
}

fn generality_cost(c: &mut Criterion) {
    let events: Vec<XmlEvent> = spex_workloads::dmoz_structure(0.005).collect();
    let mut group = c.benchmark_group("ablation_generality");
    group.throughput(Throughput::Bytes(stream_bytes(&events)));
    group.sample_size(10);
    for q in ["_*.Topic.Title", "_*._"] {
        let query: Rpeq = q.parse().unwrap();
        let net = CompiledNetwork::compile(&query);
        group.bench_with_input(BenchmarkId::new("spex", q), &events, |b, events| {
            b.iter(|| spex_count(&net, events));
        });
        let nfa = StreamNfa::compile(&query).unwrap();
        group.bench_with_input(BenchmarkId::new("stream_nfa", q), &events, |b, events| {
            b.iter(|| nfa.select(events).len());
        });
    }
    group.finish();
}

fn prefix_sharing(c: &mut Criterion) {
    let events: Vec<XmlEvent> = spex_workloads::QuoteStream::new(3, 10)
        .take(30_000)
        .collect();
    let mut group = c.benchmark_group("ablation_prefix_sharing");
    group.sample_size(10);
    for n in [10usize, 40] {
        let queries: Vec<(String, Rpeq)> = (0..n)
            .map(|i| {
                let labels = ["symbol", "price", "volume", "alert"];
                (
                    format!("q{i}"),
                    format!("quotes.quote.{}", labels[i % labels.len()])
                        .parse()
                        .unwrap(),
                )
            })
            .collect();
        let shared = SharedQuerySet::compile(&queries);
        group.bench_with_input(BenchmarkId::new("shared", n), &events, |b, events| {
            b.iter(|| shared.count_events(events.iter().cloned()).0);
        });
        let nets: Vec<CompiledNetwork> = queries
            .iter()
            .map(|(_, q)| CompiledNetwork::compile(q))
            .collect();
        group.bench_with_input(BenchmarkId::new("separate", n), &events, |b, events| {
            b.iter(|| {
                nets.iter()
                    .map(|net| spex_count(net, events))
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn qualifier_placement(c: &mut Criterion) {
    // Identical data volume; the flag is before the values (past condition,
    // streams through) or after them (future condition, buffers).
    let make = |flag_first: bool| -> Vec<XmlEvent> {
        let mut xml = String::from("<db>");
        for i in 0..5_000 {
            if flag_first {
                xml.push_str(&format!("<rec><flag/><v>{i}</v><v>{i}</v></rec>"));
            } else {
                xml.push_str(&format!("<rec><v>{i}</v><v>{i}</v><flag/></rec>"));
            }
        }
        xml.push_str("</db>");
        spex_xml::reader::parse_events(&xml).unwrap()
    };
    let query: Rpeq = "_*.rec[flag].v".parse().unwrap();
    let net = CompiledNetwork::compile(&query);
    let mut group = c.benchmark_group("ablation_qualifier_placement");
    group.sample_size(10);
    for (name, events) in [
        ("past_condition", make(true)),
        ("future_condition", make(false)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &events, |b, events| {
            b.iter(|| spex_count(&net, events));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    generality_cost,
    prefix_sharing,
    qualifier_placement
);
criterion_main!(benches);
