//! Experiment E6 — Theorem V.1: SPEX evaluation time is linear in the
//! stream size. Criterion's throughput reporting makes the check direct:
//! bytes/second should stay flat across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spex_bench::run_spex_streaming;
use spex_query::Rpeq;
use spex_workloads::dmoz_structure;

fn scaling(c: &mut Criterion) {
    let q: Rpeq = "_*.Topic[editor].Title".parse().unwrap();
    let mut group = c.benchmark_group("scaling_stream_size");
    group.sample_size(10);
    for scale in [0.005f64, 0.01, 0.02, 0.04] {
        let bytes: u64 = dmoz_structure(scale)
            .map(|e| e.to_string().len() as u64)
            .sum();
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| run_spex_streaming(&q, dmoz_structure(s)).0.results);
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
