//! Experiment E3 — Fig. 15 of the paper: SPEX over the large DMOZ streams.
//! Criterion uses a small fixed scale for statistically stable numbers; the
//! `harness fig15` command runs the big single-shot measurements (up to the
//! full 300 MB / 1 GB with `SPEX_BENCH_FULL=1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spex_bench::run_spex_streaming;
use spex_workloads::{dmoz_content, dmoz_structure, queries_for, Dataset};

const SCALE: f64 = 0.01; // ~3 MB structure / ~10 MB content per iteration

fn fig15(c: &mut Criterion) {
    for (name, dataset) in [
        ("structure", Dataset::DmozStructure),
        ("content", Dataset::DmozContent),
    ] {
        let bytes: u64 = match dataset {
            Dataset::DmozStructure => dmoz_structure(SCALE)
                .map(|e| e.to_string().len() as u64)
                .sum(),
            _ => dmoz_content(SCALE)
                .map(|e| e.to_string().len() as u64)
                .sum(),
        };
        let mut group = c.benchmark_group(format!("fig15_dmoz_{name}"));
        group.throughput(Throughput::Bytes(bytes));
        group.sample_size(10);
        for qc in queries_for(dataset) {
            group.bench_with_input(
                BenchmarkId::new(format!("class{}", qc.class), qc.text),
                &qc,
                |b, qc| {
                    let q = qc.rpeq();
                    b.iter(|| match dataset {
                        Dataset::DmozStructure => {
                            run_spex_streaming(&q, dmoz_structure(SCALE)).0.results
                        }
                        _ => run_spex_streaming(&q, dmoz_content(SCALE)).0.results,
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, fig15);
criterion_main!(benches);
