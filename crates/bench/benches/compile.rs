//! Experiment E5 — Lemma V.1: the translation of an rpeq into a SPEX
//! network takes time linear in the query size (and produces a network of
//! linear degree — asserted by tests; this bench measures the time side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spex_core::CompiledNetwork;
use spex_query::Rpeq;

fn compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_linear_in_n");
    for n in [4usize, 16, 64, 256] {
        let text = (0..n)
            .map(|i| format!("_*.s{i}[t{i}]"))
            .collect::<Vec<_>>()
            .join(".");
        let q: Rpeq = text.parse().unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &q, |b, q| {
            b.iter(|| CompiledNetwork::compile(q).degree());
        });
    }
    group.finish();

    // Parsing included (full front end).
    let mut group = c.benchmark_group("parse_and_compile");
    for n in [16usize, 256] {
        let text = (0..n)
            .map(|i| format!("_*.s{i}[t{i}]"))
            .collect::<Vec<_>>()
            .join(".");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &text, |b, text| {
            b.iter(|| {
                let q: Rpeq = text.parse().unwrap();
                CompiledNetwork::compile(&q).degree()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, compile_time);
criterion_main!(benches);
