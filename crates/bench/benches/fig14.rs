//! Experiment E1/E2 — Fig. 14 of the paper: MONDIAL (small, structured) and
//! WordNet (medium, flat) processed by SPEX and the two in-memory stand-ins
//! across the four query classes. The paper's claim: SPEX is competitive on
//! the small document and mostly wins on the medium one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spex_bench::{mondial_events, run_query, stream_bytes, wordnet_events, Processor};
use spex_workloads::{queries_for, Dataset};

fn bench_dataset(c: &mut Criterion, name: &str, dataset: Dataset, events: &[spex_xml::XmlEvent]) {
    let mut group = c.benchmark_group(format!("fig14_{name}"));
    group.throughput(Throughput::Bytes(stream_bytes(events)));
    group.sample_size(10);
    for qc in queries_for(dataset) {
        for p in Processor::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("class{}_{}", qc.class, p.label()), qc.text),
                &qc,
                |b, qc| {
                    let q = qc.rpeq();
                    b.iter(|| run_query(p, &q, events).results);
                },
            );
        }
    }
    group.finish();
}

fn fig14(c: &mut Criterion) {
    bench_dataset(c, "mondial", Dataset::Mondial, mondial_events());
    bench_dataset(c, "wordnet", Dataset::Wordnet, wordnet_events());
}

criterion_group!(benches, fig14);
criterion_main!(benches);
