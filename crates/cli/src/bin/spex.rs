//! The `spex` command-line tool: streamed evaluation of regular path
//! expressions with qualifiers against XML files or stdin. See `spex --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        let options = match spex_cli::serve::parse_serve_args(&args[1..]) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("spex serve: {e}");
                eprintln!();
                eprint!("{}", spex_cli::serve::SERVE_USAGE);
                std::process::exit(1);
            }
        };
        let code = spex_cli::serve::run_serve(&options, &mut std::io::stderr().lock());
        std::process::exit(code);
    }
    let options = match spex_cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("spex: {e}");
            eprintln!();
            eprint!("{}", spex_cli::USAGE);
            std::process::exit(1);
        }
    };
    let code = spex_cli::run(
        &options,
        &mut std::io::stdin().lock(),
        &mut std::io::stdout().lock(),
        &mut std::io::stderr().lock(),
    );
    std::process::exit(code);
}
