//! The `spex serve` subcommand: run the spex-serve TCP server from the
//! command line. Flag parsing mirrors the one-shot tool's flags where they
//! overlap (`--limit-*`, `--recover`, `--on-truncation`, `--stats-json`).

use spex_core::ResourceLimits;
use spex_serve::{Server, ServerConfig};
use std::io::Write;

/// Parsed `spex serve` options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The server configuration assembled from the flags.
    pub config: ServerConfig,
    /// Dump server-wide statistics (one-shot `--stats-json` schema) to
    /// stderr on exit.
    pub stats_json: bool,
    /// Print the help text.
    pub help: bool,
}

/// Usage text for `spex serve`.
pub const SERVE_USAGE: &str = "\
spex serve — concurrent streaming query server (length-prefixed frames over TCP)

USAGE:
    spex serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      listen address (default 127.0.0.1:7878; port 0 = free port)
    --workers N           session-machine worker threads (default 4); every
                          admitted connection runs regardless — workers pace
                          progress, they no longer cap concurrency
    --max-conns N         admitted-connection cap, clamped to the process fd
                          limit; past it new connections get BUSY (default 16384)
    --queue N             accepted for compatibility; the reactor admits by
                          --max-conns and never queues sessions behind BUSY
    --max-frame N         per-frame payload cap in bytes (default 1048576)
    --max-plans N         compiled-plan cache cap, LRU-evicted past it;
                          0 disables caching (default 64)
    --read-timeout SECS   deadline for the next DATA frame once a session
                          streams, 0 disables (default 30)
    --write-timeout SECS  deadline for writability progress on a stalled
                          peer, 0 disables (default 30)
    --idle-timeout SECS   reap connections with no *completed* frame for
                          SECS (slowloris defense), 0 disables (default 0)
    --allow-remote-shutdown  honor the 'Q' shutdown frame from non-loopback
                          peers (default: loopback peers only)
    --engine E            execution backend for every session:
                          vm (compiled plan, default) | network
    --scanner S           byte scanner for every session's reader:
                          fast (SWAR structural fast path, default) |
                          classic (byte-at-a-time oracle; DESIGN.md §18)
    --queries FILE        preload standing queries from FILE (one NAME=EXPR
                          per line; `#` starts a comment, blank lines are
                          skipped). The set compiles once through the
                          multi-query combiner into one shared plan; any
                          session that streams DATA without registering
                          queries of its own evaluates the preloaded set
    --recover P           per-session recovery policy: strict | repair | skip-subtree
    --on-truncation O     drop (default) | force-false
    --limit-depth N       per-session stream nesting depth cap
    --limit-buffered N    per-session buffered-event cap
    --limit-buffered-bytes N  per-session event-arena byte cap
    --limit-candidates N  per-session live-candidate cap
    --limit-formula N     per-session condition-formula size cap
    --limit-messages N    per-session transducer-message cap
    --stats-json          dump server statistics as JSON to stderr on exit
    --trace-jsonl PATH    write a JSONL trace (per-session spans and engine
                          records, shutdown aggregates; DESIGN.md §13) to PATH
    --durable-dir DIR     persist session state under DIR: a write-ahead log
                          of input frames plus document-boundary snapshots,
                          so a crashed or disconnected session resumes by
                          token ('M' frame) with identical continuation
                          output (DESIGN.md §15, PROTOCOL.md)
    --fsync P             WAL durability policy under --durable-dir:
                          always | document (default) | never
    -h, --help            this text

PROTOCOL (kind byte · u32 big-endian length · payload; see
crates/server/PROTOCOL.md for the normative specification):
    client:  'R' register name=expr   'D' xml bytes   'E' end
             'S' stats request        'T' trace summary request
             'M' resume durable session (version · token · received counts)
             'Q' graceful shutdown (loopback peers
             only unless --allow-remote-shutdown)
    server:  'k' ok   'r' result   'f' fault   's' stats   't' trace
             'e' error   'b' busy   'n' session end
             'm' resume-ok (durable input byte count)

The server exits 0 after a graceful shutdown (SIGINT, SIGTERM, or a 'Q' frame),
draining all in-flight sessions first.
";

/// Parse a standing-query file (`--queries FILE`): one `NAME=EXPR` per
/// line, `#` starts a comment (whole-line or trailing), blank lines are
/// skipped. Names must be unique; every expression must parse as an rpeq.
pub fn parse_query_file(text: &str) -> Result<Vec<(String, spex_query::Rpeq)>, String> {
    let mut queries: Vec<(String, spex_query::Rpeq)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (name, expr) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: `{line}` is not of the form NAME=EXPR"))?;
        let (name, expr) = (name.trim(), expr.trim());
        if name.is_empty() {
            return Err(format!("line {lineno}: empty query name"));
        }
        if queries.iter().any(|(n, _)| n == name) {
            return Err(format!("line {lineno}: query name `{name}` given twice"));
        }
        let query: spex_query::Rpeq = expr
            .parse()
            .map_err(|e: spex_query::ParseError| format!("line {lineno}: query {name}: {e}"))?;
        queries.push((name.to_string(), query));
    }
    if queries.is_empty() {
        return Err("no queries in file (every line blank or a comment)".to_string());
    }
    Ok(queries)
}

/// Parse `spex serve` arguments (excluding `serve` itself).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        watch_signals: true,
        ..ServerConfig::default()
    };
    let mut limits = ResourceLimits::default();
    let mut stats_json = false;
    let mut help = false;
    let mut it = args.iter();
    fn number<T: std::str::FromStr>(
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        it.next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("invalid {flag}: {e}"))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it
                    .next()
                    .ok_or_else(|| "--addr needs host:port".to_string())?
                    .clone()
            }
            "--workers" => config.workers = number("--workers", &mut it)?,
            "--max-conns" => config.max_conns = number("--max-conns", &mut it)?,
            "--queue" => config.queue_cap = number("--queue", &mut it)?,
            "--max-frame" => config.max_frame = number("--max-frame", &mut it)?,
            "--max-plans" => config.max_cached_plans = number("--max-plans", &mut it)?,
            "--read-timeout" => {
                let secs: u64 = number("--read-timeout", &mut it)?;
                config.read_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs))
                };
            }
            "--write-timeout" => {
                let secs: u64 = number("--write-timeout", &mut it)?;
                config.write_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs))
                };
            }
            "--idle-timeout" => {
                let secs: u64 = number("--idle-timeout", &mut it)?;
                config.idle_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs))
                };
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--queries" => {
                let path = it
                    .next()
                    .ok_or_else(|| "--queries needs a file path".to_string())?;
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("--queries {path}: {e}"))?;
                config.preload_queries =
                    parse_query_file(&text).map_err(|e| format!("--queries {path}: {e}"))?;
            }
            "--engine" => {
                config.engine = it
                    .next()
                    .ok_or_else(|| "--engine needs a backend (vm, network)".to_string())?
                    .parse()?
            }
            "--recover" => {
                config.recovery = it
                    .next()
                    .ok_or_else(|| {
                        "--recover needs a policy (strict, repair, skip-subtree)".to_string()
                    })?
                    .parse()?
            }
            "--scanner" => {
                config.scanner = it
                    .next()
                    .ok_or_else(|| "--scanner needs a strategy (fast, classic)".to_string())?
                    .parse()?
            }
            "--on-truncation" => {
                config.on_truncation = it
                    .next()
                    .ok_or_else(|| {
                        "--on-truncation needs an outcome (drop, force-false)".to_string()
                    })?
                    .parse()?
            }
            "--limit-depth" => limits.max_stream_depth = Some(number("--limit-depth", &mut it)?),
            "--limit-buffered" => {
                limits.max_buffered_events = Some(number("--limit-buffered", &mut it)?)
            }
            "--limit-buffered-bytes" => {
                limits.max_buffered_bytes = Some(number("--limit-buffered-bytes", &mut it)?)
            }
            "--limit-candidates" => {
                limits.max_live_candidates = Some(number("--limit-candidates", &mut it)?)
            }
            "--limit-formula" => {
                limits.max_formula_size = Some(number("--limit-formula", &mut it)?)
            }
            "--limit-messages" => {
                limits.max_total_messages = Some(number("--limit-messages", &mut it)?)
            }
            "--stats-json" => stats_json = true,
            "--durable-dir" => {
                config.durable_dir = Some(
                    it.next()
                        .ok_or_else(|| "--durable-dir needs a directory path".to_string())?
                        .clone(),
                )
            }
            "--fsync" => {
                config.fsync = it
                    .next()
                    .ok_or_else(|| "--fsync needs a policy (always, document, never)".to_string())?
                    .parse()?
            }
            "--trace-jsonl" => {
                config.trace_jsonl = Some(
                    it.next()
                        .ok_or_else(|| "--trace-jsonl needs a file path".to_string())?
                        .clone(),
                )
            }
            "-h" | "--help" => help = true,
            other => return Err(format!("unknown `spex serve` option `{other}`")),
        }
    }
    config.limits = limits;
    Ok(ServeOptions {
        config,
        stats_json,
        help,
    })
}

/// Run the server; returns the process exit code. Blocks until a graceful
/// shutdown (signal or `SHUTDOWN` frame).
pub fn run_serve(options: &ServeOptions, stderr: &mut dyn Write) -> i32 {
    if options.help {
        let _ = write!(stderr, "{SERVE_USAGE}");
        return 0;
    }
    let server = match Server::bind(options.config.clone()) {
        Ok(s) => s,
        Err(e) => {
            let _ = writeln!(stderr, "spex serve: bind {}: {e}", options.config.addr);
            return 3;
        }
    };
    let _ = writeln!(stderr, "spex serve: listening on {}", server.local_addr());
    match server.run() {
        Ok(report) => {
            let _ = writeln!(
                stderr,
                "spex serve: drained; {} session(s) served ({} completed, {} failed, {} rejected), {} document(s)",
                report.sessions_started,
                report.sessions_completed,
                report.sessions_failed,
                report.sessions_rejected,
                report.documents,
            );
            if options.stats_json {
                let _ = writeln!(stderr, "{}", report.stats_json);
            }
            0
        }
        Err(e) => {
            let _ = writeln!(stderr, "spex serve: {e}");
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_serve_flags() {
        let o = parse_serve_args(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "8",
            "--queue",
            "2",
            "--max-frame",
            "4096",
            "--max-plans",
            "8",
            "--read-timeout",
            "0",
            "--write-timeout",
            "5",
            "--allow-remote-shutdown",
            "--engine",
            "network",
            "--recover",
            "repair",
            "--limit-depth",
            "64",
            "--stats-json",
            "--trace-jsonl",
            "/tmp/trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(o.config.addr, "127.0.0.1:0");
        assert_eq!(o.config.workers, 8);
        assert_eq!(o.config.queue_cap, 2);
        assert_eq!(o.config.max_frame, 4096);
        assert_eq!(o.config.max_cached_plans, 8);
        assert_eq!(o.config.read_timeout, None);
        assert_eq!(
            o.config.write_timeout,
            Some(std::time::Duration::from_secs(5))
        );
        assert!(o.config.allow_remote_shutdown);
        assert_eq!(o.config.engine, spex_core::Engine::Network);
        assert_eq!(o.config.recovery, spex_xml::RecoveryPolicy::Repair);
        assert_eq!(o.config.limits.max_stream_depth, Some(64));
        assert!(o.stats_json);
        assert!(o.config.watch_signals);
        assert_eq!(o.config.trace_jsonl.as_deref(), Some("/tmp/trace.jsonl"));
        assert!(parse_serve_args(&args(&["--bogus"])).is_err());
        assert!(parse_serve_args(&args(&["--workers"])).is_err());
        assert!(parse_serve_args(&args(&["--trace-jsonl"])).is_err());
    }

    #[test]
    fn parse_scanner_flag() {
        use spex_xml::ScannerKind;
        let o = parse_serve_args(&args(&[])).unwrap();
        assert_eq!(o.config.scanner, ScannerKind::Fast);
        let o = parse_serve_args(&args(&["--scanner", "classic"])).unwrap();
        assert_eq!(o.config.scanner, ScannerKind::Classic);
        let o = parse_serve_args(&args(&["--scanner", "fast"])).unwrap();
        assert_eq!(o.config.scanner, ScannerKind::Fast);
        assert!(parse_serve_args(&args(&["--scanner"])).is_err());
        assert!(parse_serve_args(&args(&["--scanner", "turbo"])).is_err());
    }

    #[test]
    fn parse_reactor_flags() {
        let o = parse_serve_args(&args(&["--max-conns", "256", "--idle-timeout", "45"])).unwrap();
        assert_eq!(o.config.max_conns, 256);
        assert_eq!(
            o.config.idle_timeout,
            Some(std::time::Duration::from_secs(45))
        );
        // The 0-disables convention, matching the other timeout flags.
        let o = parse_serve_args(&args(&["--idle-timeout", "0"])).unwrap();
        assert_eq!(o.config.idle_timeout, None);
        // Defaults: idle reaping off, admission capped generously.
        let o = parse_serve_args(&args(&[])).unwrap();
        assert_eq!(o.config.idle_timeout, None);
        assert_eq!(o.config.max_conns, 16384);
        assert!(parse_serve_args(&args(&["--max-conns"])).is_err());
        assert!(parse_serve_args(&args(&["--idle-timeout", "soon"])).is_err());
    }

    #[test]
    fn parse_durable_flags() {
        use spex_serve::FsyncPolicy;
        let o = parse_serve_args(&args(&["--durable-dir", "/tmp/spex-durable"])).unwrap();
        assert_eq!(o.config.durable_dir.as_deref(), Some("/tmp/spex-durable"));
        assert_eq!(o.config.fsync, FsyncPolicy::OnDocument);
        for (flag, want) in [
            ("always", FsyncPolicy::Always),
            ("document", FsyncPolicy::OnDocument),
            ("on-document", FsyncPolicy::OnDocument),
            ("never", FsyncPolicy::Never),
        ] {
            let o = parse_serve_args(&args(&["--fsync", flag])).unwrap();
            assert_eq!(o.config.fsync, want, "--fsync {flag}");
        }
        assert!(parse_serve_args(&args(&["--durable-dir"])).is_err());
        assert!(parse_serve_args(&args(&["--fsync"])).is_err());
        assert!(parse_serve_args(&args(&["--fsync", "sometimes"])).is_err());
    }

    #[test]
    fn parse_query_file_lines() {
        let qs = parse_query_file(
            "# standing queries\n\
             title = doc.title\n\
             \n\
             tags=doc.(tag|keyword)   # both element names\n\
             deep = _*.item\n",
        )
        .unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].0, "title");
        assert_eq!(qs[0].1.to_string(), "doc.title");
        assert_eq!(qs[1].0, "tags");
        assert_eq!(qs[2].0, "deep");

        let e = parse_query_file("just-a-name\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        assert!(e.contains("NAME=EXPR"), "{e}");
        let e = parse_query_file("a=x\na=y\n").unwrap_err();
        assert!(e.contains("given twice"), "{e}");
        let e = parse_query_file("a=((\n").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        let e = parse_query_file("# nothing here\n\n").unwrap_err();
        assert!(e.contains("no queries"), "{e}");
    }

    #[test]
    fn parse_queries_flag() {
        let dir = std::env::temp_dir().join(format!("spex-queries-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("standing.txt");
        std::fs::write(&path, "a=doc.a\nb=doc.b # comment\n").unwrap();
        let o = parse_serve_args(&args(&["--queries", path.to_str().unwrap()])).unwrap();
        assert_eq!(o.config.preload_queries.len(), 2);
        assert_eq!(o.config.preload_queries[0].0, "a");
        assert_eq!(o.config.preload_queries[1].1.to_string(), "doc.b");
        let e = parse_serve_args(&args(&["--queries"])).unwrap_err();
        assert!(e.contains("--queries"), "{e}");
        let missing = dir.join("no-such-file.txt");
        let e = parse_serve_args(&args(&["--queries", missing.to_str().unwrap()])).unwrap_err();
        assert!(e.contains("no-such-file"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_flag_short_circuits() {
        let o = parse_serve_args(&args(&["--help"])).unwrap();
        assert!(o.help);
        let mut err = Vec::new();
        assert_eq!(run_serve(&o, &mut err), 0);
        assert!(String::from_utf8(err).unwrap().contains("spex serve"));
    }
}
