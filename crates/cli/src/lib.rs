//! Library backing the `spex` command-line tool: argument parsing and the
//! command implementations, factored out of the binary so they can be unit-
//! and integration-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod serve;

use spex_core::{
    stats_json, CompiledNetwork, CountingSink, Engine, EngineStats, EvalError, Evaluator,
    RecoveryOptions, ResourceLimits, RunReport, SpanCollector, TransducerStats, TruncationOutcome,
};
use spex_query::Rpeq;
use spex_trace::{JsonlSink, MemorySink, TeeSink, TraceRecord, TraceSink, Tracer};
use spex_xml::{RecoveryPolicy, ScannerKind, XmlError};
use std::io::{Read, Write};
use std::sync::Arc;

/// A CLI failure with its process exit code (see the README's exit-code
/// table): 1 usage/query, 2 malformed XML, 3 I/O, 4 resource limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Usage, query parse or compile failure (exit code 1).
    Usage(String),
    /// Malformed XML input — any syntax-class [`XmlError`] (exit code 2).
    Syntax(String),
    /// I/O failure: input file, transport, or output pipe (exit code 3).
    Io(String),
    /// A configured resource limit was exceeded (exit code 4).
    Resource(String),
}

impl CliError {
    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 1,
            CliError::Syntax(_) => 2,
            CliError::Io(_) => 3,
            CliError::Resource(_) => 4,
        }
    }

    /// The message printed to stderr (prefixed with `spex: ` by [`run`]).
    pub fn message(&self) -> &str {
        match self {
            CliError::Usage(m) | CliError::Syntax(m) | CliError::Io(m) | CliError::Resource(m) => m,
        }
    }
}

impl From<XmlError> for CliError {
    fn from(e: XmlError) -> Self {
        if e.kind().is_syntax_class() {
            CliError::Syntax(e.to_string())
        } else {
            CliError::Io(e.to_string())
        }
    }
}

impl From<EvalError> for CliError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Query(_) | EvalError::Compile(_) => CliError::Usage(e.to_string()),
            EvalError::Xml(x) => x.into(),
            EvalError::ResourceExhausted { .. } => CliError::Resource(e.to_string()),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// The query (rpeq syntax, or XPath with `--xpath`).
    pub query: Option<String>,
    /// Input file (stdin when absent).
    pub file: Option<String>,
    /// Interpret the query as XPath.
    pub xpath: bool,
    /// Print only the number of results.
    pub count: bool,
    /// Print result start offsets (event index) instead of fragments.
    pub spans: bool,
    /// Print the compiled network and exit.
    pub explain: bool,
    /// Print evaluation statistics to stderr.
    pub stats: bool,
    /// Print statistics (global + per-transducer) as JSON to stderr.
    pub stats_json: bool,
    /// Resource caps enforced during evaluation.
    pub limits: ResourceLimits,
    /// Generate a dataset instead of evaluating: `mondial`, `wordnet`,
    /// `dmoz-structure`, `dmoz-content`.
    pub generate: Option<String>,
    /// Scale factor for generated datasets.
    pub scale: f64,
    /// Print the help text.
    pub help: bool,
    /// Accept a sequence of documents on the input (SDI streams).
    pub stream: bool,
    /// Recovery policy for malformed input (default: strict).
    pub recover: RecoveryPolicy,
    /// Execution backend: the compiled VM (default) or the interpreter
    /// network (the semantic oracle).
    pub engine: Engine,
    /// Byte-scanning strategy: the SWAR fast path (default) or the classic
    /// byte-at-a-time state machine (the differential oracle).
    pub scanner: ScannerKind,
    /// How undetermined candidates resolve at an unexpected end of stream.
    pub on_truncation: TruncationOutcome,
    /// Named queries (`NAME=EXPR`, repeatable) compiled into one shared
    /// network; output lines are prefixed with the query name.
    pub queries: Vec<String>,
    /// Write a JSONL trace (spans, counters, histograms — DESIGN.md §13)
    /// to this path.
    pub trace_jsonl: Option<String>,
    /// Print a human-readable trace summary to stderr after the run.
    pub trace_summary: bool,
    /// Write a run-state snapshot (DESIGN.md §15) to this path at every
    /// document boundary.
    pub checkpoint: Option<String>,
    /// Restore run state from this snapshot and skip the input prefix it
    /// already consumed before evaluating.
    pub resume: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            query: None,
            file: None,
            xpath: false,
            count: false,
            spans: false,
            explain: false,
            stats: false,
            stats_json: false,
            limits: ResourceLimits::default(),
            generate: None,
            scale: 1.0,
            help: false,
            stream: false,
            recover: RecoveryPolicy::Strict,
            engine: Engine::default(),
            scanner: ScannerKind::default(),
            on_truncation: TruncationOutcome::Drop,
            queries: Vec::new(),
            trace_jsonl: None,
            trace_summary: false,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
spex — streamed evaluation of regular path expressions with qualifiers

USAGE:
    spex [OPTIONS] QUERY [FILE]
    spex --query NAME=EXPR [--query NAME=EXPR ...] [FILE]
    spex --generate DATASET [--scale X] > out.xml
    spex serve [OPTIONS]          (see `spex serve --help`)

ARGS:
    QUERY   regular path expression, e.g. '_*.country[province].name'
    FILE    XML input (stdin when omitted)

OPTIONS:
    --query NAME=EXPR  register a named query (repeatable); all queries are
                     compiled into ONE shared transducer network and each
                     output line is prefixed with `NAME<TAB>`
    --xpath          parse QUERY as XPath (//country[province]/name)
    --count          print only the number of results
    --spans          print result start offsets (event indices)
    --explain        print the compiled transducer network and exit
    --stats          print evaluation statistics to stderr
    --stats-json     print statistics (global + per-transducer) as JSON to stderr
    --trace-jsonl PATH    write a JSONL trace (spans, counters, histograms;
                     schema in DESIGN.md §13) to PATH
    --trace-summary  print a human-readable trace summary to stderr
    --checkpoint PATH     write a run-state snapshot (DESIGN.md §15) to PATH
                     at every document boundary (atomically replaced)
    --resume PATH    restore run state from the snapshot at PATH, skip the
                     input prefix it already consumed, and continue; the
                     input must be the same stream the snapshot came from
    --stream         treat the input as a sequence of documents (SDI mode)
    --engine E       execution backend: vm (compiled plan, default) | network
                     (the interpreter over boxed transducers)
    --scanner S      byte-scanning strategy: fast (SWAR structural fast
                     path, default) | classic (byte-at-a-time oracle)
    --recover P      recovery policy for malformed input:
                     strict (default) | repair | skip-subtree
    --on-truncation O     candidates undetermined at an unexpected EOF:
                     drop (default) | force-false
    --limit-depth N       abort when the stream nesting depth exceeds N
    --limit-buffered N    abort when more than N events are buffered
    --limit-buffered-bytes N  abort when the event arena exceeds N bytes
    --limit-candidates N  abort when more than N candidates are live
    --limit-formula N     abort when a condition formula exceeds size N
    --limit-messages N    abort after more than N transducer messages
    --generate D     emit a synthetic dataset: mondial | wordnet |
                     dmoz-structure | dmoz-content
    --scale X        dataset scale factor (default 1.0)
    -h, --help       this text

EXIT CODES:
    0 success    1 usage or query error    2 malformed XML input
    3 I/O failure    4 resource limit exceeded
";

/// Parse command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    fn number<T: std::str::FromStr>(
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        it.next()
            .ok_or_else(|| format!("{flag} needs a number"))?
            .parse()
            .map_err(|e| format!("invalid {flag}: {e}"))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--xpath" => o.xpath = true,
            "--count" => o.count = true,
            "--spans" => o.spans = true,
            "--explain" => o.explain = true,
            "--stats" => o.stats = true,
            "--stats-json" => o.stats_json = true,
            "--trace-summary" => o.trace_summary = true,
            "--trace-jsonl" => {
                o.trace_jsonl = Some(
                    it.next()
                        .ok_or_else(|| "--trace-jsonl needs a file path".to_string())?
                        .clone(),
                )
            }
            "--checkpoint" => {
                o.checkpoint = Some(
                    it.next()
                        .ok_or_else(|| "--checkpoint needs a file path".to_string())?
                        .clone(),
                )
            }
            "--resume" => {
                o.resume = Some(
                    it.next()
                        .ok_or_else(|| "--resume needs a file path".to_string())?
                        .clone(),
                )
            }
            "--stream" => o.stream = true,
            "--limit-depth" => o.limits.max_stream_depth = Some(number("--limit-depth", &mut it)?),
            "--limit-buffered" => {
                o.limits.max_buffered_events = Some(number("--limit-buffered", &mut it)?)
            }
            "--limit-buffered-bytes" => {
                o.limits.max_buffered_bytes = Some(number("--limit-buffered-bytes", &mut it)?)
            }
            "--limit-candidates" => {
                o.limits.max_live_candidates = Some(number("--limit-candidates", &mut it)?)
            }
            "--limit-formula" => {
                o.limits.max_formula_size = Some(number("--limit-formula", &mut it)?)
            }
            "--limit-messages" => {
                o.limits.max_total_messages = Some(number("--limit-messages", &mut it)?)
            }
            "-h" | "--help" => o.help = true,
            "--engine" => {
                o.engine = it
                    .next()
                    .ok_or_else(|| "--engine needs a backend (vm, network)".to_string())?
                    .parse()?
            }
            "--scanner" => {
                o.scanner = it
                    .next()
                    .ok_or_else(|| "--scanner needs a strategy (fast, classic)".to_string())?
                    .parse()?
            }
            "--recover" => {
                o.recover = it
                    .next()
                    .ok_or_else(|| {
                        "--recover needs a policy (strict, repair, skip-subtree)".to_string()
                    })?
                    .parse()?
            }
            "--on-truncation" => {
                o.on_truncation = it
                    .next()
                    .ok_or_else(|| {
                        "--on-truncation needs an outcome (drop, force-false)".to_string()
                    })?
                    .parse()?
            }
            "--query" => o.queries.push(
                it.next()
                    .ok_or_else(|| "--query needs NAME=EXPR".to_string())?
                    .clone(),
            ),
            "--generate" => {
                o.generate = Some(
                    it.next()
                        .ok_or_else(|| "--generate needs a dataset name".to_string())?
                        .clone(),
                )
            }
            "--scale" => {
                o.scale = it
                    .next()
                    .ok_or_else(|| "--scale needs a number".to_string())?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?
            }
            other if other.starts_with("--query=") => {
                o.queries.push(other["--query=".len()..].to_string())
            }
            other if other.starts_with("--trace-jsonl=") => {
                o.trace_jsonl = Some(other["--trace-jsonl=".len()..].to_string())
            }
            other if other.starts_with("--checkpoint=") => {
                o.checkpoint = Some(other["--checkpoint=".len()..].to_string())
            }
            other if other.starts_with("--resume=") => {
                o.resume = Some(other["--resume=".len()..].to_string())
            }
            other if other.starts_with("--engine=") => {
                o.engine = other["--engine=".len()..].parse()?
            }
            other if other.starts_with("--scanner=") => {
                o.scanner = other["--scanner=".len()..].parse()?
            }
            other if other.starts_with("--recover=") => {
                o.recover = other["--recover=".len()..].parse()?
            }
            other if other.starts_with("--on-truncation=") => {
                o.on_truncation = other["--on-truncation=".len()..].parse()?
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            _ => positional.push(a),
        }
    }
    let mut pos = positional.into_iter();
    o.query = pos.next().cloned();
    o.file = pos.next().cloned();
    if pos.next().is_some() {
        return Err("too many positional arguments".to_string());
    }
    Ok(o)
}

/// The trace destinations a run writes to, built from the `--trace-jsonl`
/// and `--trace-summary` flags. Holding the concrete sinks (not just the
/// type-erased [`Tracer`]) lets the CLI check the JSONL sink's error latch
/// and render the summary from the in-memory records after the run.
struct TraceSetup {
    tracer: Tracer,
    jsonl: Option<(String, Arc<JsonlSink>)>,
    summary: Option<Arc<MemorySink>>,
}

impl TraceSetup {
    fn build(options: &Options) -> Result<TraceSetup, CliError> {
        let mut setup = TraceSetup {
            tracer: Tracer::disabled(),
            jsonl: None,
            summary: None,
        };
        let mut children: Vec<Arc<dyn TraceSink>> = Vec::new();
        if let Some(path) = &options.trace_jsonl {
            let sink = Arc::new(
                JsonlSink::create(std::path::Path::new(path))
                    .map_err(|e| CliError::Io(format!("{path}: {e}")))?,
            );
            setup.jsonl = Some((path.clone(), sink.clone()));
            children.push(sink);
        }
        if options.trace_summary {
            let sink = Arc::new(MemorySink::new());
            setup.summary = Some(sink.clone());
            children.push(sink);
        }
        setup.tracer = match children.len() {
            0 => Tracer::disabled(),
            1 => Tracer::to_sink(children.pop().expect("one child")),
            _ => Tracer::to_sink(Arc::new(TeeSink::new(children))),
        };
        Ok(setup)
    }

    /// Flush the sinks, render the `--trace-summary` table, and surface a
    /// latched JSONL write error as an I/O failure.
    fn finish(&self, stderr: &mut dyn Write) -> Result<(), CliError> {
        self.tracer.flush();
        if let Some(memory) = &self.summary {
            write!(stderr, "{}", render_trace_summary(&memory.records()))?;
        }
        if let Some((path, sink)) = &self.jsonl {
            if sink.had_error() {
                return Err(CliError::Io(format!("{path}: trace write failed")));
            }
        }
        Ok(())
    }
}

/// Render trace records as an aligned human-readable table (the
/// `--trace-summary` output).
fn render_trace_summary(records: &[TraceRecord]) -> String {
    use spex_trace::Value;
    fn label(name: &str, attrs: &[(String, Value)]) -> String {
        if attrs.is_empty() {
            return name.to_string();
        }
        let inner: Vec<String> = attrs
            .iter()
            .map(|(k, v)| match v {
                Value::Str(s) => format!("{k}={s}"),
                Value::U64(n) => format!("{k}={n}"),
            })
            .collect();
        format!("{name}{{{}}}", inner.join(","))
    }
    let rows: Vec<(&'static str, String, String)> = records
        .iter()
        .map(|r| match r {
            TraceRecord::Span { name, us, attrs } => {
                ("span", label(name, attrs), format!("{us}µs"))
            }
            TraceRecord::Counter { name, value, attrs } => {
                ("counter", label(name, attrs), value.to_string())
            }
            TraceRecord::Gauge { name, value, attrs } => {
                ("gauge", label(name, attrs), value.to_string())
            }
            TraceRecord::Hist {
                name,
                summary,
                attrs,
            } => (
                "hist",
                label(name, attrs),
                format!(
                    "count={} min={} max={} p50={} p90={} p99={}",
                    summary.count, summary.min, summary.max, summary.p50, summary.p90, summary.p99
                ),
            ),
        })
        .collect();
    let width = rows.iter().map(|(_, l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::from("trace summary:\n");
    for (kind, label, value) in rows {
        out.push_str(&format!("  {kind:<7} {label:<width$}  {value}\n"));
    }
    out
}

/// Run the tool; returns the process exit code.
pub fn run(
    options: &Options,
    stdin: &mut dyn Read,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> i32 {
    match run_inner(options, stdin, stdout, stderr) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(stderr, "spex: {}", e.message());
            e.exit_code()
        }
    }
}

fn run_inner(
    options: &Options,
    stdin: &mut dyn Read,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> Result<(), CliError> {
    if options.help {
        write!(stdout, "{USAGE}")?;
        return Ok(());
    }
    if let Some(dataset) = &options.generate {
        return generate(dataset, options.scale, stdout);
    }
    if options.checkpoint.is_some() || options.resume.is_some() {
        if !options.queries.is_empty() {
            return Err(CliError::Usage(
                "--checkpoint/--resume cannot be combined with --query; use \
                 `spex serve --durable-dir` for durable multi-query sessions"
                    .to_string(),
            ));
        }
        if options.recover != RecoveryPolicy::Strict {
            return Err(CliError::Usage(
                "--checkpoint/--resume require strict parsing (durable recovery \
                 sessions live in `spex serve --durable-dir`)"
                    .to_string(),
            ));
        }
        if options.count || options.spans {
            return Err(CliError::Usage(
                "--checkpoint/--resume only support fragment output \
                 (not --count/--spans: the counters are not part of the snapshot)"
                    .to_string(),
            ));
        }
    }
    if !options.queries.is_empty() {
        return run_multi(options, stdin, stdout, stderr);
    }
    let query_text = options
        .query
        .as_ref()
        .ok_or_else(|| CliError::Usage(format!("missing QUERY\n\n{USAGE}")))?;
    let query: Rpeq = if options.xpath {
        spex_query::xpath::parse_xpath(query_text).map_err(|e| CliError::Usage(e.to_string()))?
    } else {
        query_text
            .parse()
            .map_err(|e: spex_query::ParseError| CliError::Usage(e.to_string()))?
    };
    let network = CompiledNetwork::compile(&query);
    if options.explain {
        writeln!(stdout, "query: {query}")?;
        writeln!(stdout, "network ({} transducers):", network.degree())?;
        write!(stdout, "{}", network.spec().dump())?;
        return Ok(());
    }

    let trace = TraceSetup::build(options)?;

    // Choose the sink by output mode.
    let (stats, transducers, report) = if options.checkpoint.is_some() || options.resume.is_some() {
        let mut sink = spex_core::StreamingSink::new(&mut *stdout);
        let out = run_checkpointed(&network, options, &trace.tracer, stdin, &mut sink)?;
        if let Some(e) = sink.take_error() {
            return Err(e.into());
        }
        out
    } else if options.count {
        let mut sink = CountingSink::new();
        let out = evaluate(&network, options, &trace.tracer, stdin, &mut sink)?;
        writeln!(stdout, "{}", sink.results)?;
        out
    } else if options.spans {
        let mut sink = SpanCollector::new();
        let out = evaluate(&network, options, &trace.tracer, stdin, &mut sink)?;
        for s in &sink.starts {
            writeln!(stdout, "{s}")?;
        }
        out
    } else {
        // Progressive delivery: fragments reach stdout as they are decided,
        // not after the stream ends. (Under a recovery policy delivery is
        // deferred to end of run — quarantine needs the whole stream.)
        let mut sink = spex_core::StreamingSink::new(&mut *stdout);
        let out = evaluate(&network, options, &trace.tracer, stdin, &mut sink)?;
        if let Some(e) = sink.take_error() {
            return Err(e.into());
        }
        out
    };

    // The summary still prints (and the JSONL sink still flushes) when the
    // run ends in a drained resource breach — but that breach wins as the
    // reported error.
    let outcome = report_outcome(options, &stats, &transducers, report.as_ref(), stderr);
    trace.finish(stderr)?;
    outcome
}

/// Print the `--stats`/`--stats-json` output and the recovery summary,
/// surfacing a drained resource breach as the final error.
fn report_outcome(
    options: &Options,
    stats: &EngineStats,
    transducers: &[TransducerStats],
    report: Option<&RunReport>,
    stderr: &mut dyn Write,
) -> Result<(), CliError> {
    if options.stats_json {
        writeln!(stderr, "{}", stats_json(stats, transducers, report))?;
    }
    if options.stats {
        writeln!(
            stderr,
            "events: {}  depth: {}  results: {}  dropped: {}  vars: {}  \
             peak buffered: {}  max formula: {}  stacks: d={} c={}  \
             arena peak: {}B  symbols: {}",
            stats.ticks,
            stats.max_stream_depth,
            stats.results,
            stats.dropped,
            stats.vars_created,
            stats.peak_buffered_events,
            stats.max_formula_size,
            stats.max_depth_stack,
            stats.max_cond_stack,
            stats.peak_arena_bytes,
            stats.interned_symbols,
        )?;
    }
    if let Some(report) = report {
        if !report.faults.is_empty() {
            writeln!(
                stderr,
                "spex: recovered {} input fault(s); {} result(s) quarantined{}",
                report.faults.len(),
                report.dropped,
                if report.truncated {
                    " (stream truncated)"
                } else {
                    ""
                },
            )?;
        }
        if let Some(breach) = report.exhausted {
            return Err(CliError::Resource(breach.to_string()));
        }
    }
    Ok(())
}

/// Per-query fragment sink of the multi-query mode: a boxed closure
/// writing `NAME<TAB>fragment` lines to the shared output handle.
type TaggedSink<'a> = spex_core::FragmentFnSink<Box<dyn FnMut(&[u8]) + 'a>>;

/// The multi-query one-shot mode (`--query NAME=EXPR`, repeatable): all
/// queries compile through the multi-query combiner into **one** shared
/// transducer network (common prefixes exist once on the step trie, equal
/// qualifiers are hash-consed, canonically-equal queries collapse to one
/// sink — the paper's multi-query outlook, §IX) and stream over the input
/// together. Every output line is prefixed with `NAME<TAB>` so the
/// interleaved per-query results can be separated again.
fn run_multi(
    options: &Options,
    stdin: &mut dyn Read,
    stdout: &mut dyn Write,
    stderr: &mut dyn Write,
) -> Result<(), CliError> {
    if options.xpath {
        return Err(CliError::Usage(
            "--xpath cannot be combined with --query".to_string(),
        ));
    }
    if options.recover != RecoveryPolicy::Strict {
        return Err(CliError::Usage(
            "--recover is not supported with --query; use `spex serve --recover` \
             for recovering multi-query sessions"
                .to_string(),
        ));
    }
    if options.file.is_some() {
        return Err(CliError::Usage(
            "too many positional arguments (with --query the only positional is FILE)".to_string(),
        ));
    }
    // With --query there is no positional QUERY; the first (only)
    // positional is the input file.
    let file = options.query.clone();

    let mut queries: Vec<(String, Rpeq)> = Vec::new();
    for spec in &options.queries {
        let (name, expr) = spec.split_once('=').ok_or_else(|| {
            CliError::Usage(format!("--query `{spec}` is not of the form NAME=EXPR"))
        })?;
        if name.is_empty() {
            return Err(CliError::Usage(format!("--query `{spec}`: empty name")));
        }
        if queries.iter().any(|(n, _)| n == name) {
            return Err(CliError::Usage(format!(
                "--query name `{name}` given twice"
            )));
        }
        let query: Rpeq = expr
            .parse()
            .map_err(|e: spex_query::ParseError| CliError::Usage(format!("--query {name}: {e}")))?;
        queries.push((name.to_string(), query));
    }
    let combined = spex_combine::combine(&queries).map_err(|e| CliError::Usage(e.to_string()))?;
    let (set, report) = (combined.set, combined.report);

    if options.explain {
        for (name, query) in &queries {
            writeln!(stdout, "query {name}: {query}")?;
        }
        writeln!(
            stdout,
            "shared network: {} transducers ({} unshared); \
             {} distinct of {} queries, {}/{} chain steps shared",
            set.degree(),
            set.unshared_degree(),
            report.distinct,
            report.queries,
            report.steps_shared,
            report.steps_total,
        )?;
        write!(stdout, "{}", set.spec().dump())?;
        return Ok(());
    }

    let mut input: Box<dyn Read> = match &file {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?,
        )),
        None => Box::new(stdin),
    };

    let trace = TraceSetup::build(options)?;
    let (stats, transducers) = if options.count {
        let mut counters: Vec<CountingSink> =
            (0..queries.len()).map(|_| CountingSink::new()).collect();
        let out = {
            let sinks = counters
                .iter_mut()
                .map(|c| c as &mut dyn spex_core::ResultSink)
                .collect();
            eval_multi(&set, options, &trace.tracer, &mut input, sinks)?
        };
        for (name, counter) in set.ids().iter().zip(&counters) {
            writeln!(stdout, "{name}\t{}", counter.results)?;
        }
        out
    } else if options.spans {
        let mut collectors: Vec<SpanCollector> =
            (0..queries.len()).map(|_| SpanCollector::new()).collect();
        let out = {
            let sinks = collectors
                .iter_mut()
                .map(|c| c as &mut dyn spex_core::ResultSink)
                .collect();
            eval_multi(&set, options, &trace.tracer, &mut input, sinks)?
        };
        for (name, collector) in set.ids().iter().zip(&collectors) {
            for start in &collector.starts {
                writeln!(stdout, "{name}\t{start}")?;
            }
        }
        out
    } else {
        // Progressive delivery, multiplexed: whole fragments (never partial
        // ones) are written as soon as each is decided, tagged with the
        // query name.
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared_out: Rc<RefCell<(&mut dyn Write, Option<std::io::Error>)>> =
            Rc::new(RefCell::new((stdout, None)));
        let mut sinks_store: Vec<TaggedSink<'_>> = set
            .ids()
            .iter()
            .map(|name| {
                let shared_out = Rc::clone(&shared_out);
                let prefix = format!("{name}\t");
                spex_core::FragmentFnSink::new(Box::new(move |fragment: &[u8]| {
                    let mut guard = shared_out.borrow_mut();
                    let (writer, error) = &mut *guard;
                    if error.is_some() {
                        return;
                    }
                    let outcome = writer
                        .write_all(prefix.as_bytes())
                        .and_then(|()| writer.write_all(fragment))
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    if let Err(e) = outcome {
                        *error = Some(e);
                    }
                }) as Box<dyn FnMut(&[u8])>)
            })
            .collect();
        let out = {
            let sinks = sinks_store
                .iter_mut()
                .map(|s| s as &mut dyn spex_core::ResultSink)
                .collect();
            eval_multi(&set, options, &trace.tracer, &mut input, sinks)?
        };
        drop(sinks_store);
        if let Some(e) = shared_out.borrow_mut().1.take() {
            return Err(e.into());
        }
        out
    };

    let outcome = report_outcome(options, &stats, &transducers, None, stderr);
    trace.finish(stderr)?;
    outcome
}

/// Drive the shared network over the input: the same zero-copy
/// `next_into`/`try_push_id` loop as the single-query evaluator, with a
/// session reset at every document boundary under `--stream` so infinite
/// document sequences stay bounded.
fn eval_multi(
    set: &spex_core::multi::SharedQuerySet,
    options: &Options,
    tracer: &Tracer,
    input: &mut dyn Read,
    sinks: Vec<&mut dyn spex_core::ResultSink>,
) -> Result<(EngineStats, Vec<TransducerStats>), CliError> {
    let _span = tracer.span("cli.evaluate");
    let mut run = set.run_engine_with_limits(options.engine, sinks, options.limits);
    run.set_tracer(tracer.clone());
    let reader = spex_xml::Reader::new(input).with_scanner(options.scanner);
    let mut reader = if options.stream {
        reader.multi_document()
    } else {
        reader
    };
    loop {
        match reader.next_into(run.store_mut()) {
            Ok(Some(id)) => {
                let end_of_document =
                    run.store().stored(id).kind == spex_xml::StoredKind::EndDocument;
                run.try_push_id(id).map_err(CliError::from)?;
                if end_of_document && options.stream {
                    run.reset_session();
                }
            }
            Ok(None) => break,
            Err(e) => return Err(e.into()),
        }
    }
    if tracer.enabled() {
        tracer.counter("xml.events", reader.events_emitted());
        tracer.counter("xml.bytes", reader.position().offset);
        tracer.counter("xml.faults", reader.faults().len() as u64);
    }
    Ok(run.finish_full())
}

type EvalOutcome = (EngineStats, Vec<TransducerStats>, Option<RunReport>);

fn evaluate(
    network: &CompiledNetwork,
    options: &Options,
    tracer: &Tracer,
    stdin: &mut dyn Read,
    sink: &mut dyn spex_core::ResultSink,
) -> Result<EvalOutcome, CliError> {
    let run = |input: &mut dyn std::io::Read,
               sink: &mut dyn spex_core::ResultSink|
     -> Result<EvalOutcome, CliError> {
        let _span = tracer.span("cli.evaluate");
        if options.recover != RecoveryPolicy::Strict {
            let recovery = RecoveryOptions {
                policy: options.recover,
                on_truncation: options.on_truncation,
                multi_document: options.stream,
                engine: options.engine,
                scanner: options.scanner,
            };
            let report = spex_core::evaluate_recovering_traced(
                network,
                input,
                recovery,
                options.limits,
                sink,
                tracer,
            )?;
            return Ok((
                report.stats.clone(),
                report.transducers.clone(),
                Some(report),
            ));
        }
        let mut eval = Evaluator::with_engine_limits(network, sink, options.engine, options.limits);
        eval.set_tracer(tracer.clone());
        let reader = spex_xml::Reader::new(input).with_scanner(options.scanner);
        let mut reader = if options.stream {
            reader.multi_document()
        } else {
            reader
        };
        // Zero-copy hot loop: events are parsed into the run's arena and
        // pushed by handle (no per-event allocation in steady state).
        eval.push_from(&mut reader).map_err(CliError::from)?;
        if tracer.enabled() {
            tracer.counter("xml.events", reader.events_emitted());
            tracer.counter("xml.bytes", reader.position().offset);
            tracer.counter("xml.faults", reader.faults().len() as u64);
        }
        let (stats, transducers) = eval.finish_full();
        Ok((stats, transducers, None))
    };
    match &options.file {
        Some(path) => {
            let file =
                std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let mut buffered = std::io::BufReader::new(file);
            run(&mut buffered, sink)
        }
        None => run(stdin, sink),
    }
}

/// The durable one-shot mode (`--checkpoint`/`--resume`): evaluation with a
/// run-state snapshot (DESIGN.md §15) written at every document boundary,
/// and/or restored before the first event. A killed `--checkpoint` run can
/// be re-run with `--resume` over the *same* input stream and delivers
/// exactly the fragments the interrupted run had not yet produced — the
/// consumed prefix is skipped byte-for-byte, so `interrupted output +
/// resumed output` is byte-identical to an uninterrupted run.
fn run_checkpointed(
    network: &CompiledNetwork,
    options: &Options,
    tracer: &Tracer,
    stdin: &mut dyn Read,
    sink: &mut dyn spex_core::ResultSink,
) -> Result<EvalOutcome, CliError> {
    let _span = tracer.span("cli.evaluate");
    let mut input: Box<dyn Read> = match &options.file {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?,
        )),
        None => Box::new(stdin),
    };

    let mut eval = Evaluator::with_engine_limits(network, sink, options.engine, options.limits);
    eval.set_tracer(tracer.clone());

    // Restore before the first event: decode the snapshot (structured
    // errors on corruption — never a panic), load the run state, and skip
    // the input prefix the interrupted run already consumed.
    let mut resume_state: Option<spex_core::SessionState> = None;
    if let Some(path) = &options.resume {
        let bytes = std::fs::read(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let snap = spex_core::Snapshot::decode(&bytes)
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let state = snap.session.clone().unwrap_or_default();
        let skipped = std::io::copy(
            &mut std::io::Read::take(&mut input, state.position.offset),
            &mut std::io::sink(),
        )?;
        if skipped != state.position.offset {
            return Err(CliError::Io(format!(
                "input is shorter ({skipped} bytes) than the {} bytes the \
                 snapshot already consumed — resume needs the same stream",
                state.position.offset
            )));
        }
        eval.restore(&snap)
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        resume_state = Some(state);
    }

    let reader = spex_xml::Reader::new(input).with_scanner(options.scanner);
    let mut reader = if options.stream {
        reader.multi_document()
    } else {
        reader
    };
    if let Some(state) = &resume_state {
        reader = reader.resume_at(state.reader_emitted, state.position, state.lt_consumed);
    }
    let mut documents = resume_state.as_ref().map_or(0, |s| s.documents);

    loop {
        match eval.push_step(&mut reader)? {
            Some(true) => {
                documents += 1;
                // The boundary reset makes the run quiescent (empty arena,
                // baseline symbols) — the precondition for `checkpoint()`.
                eval.reset_session();
                if let Some(path) = &options.checkpoint {
                    let mut snap = eval
                        .checkpoint()
                        .map_err(|e| CliError::Io(format!("checkpoint failed: {e}")))?;
                    let (reader_emitted, position, lt_consumed) = reader.resume_point();
                    snap.session = Some(spex_core::SessionState {
                        reader_emitted,
                        position,
                        lt_consumed,
                        documents,
                        ..spex_core::SessionState::default()
                    });
                    write_snapshot_file(path, &snap.encode())?;
                }
            }
            Some(false) => {}
            None => break,
        }
    }
    if tracer.enabled() {
        tracer.counter("xml.events", reader.events_emitted());
        tracer.counter("xml.bytes", reader.position().offset);
        tracer.counter("xml.faults", reader.faults().len() as u64);
    }
    let (stats, transducers) = eval.finish_full();
    Ok((stats, transducers, None))
}

/// Write a snapshot atomically: tmp file first, then rename — a crash
/// mid-write leaves the previous snapshot intact, never a torn one.
fn write_snapshot_file(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, bytes).map_err(|e| CliError::Io(format!("{tmp}: {e}")))?;
    std::fs::rename(&tmp, path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    Ok(())
}

fn generate(dataset: &str, scale: f64, stdout: &mut dyn Write) -> Result<(), CliError> {
    let mut w = spex_xml::Writer::with_options(
        std::io::BufWriter::new(stdout),
        spex_xml::WriteOptions {
            declaration: true,
            indent: None,
        },
    );
    match dataset {
        "mondial" => {
            for ev in spex_workloads::mondial() {
                w.write(&ev).map_err(CliError::from)?;
            }
        }
        "wordnet" => {
            for ev in spex_workloads::wordnet() {
                w.write(&ev).map_err(CliError::from)?;
            }
        }
        "dmoz-structure" => {
            for ev in spex_workloads::dmoz_structure(scale) {
                w.write(&ev).map_err(CliError::from)?;
            }
        }
        "dmoz-content" => {
            for ev in spex_workloads::dmoz_content(scale) {
                w.write(&ev).map_err(CliError::from)?;
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset `{other}` (try mondial, wordnet, dmoz-structure, dmoz-content)"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_basic() {
        let o = parse_args(&args(&["a.b", "file.xml"])).unwrap();
        assert_eq!(o.query.as_deref(), Some("a.b"));
        assert_eq!(o.file.as_deref(), Some("file.xml"));
        assert!(!o.count);
    }

    #[test]
    fn parse_flags() {
        let o = parse_args(&args(&[
            "--count", "--stats", "--xpath", "//a", "--scale", "0.5",
        ]))
        .unwrap();
        assert!(o.count && o.stats && o.xpath);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.query.as_deref(), Some("//a"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&["--scale"])).is_err());
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["a", "b", "c"])).is_err());
    }

    #[test]
    fn parse_engine() {
        assert_eq!(parse_args(&args(&["a"])).unwrap().engine, Engine::Vm);
        let o = parse_args(&args(&["--engine", "network", "a"])).unwrap();
        assert_eq!(o.engine, Engine::Network);
        let o = parse_args(&args(&["--engine=vm", "a"])).unwrap();
        assert_eq!(o.engine, Engine::Vm);
        assert!(parse_args(&args(&["--engine"])).is_err());
        assert!(parse_args(&args(&["--engine", "jit", "a"])).is_err());
    }

    #[test]
    fn parse_scanner() {
        assert_eq!(
            parse_args(&args(&["a"])).unwrap().scanner,
            ScannerKind::Fast
        );
        let o = parse_args(&args(&["--scanner", "classic", "a"])).unwrap();
        assert_eq!(o.scanner, ScannerKind::Classic);
        let o = parse_args(&args(&["--scanner=fast", "a"])).unwrap();
        assert_eq!(o.scanner, ScannerKind::Fast);
        assert!(parse_args(&args(&["--scanner"])).is_err());
        assert!(parse_args(&args(&["--scanner", "simd", "a"])).is_err());
    }

    fn run_cli(argv: &[&str], input: &str) -> (i32, String, String) {
        let o = parse_args(&args(argv)).unwrap();
        let mut stdin = input.as_bytes();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&o, &mut stdin, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    #[test]
    fn evaluate_from_stdin() {
        let (code, out, _) = run_cli(&["a.c"], "<a><a><c/></a><b/><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c></c>\n");
    }

    #[test]
    fn engines_agree_on_output_and_stats() {
        let xml = "<a><a><c/></a><b/><c/></a>";
        for argv in [
            vec!["a.c"],
            vec!["--count", "_*._"],
            vec!["--stats", "_*.a[b].c"],
        ] {
            let mut vm_argv = vec!["--engine", "vm"];
            vm_argv.extend(&argv);
            let mut net_argv = vec!["--engine", "network"];
            net_argv.extend(&argv);
            let (vc, vo, ve) = run_cli(&vm_argv, xml);
            let (nc, no, ne) = run_cli(&net_argv, xml);
            assert_eq!((vc, &vo, &ve), (nc, &no, &ne), "argv {argv:?}");
        }
    }

    #[test]
    fn count_mode() {
        let (code, out, _) = run_cli(&["--count", "_*._"], "<a><b/><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "3");
    }

    #[test]
    fn spans_mode() {
        let (code, out, _) = run_cli(&["--spans", "a.c"], "<a><a><c/></a><b/><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "8");
    }

    #[test]
    fn explain_mode() {
        let (code, out, _) = run_cli(&["--explain", "_*.a[b].c"], "");
        assert_eq!(code, 0);
        assert!(out.contains("VC(q0)"));
        assert!(out.contains("transducers"));
    }

    #[test]
    fn xpath_mode() {
        let (code, out, _) = run_cli(&["--xpath", "//a[b]/c"], "<a><a><c/></a><b/><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c></c>\n");
    }

    #[test]
    fn stats_to_stderr() {
        let (code, _, err) = run_cli(&["--stats", "a"], "<a/>");
        assert_eq!(code, 0);
        assert!(err.contains("events: 4"));
    }

    #[test]
    fn parse_limit_flags() {
        let o = parse_args(&args(&[
            "--limit-depth",
            "3",
            "--limit-buffered",
            "100",
            "--limit-candidates",
            "5",
            "--limit-formula",
            "8",
            "--limit-messages",
            "1000",
            "a",
        ]))
        .unwrap();
        assert_eq!(o.limits.max_stream_depth, Some(3));
        assert_eq!(o.limits.max_buffered_events, Some(100));
        assert_eq!(o.limits.max_live_candidates, Some(5));
        assert_eq!(o.limits.max_formula_size, Some(8));
        assert_eq!(o.limits.max_total_messages, Some(1000));
        assert!(parse_args(&args(&["--limit-depth"])).is_err());
        assert!(parse_args(&args(&["--limit-depth", "x"])).is_err());
    }

    #[test]
    fn stats_json_to_stderr() {
        let (code, out, err) = run_cli(&["--stats-json", "a.c"], "<a><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c></c>\n");
        let json = err.trim();
        assert!(json.starts_with('{') && json.ends_with('}'), "got {json}");
        assert!(json.contains("\"ticks\":6"));
        assert!(json.contains("\"transducers\":["));
        assert!(json.contains("\"kind\":\"CH(c)\""));
        // Per-transducer message counts sum to the global count.
        let global: u64 = json
            .split("\"messages\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let per_node: u64 = json
            .split("\"transducers\":")
            .nth(1)
            .unwrap()
            .split("\"messages\":")
            .skip(1)
            .map(|s| {
                s.split(',')
                    .next()
                    .unwrap()
                    .trim_end_matches(&['}', ']'][..])
            })
            .map(|s| s.parse::<u64>().unwrap())
            .sum();
        assert_eq!(per_node, global, "in {json}");
    }

    #[test]
    fn limit_breach_reports_error_after_flushing_determined_results() {
        // Depth cap of 3 aborts at <d>; the <c> result at depth 3 was
        // already determined and delivered before the abort.
        let (code, out, err) =
            run_cli(&["--limit-depth", "3", "a.c"], "<a><c>1</c><b><d/></b></a>");
        assert_eq!(code, 4);
        assert_eq!(out, "<c>1</c>\n");
        assert!(
            err.contains("resource limit exceeded: stream-depth 4 > limit 3"),
            "got {err}"
        );
        // The same stream passes untouched without the cap.
        let (code, out, _) = run_cli(&["a.c"], "<a><c>1</c><b><d/></b></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c>1</c>\n");
    }

    #[test]
    fn bad_query_reports_error() {
        let (code, _, err) = run_cli(&["a..b"], "<a/>");
        assert_eq!(code, 1);
        assert!(err.contains("parse error"));
    }

    #[test]
    fn bad_xml_reports_error() {
        let (code, _, err) = run_cli(&["a"], "<a><b></a>");
        assert_eq!(code, 2);
        assert!(err.contains("mismatched"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, out, _) = run_cli(&["--help"], "");
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn generate_mondial_is_valid_xml() {
        let o = parse_args(&args(&["--generate", "mondial"])).unwrap();
        let mut stdin = "".as_bytes();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&o, &mut stdin, &mut out, &mut err);
        assert_eq!(code, 0);
        let xml = String::from_utf8(out).unwrap();
        assert!(xml.starts_with("<?xml"));
        let stats = spex_xml::StreamStats::of_str(&xml).unwrap();
        assert!(stats.elements > 20_000);
    }

    #[test]
    fn generate_unknown_dataset_fails() {
        let o = parse_args(&args(&["--generate", "nope"])).unwrap();
        let mut stdin = "".as_bytes();
        let (mut out, mut err) = (Vec::new(), Vec::new());
        assert_eq!(run(&o, &mut stdin, &mut out, &mut err), 1);
    }

    #[test]
    fn stream_mode_accepts_document_sequences() {
        let (code, out, _) = run_cli(&["--stream", "r.x"], "<r><x>1</x></r><r><x>2</x></r>");
        assert_eq!(code, 0);
        assert_eq!(out, "<x>1</x>\n<x>2</x>\n");
        // Without --stream the same input is an error.
        let (code, _, err) = run_cli(&["r.x"], "<r><x>1</x></r><r><x>2</x></r>");
        assert_eq!(code, 2);
        assert!(err.contains("after the root element"));
    }

    #[test]
    fn parse_recovery_flags() {
        let o = parse_args(&args(&["--recover", "repair", "a"])).unwrap();
        assert_eq!(o.recover, RecoveryPolicy::Repair);
        let o = parse_args(&args(&["--recover=skip-subtree", "a"])).unwrap();
        assert_eq!(o.recover, RecoveryPolicy::SkipSubtree);
        let o = parse_args(&args(&["--on-truncation", "force-false", "a"])).unwrap();
        assert_eq!(o.on_truncation, TruncationOutcome::ForceFalse);
        let o = parse_args(&args(&["--on-truncation=drop", "a"])).unwrap();
        assert_eq!(o.on_truncation, TruncationOutcome::Drop);
        assert!(parse_args(&args(&["--recover", "bogus"])).is_err());
        assert!(parse_args(&args(&["--recover"])).is_err());
        assert!(parse_args(&args(&["--on-truncation", "bogus"])).is_err());
    }

    #[test]
    fn repair_mode_recovers_instead_of_failing() {
        // Strict: exit 2. Repair: the stray close is dropped, the clean
        // sibling subtree's result survives, and a summary goes to stderr.
        let xml = "<r><a><b/></a><x></nope></x></r>";
        let (code, _, _) = run_cli(&["r.a"], xml);
        assert_eq!(code, 2);
        let (code, out, err) = run_cli(&["--recover", "repair", "r.a"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "<a><b></b></a>\n");
        assert!(err.contains("recovered 1 input fault(s)"), "got {err}");
    }

    #[test]
    fn repair_mode_on_clean_input_matches_strict_output() {
        let xml = "<a><a><c/></a><b/><c/></a>";
        let strict = run_cli(&["a.c"], xml);
        let repair = run_cli(&["--recover", "repair", "a.c"], xml);
        assert_eq!(strict, repair);
        assert_eq!(repair.0, 0);
        assert_eq!(repair.2, "", "no fault summary on a clean stream");
    }

    #[test]
    fn truncation_outcome_is_honoured() {
        let xml = "<a><c/><b><x/>";
        let (code, out, err) = run_cli(&["--recover", "repair", "a.b"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "", "Drop withholds the undetermined candidate");
        assert!(err.contains("(stream truncated)"), "got {err}");
        let (code, out, _) = run_cli(
            &[
                "--recover",
                "repair",
                "--on-truncation",
                "force-false",
                "a.b",
            ],
            xml,
        );
        assert_eq!(code, 0);
        assert_eq!(out, "<b><x></x></b>\n");
    }

    #[test]
    fn recovery_works_with_count_and_spans_sinks() {
        let xml = "<r><a><b/></a><x></nope></x></r>";
        let (code, out, _) = run_cli(&["--recover", "repair", "--count", "r.a"], xml);
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "1");
        let (code, out, _) = run_cli(&["--recover", "repair", "--spans", "r.a"], xml);
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "2");
    }

    #[test]
    fn stats_json_gains_faults_section_only_when_recovering() {
        let xml = "<r><a><b/></a><x></nope></x></r>";
        let (_, _, err) = run_cli(&["--recover", "repair", "--stats-json", "r.a"], xml);
        let json = err.lines().next().unwrap();
        assert!(json.contains("\"faults\":{\"total\":1"), "got {json}");
        assert!(
            json.contains("\"by_kind\":{\"stray-close\":1}"),
            "got {json}"
        );
        assert!(json.contains("\"delivered\":1"), "got {json}");
        assert!(json.contains("\"quarantined\":0"), "got {json}");
        assert!(
            json.contains("\"first\":{\"kind\":\"stray-close\",\"offset\":19,"),
            "got {json}"
        );
        // Strict runs emit byte-identical JSON with no faults key.
        let (_, _, err) = run_cli(&["--stats-json", "a.c"], "<a><c/></a>");
        assert!(!err.contains("\"faults\""), "got {err}");
    }

    #[test]
    fn recovered_limit_breach_still_exits_4() {
        let (code, _, err) = run_cli(
            &["--recover", "repair", "--limit-depth", "2", "a.c"],
            "<a><b><c/></b></a>",
        );
        assert_eq!(code, 4);
        assert!(err.contains("resource limit exceeded"), "got {err}");
    }

    #[test]
    fn skip_subtree_mode_discards_the_damaged_element() {
        // Garbage markup inside <x>: SkipSubtree drops the whole <x>
        // subtree and the sibling <a> result survives.
        let xml = "<r><a><b/></a><x><!bogus </x></r>";
        let (code, out, _) = run_cli(&["--recover", "skip-subtree", "r.a"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "<a><b></b></a>\n");
    }

    #[test]
    fn multi_query_prefixes_results_with_names() {
        let xml = "<a><c>1</c><b><c>2</c></b></a>";
        let (code, out, _) = run_cli(&["--query", "cs=_*.c", "--query", "bs=_*.b"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "cs\t<c>1</c>\ncs\t<c>2</c>\nbs\t<b><c>2</c></b>\n");
    }

    #[test]
    fn multi_query_count_and_spans_modes() {
        let xml = "<a><c>1</c><b><c>2</c></b></a>";
        // Summary rows come out in the combiner's canonical (name-sorted)
        // order, not registration order — the same order `spex serve`
        // reports for a shared plan.
        let (code, out, _) = run_cli(&["--count", "--query=cs=_*.c", "--query=bs=_*.b"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "bs\t1\ncs\t2\n");
        let (code, out, _) = run_cli(&["--spans", "--query", "cs=_*.c"], xml);
        assert_eq!(code, 0);
        assert_eq!(out, "cs\t2\ncs\t6\n");
    }

    #[test]
    fn multi_query_explain_shows_sharing() {
        let (code, out, _) = run_cli(
            &["--explain", "--query", "x=_*.a.b", "--query", "y=_*.a.c"],
            "",
        );
        assert_eq!(code, 0);
        assert!(out.contains("query x: "), "got {out}");
        assert!(out.contains("shared network"), "got {out}");
    }

    #[test]
    fn multi_query_usage_errors() {
        // Not NAME=EXPR.
        let (code, _, err) = run_cli(&["--query", "nope"], "<a/>");
        assert_eq!(code, 1);
        assert!(err.contains("NAME=EXPR"), "got {err}");
        // Duplicate name.
        let (code, _, err) = run_cli(&["--query", "q=a", "--query", "q=b"], "<a/>");
        assert_eq!(code, 1);
        assert!(err.contains("twice"), "got {err}");
        // Bad expression.
        let (code, _, _) = run_cli(&["--query", "q=a..b"], "<a/>");
        assert_eq!(code, 1);
        // Incompatible flags.
        let (code, _, _) = run_cli(&["--xpath", "--query", "q=a"], "<a/>");
        assert_eq!(code, 1);
        let (code, _, err) = run_cli(&["--recover", "repair", "--query", "q=a"], "<a/>");
        assert_eq!(code, 1);
        assert!(err.contains("spex serve"), "got {err}");
    }

    #[test]
    fn multi_query_stream_mode_and_limits() {
        let (code, out, _) = run_cli(
            &["--stream", "--query", "q=r.x"],
            "<r><x>1</x></r><r><x>2</x></r>",
        );
        assert_eq!(code, 0);
        assert_eq!(out, "q\t<x>1</x>\nq\t<x>2</x>\n");
        let (code, _, err) = run_cli(
            &["--limit-depth", "2", "--query", "q=_*.c"],
            "<a><b><c/></b></a>",
        );
        assert_eq!(code, 4);
        assert!(err.contains("resource limit exceeded"), "got {err}");
    }

    #[test]
    fn trace_summary_goes_to_stderr() {
        let (code, out, err) = run_cli(&["--trace-summary", "a.c"], "<a><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c></c>\n");
        assert!(err.contains("trace summary:"), "got {err}");
        assert!(err.contains("engine.determination_latency"), "got {err}");
        assert!(err.contains("xml.events"), "got {err}");
        assert!(err.contains("cli.evaluate"), "got {err}");
    }

    #[test]
    fn trace_jsonl_writes_schema_valid_lines() {
        let dir = std::env::temp_dir().join("spex-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let (code, out, _) = run_cli(&["--trace-jsonl", &path_str, "a.c"], "<a><c/></a>");
        assert_eq!(code, 0);
        assert_eq!(out, "<c></c>\n");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(
                line.starts_with("{\"t\":\"") && line.ends_with('}'),
                "bad record: {line}"
            );
        }
        assert!(text.contains("\"t\":\"hist\""), "got {text}");
        assert!(text.contains("engine.determination_latency"), "got {text}");
        assert!(text.contains("\"xml.events\""), "got {text}");
        // `--trace-jsonl=PATH` spelling parses too.
        let o = parse_args(&args(&[&format!("--trace-jsonl={path_str}"), "a"])).unwrap();
        assert_eq!(o.trace_jsonl.as_deref(), Some(path_str.as_str()));
        assert!(parse_args(&args(&["--trace-jsonl"])).is_err());
    }

    #[test]
    fn trace_works_under_recovery_and_multi_query() {
        let xml = "<r><a><b/></a><x></nope></x></r>";
        let (code, _, err) = run_cli(&["--recover", "repair", "--trace-summary", "r.a"], xml);
        assert_eq!(code, 0);
        assert!(err.contains("xml.faults"), "got {err}");
        let (code, _, err) = run_cli(&["--trace-summary", "--query", "q=_*.c"], "<a><c/></a>");
        assert_eq!(code, 0);
        assert!(err.contains("trace summary:"), "got {err}");
        assert!(err.contains("engine.determination_latency"), "got {err}");
    }

    /// An interrupted `--checkpoint` run plus a `--resume` run over the
    /// same stream reproduces the uninterrupted output byte-for-byte.
    #[test]
    fn checkpoint_then_resume_reproduces_the_tail() {
        let dir = std::env::temp_dir().join(format!("spex-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("run.snapshot");
        let snap_str = snap.to_str().unwrap().to_string();
        let xml = "<r><x>1</x></r><r><x>2</x></r><r><x>3</x></r>";
        let (code, full, _) = run_cli(&["--stream", "r.x"], xml);
        assert_eq!(code, 0);

        for engine in ["vm", "network"] {
            // "Crash" after two documents: run only that prefix.
            let cut = xml.len() / 3 * 2;
            let (code, head, _) = run_cli(
                &[
                    "--stream",
                    "--engine",
                    engine,
                    "--checkpoint",
                    &snap_str,
                    "r.x",
                ],
                &xml[..cut],
            );
            assert_eq!(code, 0);
            assert_eq!(head, "<x>1</x>\n<x>2</x>\n");
            // Resume over the FULL stream: the consumed prefix is skipped.
            let (code, tail, _) = run_cli(
                &["--stream", "--engine", engine, "--resume", &snap_str, "r.x"],
                xml,
            );
            assert_eq!(code, 0);
            assert_eq!(tail, "<x>3</x>\n");
            assert_eq!(format!("{head}{tail}"), full, "engine {engine}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Snapshots are engine-portable: a checkpoint taken under one engine
    /// resumes under the other.
    #[test]
    fn checkpoint_resumes_across_engines() {
        let dir = std::env::temp_dir().join(format!("spex-cli-ckpt-x-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("run.snapshot");
        let snap_str = snap.to_str().unwrap().to_string();
        let xml = "<r><x>a</x></r><r><x>b</x></r>";
        let (code, head, _) = run_cli(
            &[
                "--stream",
                "--engine",
                "vm",
                "--checkpoint",
                &snap_str,
                "r.x",
            ],
            &xml[..xml.len() / 2],
        );
        assert_eq!(code, 0);
        assert_eq!(head, "<x>a</x>\n");
        let (code, tail, _) = run_cli(
            &[
                "--stream", "--engine", "network", "--resume", &snap_str, "r.x",
            ],
            xml,
        );
        assert_eq!(code, 0);
        assert_eq!(tail, "<x>b</x>\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corrupt or truncated snapshot bytes are a structured I/O failure
    /// (exit 3), never a panic; so is resuming past the end of the input.
    #[test]
    fn resume_rejects_corrupt_snapshots_and_short_input() {
        let dir = std::env::temp_dir().join(format!("spex-cli-ckpt-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("run.snapshot");
        let snap_str = snap.to_str().unwrap().to_string();
        let xml = "<r><x>1</x></r><r><x>2</x></r>";
        let (code, _, _) = run_cli(&["--stream", "--checkpoint", &snap_str, "r.x"], xml);
        assert_eq!(code, 0);

        // Bit flip in the payload → CRC failure.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        let (code, _, err) = run_cli(&["--stream", "--resume", &snap_str, "r.x"], xml);
        assert_eq!(code, 3, "stderr: {err}");

        // Truncation → structured decode error.
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &bytes[..bytes.len().min(9)]).unwrap();
        let (code, _, _) = run_cli(&["--stream", "--resume", &snap_str, "r.x"], xml);
        assert_eq!(code, 3);

        // A good snapshot against a shorter stream than it consumed.
        let (code, _, _) = run_cli(&["--stream", "--checkpoint", &snap_str, "r.x"], xml);
        assert_eq!(code, 0);
        let (code, _, err) = run_cli(&["--stream", "--resume", &snap_str, "r.x"], "<r/>");
        assert_eq!(code, 3);
        assert!(err.contains("same stream"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flag_conflicts_are_usage_errors() {
        for argv in [
            vec!["--checkpoint", "/tmp/s", "--query", "q=a"],
            vec!["--resume", "/tmp/s", "--recover", "repair", "a"],
            vec!["--checkpoint", "/tmp/s", "--count", "a"],
            vec!["--resume", "/tmp/s", "--spans", "a"],
        ] {
            let (code, _, err) = run_cli(&argv, "<a/>");
            assert_eq!(code, 1, "argv {argv:?}: {err}");
        }
        // `--checkpoint=PATH` / `--resume=PATH` spellings parse.
        let o = parse_args(&args(&["--checkpoint=/tmp/s", "--resume=/tmp/r", "a"])).unwrap();
        assert_eq!(o.checkpoint.as_deref(), Some("/tmp/s"));
        assert_eq!(o.resume.as_deref(), Some("/tmp/r"));
        assert!(parse_args(&args(&["--checkpoint"])).is_err());
        assert!(parse_args(&args(&["--resume"])).is_err());
    }

    #[test]
    fn file_input_and_missing_file() {
        let dir = std::env::temp_dir().join("spex-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.xml");
        std::fs::write(&path, "<a><c/></a>").unwrap();
        let (code, out, _) = run_cli(&["a.c", path.to_str().unwrap()], "");
        assert_eq!(code, 0);
        assert_eq!(out.trim(), "<c></c>");
        let (code, _, err) = run_cli(&["a.c", "/nonexistent/x.xml"], "");
        assert_eq!(code, 3);
        assert!(err.contains("x.xml"));
    }
}
