//! Multi-query boolean document filtering (the XFilter/YFilter stand-in).
//!
//! "The XFilter and YFilter engines are used for deciding if entire XML
//! documents are matched by XPath expressions that represent user profiles.
//! Therefore, they are not focused on answering XPath expressions" (§VIII).
//! [`FilterSet`] registers many queries and decides, in a single pass over
//! one document, which of them match — the selective-dissemination-of-
//! information (SDI) scenario of the paper's introduction.
//!
//! Like YFilter, the structure-only fragment is handled natively (via the
//! [`crate::stream_nfa`] automata); queries with qualifiers are supported by
//! delegating each to a SPEX-style check is *not* done here — they are
//! rejected, making the comparison with SPEX (which handles them in-stream)
//! explicit in the multi-query benchmark E12.

use crate::stream_nfa::{QualifiersUnsupported, StreamNfa};
use spex_query::Rpeq;
use spex_xml::XmlEvent;

/// A set of boolean filter queries evaluated together over one stream pass.
pub struct FilterSet {
    queries: Vec<(String, StreamNfa)>,
}

impl FilterSet {
    /// An empty filter set.
    pub fn new() -> Self {
        FilterSet {
            queries: Vec::new(),
        }
    }

    /// Register a profile query under `id`.
    pub fn add(
        &mut self,
        id: impl Into<String>,
        query: &Rpeq,
    ) -> Result<(), QualifiersUnsupported> {
        let nfa = StreamNfa::compile(query)?;
        self.queries.push((id.into(), nfa));
        Ok(())
    }

    /// Number of registered profiles.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// One pass over `events`: the ids of all matching profiles, in
    /// registration order.
    ///
    /// All automata advance simultaneously on a shared stack (one frame per
    /// open element holding every automaton's state set); a profile is
    /// reported as soon as its accepting state is reached and then stops
    /// being tracked.
    pub fn matching<'a>(&self, events: impl IntoIterator<Item = &'a XmlEvent>) -> Vec<String> {
        let n = self.queries.len();
        let mut matched = vec![false; n];
        let mut remaining = n;
        // stack[depth][query] = state set.
        let mut stack: Vec<Vec<Vec<bool>>> = Vec::new();
        for ev in events {
            if remaining == 0 {
                break;
            }
            match ev {
                XmlEvent::StartDocument => {
                    let frame: Vec<Vec<bool>> = self
                        .queries
                        .iter()
                        .map(|(_, nfa)| nfa.initial_states())
                        .collect();
                    stack.push(frame);
                }
                XmlEvent::EndDocument => {
                    stack.pop();
                }
                XmlEvent::StartElement { name, .. } => {
                    let top = match stack.last() {
                        Some(t) => t.clone(),
                        None => self
                            .queries
                            .iter()
                            .map(|(_, nfa)| nfa.initial_states())
                            .collect(),
                    };
                    let mut frame = Vec::with_capacity(n);
                    for (qi, (states, (_, nfa))) in
                        top.into_iter().zip(self.queries.iter()).enumerate()
                    {
                        if matched[qi] {
                            frame.push(Vec::new());
                            continue;
                        }
                        let next = nfa.advance_closed(&states, name);
                        if nfa.accepts(&next) {
                            matched[qi] = true;
                            remaining -= 1;
                        }
                        frame.push(next);
                    }
                    stack.push(frame);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        self.queries
            .iter()
            .enumerate()
            .filter(|(i, _)| matched[*i])
            .map(|(_, (id, _))| id.clone())
            .collect()
    }
}

impl Default for FilterSet {
    fn default() -> Self {
        FilterSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::reader::parse_events;

    fn set(queries: &[(&str, &str)]) -> FilterSet {
        let mut s = FilterSet::new();
        for (id, q) in queries {
            s.add(*id, &q.parse().unwrap()).unwrap();
        }
        s
    }

    #[test]
    fn profiles_match_independently() {
        let s = set(&[("p1", "_*.b"), ("p2", "_*.z"), ("p3", "a.c"), ("p4", "c.a")]);
        let events = parse_events("<a><a><c/></a><b/><c/></a>").unwrap();
        assert_eq!(s.matching(&events), vec!["p1", "p3"]);
    }

    #[test]
    fn empty_set_matches_nothing() {
        let s = FilterSet::new();
        assert!(s.is_empty());
        let events = parse_events("<a/>").unwrap();
        assert!(s.matching(&events).is_empty());
    }

    #[test]
    fn early_exit_when_all_matched() {
        let s = set(&[("p", "_")]);
        // Matches at the root element; the rest of the stream is skipped
        // (observable only via timing, but at least it must not crash).
        let events = parse_events("<a><b/><c/></a>").unwrap();
        assert_eq!(s.matching(&events), vec!["p"]);
    }

    #[test]
    fn qualified_queries_rejected() {
        let mut s = FilterSet::new();
        assert!(s.add("p", &"a[b]".parse().unwrap()).is_err());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn many_profiles_one_pass() {
        let mut s = FilterSet::new();
        for i in 0..100 {
            s.add(
                format!("q{i}"),
                &format!("_*.tag{}", i % 10).parse().unwrap(),
            )
            .unwrap();
        }
        let events = parse_events("<r><tag3/><x><tag7/></x></r>").unwrap();
        let hits = s.matching(&events);
        assert_eq!(hits.len(), 20); // q3, q13, …, q93 and q7, q17, …
        assert!(hits.contains(&"q3".to_string()));
        assert!(hits.contains(&"q97".to_string()));
    }
}
