//! Automaton-based in-memory evaluation (the Fxgrep stand-in).
//!
//! The rpeq is compiled — Thompson-style — into an NFA whose alphabet is
//! *child steps* (tree edges labelled with element names); qualifiers become
//! predicate transitions gated by a recursive run of the qualifier's
//! sub-automaton. The automaton is then run down the materialized document
//! tree: a node is selected iff the state set reached at it contains the
//! accepting state.
//!
//! Same complexity class as the [`crate::dom`] evaluator (Θ(document)
//! memory), but a genuinely different algorithm — useful both as a second
//! baseline for the Fig. 14 experiments and as an independent implementation
//! for differential testing of the SPEX engine.

use spex_query::{Label, Rpeq};
use spex_xml::{Document, NodeId, NodeKind};
use std::rc::Rc;

#[derive(Debug, Clone)]
enum Trans {
    /// ε-transition.
    Eps(usize),
    /// Consume one child step with a matching label.
    Step(Label, usize),
    /// Pass iff the qualifier automaton matches at the current node.
    Pred(Rc<Nfa>, usize),
}

/// A compiled automaton.
#[derive(Debug, Default)]
pub struct Nfa {
    /// transitions[state] — outgoing transitions.
    transitions: Vec<Vec<Trans>>,
    start: usize,
    accept: usize,
}

impl Nfa {
    fn new_state(&mut self) -> usize {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    /// Compile a query into an automaton.
    pub fn compile(query: &Rpeq) -> Nfa {
        let mut nfa = Nfa::default();
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        build(&mut nfa, query, start, accept);
        nfa
    }

    /// Number of states (for size/complexity assertions).
    pub fn states(&self) -> usize {
        self.transitions.len()
    }
}

/// Wire `expr` between `from` and `to`.
fn build(nfa: &mut Nfa, expr: &Rpeq, from: usize, to: usize) {
    match expr {
        Rpeq::Empty => nfa.transitions[from].push(Trans::Eps(to)),
        Rpeq::Step(l) => nfa.transitions[from].push(Trans::Step(l.clone(), to)),
        // Closures get a private loop state: the construction invariant is
        // that `build` never adds transitions *out of* `to`, so sub-automata
        // sharing a target state (unions, concatenation contexts) cannot
        // leak into each other.
        Rpeq::Plus(l) => {
            let m = nfa.new_state();
            nfa.transitions[from].push(Trans::Step(l.clone(), m));
            nfa.transitions[m].push(Trans::Step(l.clone(), m));
            nfa.transitions[m].push(Trans::Eps(to));
        }
        Rpeq::Star(l) => {
            let m = nfa.new_state();
            nfa.transitions[from].push(Trans::Eps(m));
            nfa.transitions[m].push(Trans::Step(l.clone(), m));
            nfa.transitions[m].push(Trans::Eps(to));
        }
        Rpeq::Optional(e) => {
            nfa.transitions[from].push(Trans::Eps(to));
            build(nfa, e, from, to);
        }
        Rpeq::Union(a, b) => {
            build(nfa, a, from, to);
            build(nfa, b, from, to);
        }
        Rpeq::Concat(a, b) => {
            let mid = nfa.new_state();
            build(nfa, a, from, mid);
            build(nfa, b, mid, to);
        }
        Rpeq::Qualified(e, q) => {
            let mid = nfa.new_state();
            build(nfa, e, from, mid);
            let sub = Rc::new(Nfa::compile(q));
            nfa.transitions[mid].push(Trans::Pred(sub, to));
        }
        Rpeq::Following(_) | Rpeq::Preceding(_) => {
            panic!(
                "the tree-NFA baseline covers the paper's core rpeq only; \
                    `following::`/`preceding::` are SPEX-engine extensions"
            )
        }
    }
}

/// Tree-NFA evaluator. See the [module documentation](self).
pub struct TreeNfaEvaluator<'d> {
    doc: &'d Document,
}

impl<'d> TreeNfaEvaluator<'d> {
    /// Wrap a document.
    pub fn new(doc: &'d Document) -> Self {
        TreeNfaEvaluator { doc }
    }

    /// Evaluate `query` from the document root; selected nodes come out in
    /// document order (the traversal is a depth-first left-to-right walk).
    pub fn evaluate(&self, query: &Rpeq) -> Vec<NodeId> {
        let nfa = Nfa::compile(query);
        let mut selected = Vec::new();
        let mut states = vec![false; nfa.states()];
        states[nfa.start] = true;
        self.close(&nfa, NodeId::ROOT, &mut states);
        if states[nfa.accept] {
            selected.push(NodeId::ROOT);
        }
        self.walk(&nfa, NodeId::ROOT, &states, &mut selected);
        selected
    }

    /// Evaluate and serialize fragments (same shape as the SPEX engine and
    /// the DOM oracle).
    pub fn evaluate_fragments(&self, query: &Rpeq) -> Vec<String> {
        self.evaluate(query)
            .into_iter()
            .map(|n| self.doc.subtree_string(n))
            .collect()
    }

    /// ε/predicate closure of `states` at `node`.
    fn close(&self, nfa: &Nfa, node: NodeId, states: &mut [bool]) {
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..states.len() {
                if !states[s] {
                    continue;
                }
                for t in &nfa.transitions[s] {
                    match t {
                        Trans::Eps(to) => {
                            if !states[*to] {
                                states[*to] = true;
                                changed = true;
                            }
                        }
                        Trans::Pred(sub, to) => {
                            if !states[*to] && self.qualifier_holds(sub, node) {
                                states[*to] = true;
                                changed = true;
                            }
                        }
                        Trans::Step(..) => {}
                    }
                }
            }
        }
    }

    /// Does the qualifier automaton select any node starting from `node`?
    fn qualifier_holds(&self, nfa: &Nfa, node: NodeId) -> bool {
        let mut states = vec![false; nfa.states()];
        states[nfa.start] = true;
        self.close(nfa, node, &mut states);
        if states[nfa.accept] {
            return true;
        }
        self.any_descendant_accepts(nfa, node, &states)
    }

    fn any_descendant_accepts(&self, nfa: &Nfa, node: NodeId, states: &[bool]) -> bool {
        for child in self.doc.child_elements(node) {
            let mut next = self.advance(nfa, states, child);
            if next.iter().any(|b| *b) {
                self.close(nfa, child, &mut next);
                if next[nfa.accept] {
                    return true;
                }
                if self.any_descendant_accepts(nfa, child, &next) {
                    return true;
                }
            }
        }
        false
    }

    /// Consume the step to `child`: all `Step` transitions with a matching
    /// label fire.
    fn advance(&self, nfa: &Nfa, states: &[bool], child: NodeId) -> Vec<bool> {
        let mut next = vec![false; nfa.states()];
        let name = match self.doc.kind(child) {
            NodeKind::Element { name, .. } => name,
            _ => return next,
        };
        for (s, active) in states.iter().enumerate() {
            if !active {
                continue;
            }
            for t in &nfa.transitions[s] {
                if let Trans::Step(l, to) = t {
                    if l.matches(name) {
                        next[*to] = true;
                    }
                }
            }
        }
        next
    }

    fn walk(&self, nfa: &Nfa, node: NodeId, states: &[bool], selected: &mut Vec<NodeId>) {
        for child in self.doc.child_elements(node) {
            let mut next = self.advance(nfa, states, child);
            if !next.iter().any(|b| *b) {
                continue;
            }
            self.close(nfa, child, &mut next);
            if next[nfa.accept] {
                selected.push(child);
            }
            self.walk(nfa, child, &next, selected);
        }
    }
}

/// Convenience: parse, materialize, evaluate, serialize.
pub fn evaluate_str(query: &str, xml: &str) -> Result<Vec<String>, String> {
    let q: Rpeq = query.parse().map_err(|e| format!("{e}"))?;
    let doc = Document::parse_str(xml).map_err(|e| format!("{e}"))?;
    Ok(TreeNfaEvaluator::new(&doc).evaluate_fragments(&q))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    fn frags(query: &str, xml: &str) -> Vec<String> {
        evaluate_str(query, xml).unwrap()
    }

    #[test]
    fn paper_examples() {
        assert_eq!(frags("a.c", FIG1), vec!["<c></c>"]);
        assert_eq!(frags("a+.c+", FIG1), vec!["<c></c>", "<c></c>"]);
        assert_eq!(frags("_*.a[b].c", FIG1), vec!["<c></c>"]);
    }

    #[test]
    fn agrees_with_dom_oracle_on_fixed_cases() {
        let xml = "<r><a><b/><c><b/></c></a><b/><d><a><b/></a></d></r>";
        for q in [
            "%",
            "_",
            "_*",
            "_*._",
            "r.a.b",
            "_*.b",
            "r._.b",
            "a|r",
            "r.(a|d).b",
            "r.a?.b",
            "r.a*.b",
            "_*.a[b]",
            "_*.a[b]._*.b",
            "r[a].b",
            "_*.c[b]",
            "r.d.a[b].b",
            "_*[b]",
            "r.a[_*.b[nope]]",
        ] {
            let query: Rpeq = q.parse().unwrap();
            let doc = Document::parse_str(xml).unwrap();
            let dom = crate::dom::DomEvaluator::new(&doc).evaluate(&query);
            let nfa = TreeNfaEvaluator::new(&doc).evaluate(&query);
            assert_eq!(dom, nfa, "disagreement on query {q}");
        }
    }

    #[test]
    fn closure_requires_chains() {
        let xml = "<a><a><b/></a><x><b/></x></a>";
        assert_eq!(frags("a+.b", xml), vec!["<b></b>"]);
    }

    #[test]
    fn nfa_size_linear_in_query() {
        for n in [1usize, 2, 4, 8, 16] {
            let q: Rpeq = (0..n)
                .map(|i| format!("s{i}"))
                .collect::<Vec<_>>()
                .join(".")
                .parse()
                .unwrap();
            let nfa = Nfa::compile(&q);
            assert!(nfa.states() <= 2 * n + 2);
        }
    }

    #[test]
    fn closure_loops_do_not_leak_into_sibling_branches() {
        // Regression: `(a*|c)` must not allow "c then a" — the closure loop
        // lives on a private state, not on the shared target.
        let xml = "<r><c><a/></c></r>";
        let f = frags("r.(a*|c)", xml);
        assert_eq!(f, vec!["<r><c><a></a></c></r>", "<c><a></a></c>"]);
        // And `a*.b` does not allow an extra a after b.
        let xml2 = "<r><b><a/></b></r>";
        assert_eq!(frags("r.a*.b", xml2), vec!["<b><a></a></b>"]);
    }

    #[test]
    fn root_selected_by_nullable_queries() {
        let doc = Document::parse_str("<r/>").unwrap();
        let e = TreeNfaEvaluator::new(&doc);
        assert_eq!(e.evaluate(&"%".parse().unwrap()), vec![NodeId::ROOT]);
        let star = e.evaluate(&"_*".parse().unwrap());
        assert!(star.contains(&NodeId::ROOT));
    }

    #[test]
    fn qualifier_on_nullable_expression() {
        // `%[x]` selects the root iff it has an x somewhere… precisely: iff
        // eval(x, {root}) ≠ ∅, i.e. an x child.
        let has = Document::parse_str("<x/>").unwrap();
        let hasnt = Document::parse_str("<y/>").unwrap();
        let q: Rpeq = "%[x]".parse().unwrap();
        assert_eq!(TreeNfaEvaluator::new(&has).evaluate(&q), vec![NodeId::ROOT]);
        assert!(TreeNfaEvaluator::new(&hasnt).evaluate(&q).is_empty());
    }
}
