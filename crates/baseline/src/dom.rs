//! In-memory set-semantics evaluation (the Saxon stand-in and test oracle).
//!
//! Implements the normative semantics of DESIGN.md §8 directly over the
//! materialized [`Document`] tree:
//!
//! ```text
//! eval(ε, S)        = S
//! eval(l, S)        = children of S with matching label
//! eval(l+, S)       = least fixpoint of chains of l-children
//! eval(l*, S)       = S ∪ eval(l+, S)
//! eval(E?, S)       = S ∪ eval(E, S)
//! eval(E1|E2, S)    = eval(E1, S) ∪ eval(E2, S)
//! eval(E1.E2, S)    = eval(E2, eval(E1, S))
//! eval(E1[E2], S)   = { n ∈ eval(E1, S) | eval(E2, {n}) ≠ ∅ }
//! ```
//!
//! Node sets are kept as sorted `Vec<NodeId>` (node ids are document order),
//! so results come out in document order for free.

use spex_query::{Label, Rpeq};
use spex_xml::{Document, NodeId, NodeKind};

/// Set-semantics evaluator over a materialized document.
pub struct DomEvaluator<'d> {
    doc: &'d Document,
}

impl<'d> DomEvaluator<'d> {
    /// Wrap a document.
    pub fn new(doc: &'d Document) -> Self {
        DomEvaluator { doc }
    }

    /// Evaluate `query` from the document root; the result is the selected
    /// nodes in document order.
    pub fn evaluate(&self, query: &Rpeq) -> Vec<NodeId> {
        self.eval(query, &[NodeId::ROOT])
    }

    /// Evaluate and serialize each selected node's subtree (the same
    /// fragments the SPEX output transducer emits).
    pub fn evaluate_fragments(&self, query: &Rpeq) -> Vec<String> {
        self.evaluate(query)
            .into_iter()
            .map(|n| self.doc.subtree_string(n))
            .collect()
    }

    fn eval(&self, query: &Rpeq, context: &[NodeId]) -> Vec<NodeId> {
        match query {
            Rpeq::Empty => context.to_vec(),
            Rpeq::Step(l) => self.children_matching(context, l),
            Rpeq::Plus(l) => self.closure(context, l),
            Rpeq::Star(l) => {
                let mut out = context.to_vec();
                merge_into(&mut out, self.closure(context, l));
                out
            }
            Rpeq::Optional(e) => {
                let mut out = context.to_vec();
                merge_into(&mut out, self.eval(e, context));
                out
            }
            Rpeq::Union(a, b) => {
                let mut out = self.eval(a, context);
                merge_into(&mut out, self.eval(b, context));
                out
            }
            Rpeq::Concat(a, b) => {
                let mid = self.eval(a, context);
                self.eval(b, &mid)
            }
            Rpeq::Following(l) => self.following(context, l),
            Rpeq::Preceding(l) => self.preceding(context, l),
            Rpeq::Qualified(e, q) => {
                let selected = self.eval(e, context);
                selected
                    .into_iter()
                    .filter(|n| !self.eval(q, &[*n]).is_empty())
                    .collect()
            }
        }
    }

    fn children_matching(&self, context: &[NodeId], label: &Label) -> Vec<NodeId> {
        let mut out = Vec::new();
        for n in context {
            for c in self.doc.child_elements(*n) {
                if self.label_matches(label, c) {
                    out.push(c);
                }
            }
        }
        dedup_sorted(&mut out);
        out
    }

    /// Chains of `label`-children: the least fixpoint of one more step.
    fn closure(&self, context: &[NodeId], label: &Label) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        let mut frontier = self.children_matching(context, label);
        while !frontier.is_empty() {
            let next = self.children_matching(&frontier, label);
            merge_into(&mut out, frontier);
            frontier = next.into_iter().filter(|n| !out.contains(n)).collect();
        }
        out
    }

    /// `following::l`: elements labelled `l` that begin after some context
    /// node ends — i.e. with a larger node id and not a descendant.
    fn following(&self, context: &[NodeId], label: &Label) -> Vec<NodeId> {
        let mut out = Vec::new();
        for n in self.doc.elements() {
            if !self.label_matches(label, n) {
                continue;
            }
            let after_some = context.iter().any(|s| n > *s && !self.is_descendant(n, *s));
            if after_some {
                out.push(n);
            }
        }
        dedup_sorted(&mut out);
        out
    }

    /// `preceding::l`: elements labelled `l` that end before some context
    /// node begins — a smaller node id and not an ancestor of the context.
    fn preceding(&self, context: &[NodeId], label: &Label) -> Vec<NodeId> {
        let mut out = Vec::new();
        for n in self.doc.elements() {
            if !self.label_matches(label, n) {
                continue;
            }
            let before_some = context.iter().any(|s| n < *s && !self.is_descendant(*s, n));
            if before_some {
                out.push(n);
            }
        }
        dedup_sorted(&mut out);
        out
    }

    fn is_descendant(&self, node: NodeId, ancestor: NodeId) -> bool {
        let mut cur = node;
        while let Some(p) = self.doc.parent(cur) {
            if p == ancestor {
                return true;
            }
            cur = p;
        }
        false
    }

    fn label_matches(&self, label: &Label, node: NodeId) -> bool {
        match self.doc.kind(node) {
            NodeKind::Element { name, .. } => label.matches(name),
            _ => false,
        }
    }
}

/// Merge `extra` into the sorted, deduplicated `out`.
fn merge_into(out: &mut Vec<NodeId>, extra: Vec<NodeId>) {
    out.extend(extra);
    dedup_sorted(out);
}

fn dedup_sorted(v: &mut Vec<NodeId>) {
    v.sort_unstable();
    v.dedup();
}

/// Convenience: parse, materialize, evaluate, serialize.
pub fn evaluate_str(query: &str, xml: &str) -> Result<Vec<String>, String> {
    let q: Rpeq = query.parse().map_err(|e| format!("{e}"))?;
    let doc = Document::parse_str(xml).map_err(|e| format!("{e}"))?;
    Ok(DomEvaluator::new(&doc).evaluate_fragments(&q))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    fn frags(query: &str, xml: &str) -> Vec<String> {
        evaluate_str(query, xml).unwrap()
    }

    #[test]
    fn paper_examples() {
        assert_eq!(frags("a.c", FIG1), vec!["<c></c>"]);
        assert_eq!(frags("a+.c+", FIG1), vec!["<c></c>", "<c></c>"]);
        assert_eq!(frags("_*.a[b].c", FIG1), vec!["<c></c>"]);
    }

    #[test]
    fn closure_chains_only() {
        // b is reachable from root only through a.a — `a+.b` needs the chain.
        let xml = "<a><a><b/></a><x><b/></x></a>";
        assert_eq!(frags("a+.b", xml), vec!["<b></b>"]);
        // `_*.b` sees both.
        assert_eq!(frags("_*.b", xml).len(), 2);
    }

    #[test]
    fn document_order_output() {
        let xml = "<r><z id=\"1\"/><a><z id=\"2\"/></a><z id=\"3\"/></r>";
        let f = frags("_*.z", xml);
        assert_eq!(
            f,
            vec![
                r#"<z id="1"></z>"#,
                r#"<z id="2"></z>"#,
                r#"<z id="3"></z>"#
            ]
        );
    }

    #[test]
    fn qualifier_filters() {
        let xml = "<r><p><q/></p><p/></r>";
        assert_eq!(frags("r.p[q]", xml), vec!["<p><q></q></p>"]);
        assert_eq!(frags("r.p[nope]", xml), Vec::<String>::new());
    }

    #[test]
    fn epsilon_and_star_include_context() {
        let xml = "<r><x/></r>";
        let doc = Document::parse_str(xml).unwrap();
        let e = DomEvaluator::new(&doc);
        assert_eq!(e.evaluate(&"%".parse().unwrap()), vec![NodeId::ROOT]);
        // `_*` includes the virtual root itself.
        let star = e.evaluate(&"_*".parse().unwrap());
        assert!(star.contains(&NodeId::ROOT));
        assert_eq!(star.len(), 3); // root, r, x
    }

    #[test]
    fn union_dedup() {
        let xml = "<r><x/></r>";
        assert_eq!(frags("r.(x|x)", xml), vec!["<x></x>"]);
        assert_eq!(frags("(r|r).x", xml), vec!["<x></x>"]);
    }

    #[test]
    fn no_duplicate_via_multiple_paths() {
        // `_*._` must select each element once even though `_*` reaches a
        // node's parent in several ways.
        let xml = "<r><x><y/></x></r>";
        let f = frags("_*._", xml);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn text_nodes_never_selected() {
        let xml = "<r>text<x/>more</r>";
        assert_eq!(frags("_*._", xml).len(), 2); // r and x only
    }
}
