//! # spex-baseline — the processors SPEX is evaluated against
//!
//! The paper's evaluation (§VI) compares the SPEX prototype with two
//! in-memory regular-path-expression processors — the Saxon XSLT processor
//! and Fxgrep, "an evaluator for regular tree expressions" — and its related
//! work (§VIII) discusses the streaming automata of X-Scan and
//! XFilter/YFilter. Neither tool is available (or would be meaningful) as a
//! dependency here, so this crate implements a faithful stand-in for each
//! *algorithmic class* (the substitutions are tabulated in DESIGN.md §5):
//!
//! * [`dom`] — **Saxon stand-in**: materialize the document tree, then
//!   evaluate the rpeq by set semantics, node-set by node-set. Memory is
//!   Θ(document); results are exact for the full rpeq language. This is also
//!   the *oracle* the SPEX engine is property-tested against.
//! * [`tree_nfa`] — **Fxgrep stand-in**: compile the rpeq's path structure
//!   into a Glushkov position NFA and run it down the materialized tree,
//!   evaluating qualifiers by recursive sub-automaton runs. A genuinely
//!   different algorithm with the same in-memory profile.
//! * [`stream_nfa`] — **X-Scan stand-in**: a streaming NFA over open/close
//!   events with a stack of state sets; selects nodes for qualifier-free
//!   rpeq in one pass and constant memory per depth level. Qualifiers are
//!   rejected ("their relations to the other expressions are left to a host
//!   application", §VIII).
//! * [`filter`] — **XFilter/YFilter stand-in**: many queries, one stream,
//!   boolean document-filtering semantics for selective dissemination of
//!   information.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod filter;
pub mod stream_nfa;
pub mod tree_nfa;

pub use dom::DomEvaluator;
pub use filter::FilterSet;
pub use stream_nfa::StreamNfa;
pub use tree_nfa::TreeNfaEvaluator;
