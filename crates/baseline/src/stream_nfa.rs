//! Streaming NFA node selection (the X-Scan stand-in).
//!
//! X-Scan (Ives/Levy/Weld, cited as \[2\] in the paper) "compiles regular path
//! expressions into deterministic finite automata" and runs them over the
//! stream with "stacks for keeping track of previous states". This module
//! implements that algorithmic class: the qualifier-free rpeq fragment is
//! compiled to an NFA over child steps; evaluation keeps a stack of state
//! sets, one per open element — push the successor set on `<l>`, pop on
//! `</l>`, select the node when the accepting state is reached.
//!
//! Qualifiers are *not* supported — in X-Scan "some expressions can be
//! considered qualifiers, but their relations to the other expressions are
//! left to a host application" (§VIII). This is precisely the gap SPEX
//! closes; the constructor rejects qualified queries so benchmarks cannot
//! accidentally compare apples to oranges.

use spex_query::{Label, Rpeq};
use spex_xml::XmlEvent;

#[derive(Debug, Clone)]
struct StepTrans {
    label: Label,
    to: usize,
}

/// A compiled streaming automaton. See the [module documentation](self).
#[derive(Debug)]
pub struct StreamNfa {
    /// step transitions per state.
    steps: Vec<Vec<StepTrans>>,
    /// ε-transitions per state.
    eps: Vec<Vec<usize>>,
    start: usize,
    accept: usize,
}

/// Error: the query is outside the supported fragment (it uses qualifiers
/// or the following/preceding axis extensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualifiersUnsupported;

impl std::fmt::Display for QualifiersUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the streaming-NFA baseline supports only qualifier-free core regular path \
             expressions (no qualifiers, no following/preceding)"
        )
    }
}

impl std::error::Error for QualifiersUnsupported {}

impl StreamNfa {
    /// Compile a qualifier-free query.
    pub fn compile(query: &Rpeq) -> Result<StreamNfa, QualifiersUnsupported> {
        let mut unsupported = query.has_qualifiers();
        query.visit(&mut |n| {
            if matches!(n, Rpeq::Following(_) | Rpeq::Preceding(_)) {
                unsupported = true;
            }
        });
        if unsupported {
            return Err(QualifiersUnsupported);
        }
        let mut nfa = StreamNfa {
            steps: vec![],
            eps: vec![],
            start: 0,
            accept: 0,
        };
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        build(&mut nfa, query, start, accept);
        Ok(nfa)
    }

    fn new_state(&mut self) -> usize {
        self.steps.push(Vec::new());
        self.eps.push(Vec::new());
        self.steps.len() - 1
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.steps.len()
    }

    /// The ε-closed initial state set (the set active at the virtual root).
    pub fn initial_states(&self) -> Vec<bool> {
        let mut init = vec![false; self.states()];
        init[self.start] = true;
        self.closure(&mut init);
        init
    }

    /// Advance over one child step and ε-close the result.
    pub fn advance_closed(&self, states: &[bool], name: &str) -> Vec<bool> {
        let mut next = self.advance(states, name);
        self.closure(&mut next);
        next
    }

    /// Does the state set contain the accepting state?
    pub fn accepts(&self, states: &[bool]) -> bool {
        states.get(self.accept).copied().unwrap_or(false)
    }

    fn closure(&self, states: &mut [bool]) {
        let mut work: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| i)
            .collect();
        while let Some(s) = work.pop() {
            for t in &self.eps[s] {
                if !states[*t] {
                    states[*t] = true;
                    work.push(*t);
                }
            }
        }
    }

    fn advance(&self, states: &[bool], name: &str) -> Vec<bool> {
        let mut next = vec![false; self.states()];
        for (s, active) in states.iter().enumerate() {
            if !active {
                continue;
            }
            for t in &self.steps[s] {
                if t.label.matches(name) {
                    next[t.to] = true;
                }
            }
        }
        next
    }

    /// Run over a stream of events; returns the tick indices (0-based event
    /// positions, `StartDocument` = 0) at which selected elements open —
    /// the same node identity the SPEX `SpanCollector` reports.
    pub fn select<'a>(&self, events: impl IntoIterator<Item = &'a XmlEvent>) -> Vec<u64> {
        let mut selected = Vec::new();
        let mut stack: Vec<Vec<bool>> = Vec::new();
        for (tick, ev) in events.into_iter().enumerate() {
            match ev {
                XmlEvent::StartDocument => {
                    let mut init = vec![false; self.states()];
                    init[self.start] = true;
                    self.closure(&mut init);
                    stack.push(init);
                }
                XmlEvent::EndDocument => {
                    stack.pop();
                }
                XmlEvent::StartElement { name, .. } => {
                    let top = stack.last().cloned().unwrap_or_else(|| {
                        let mut init = vec![false; self.states()];
                        init[self.start] = true;
                        init
                    });
                    let mut next = self.advance(&top, name);
                    self.closure(&mut next);
                    if next[self.accept] {
                        selected.push(tick as u64);
                    }
                    stack.push(next);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        selected
    }

    /// Boolean match: does the stream contain at least one selected node?
    /// Early-exits on the first match (the SDI filtering mode).
    pub fn matches<'a>(&self, events: impl IntoIterator<Item = &'a XmlEvent>) -> bool {
        let mut stack: Vec<Vec<bool>> = Vec::new();
        for ev in events {
            match ev {
                XmlEvent::StartDocument => {
                    let mut init = vec![false; self.states()];
                    init[self.start] = true;
                    self.closure(&mut init);
                    stack.push(init);
                }
                XmlEvent::EndDocument => {
                    stack.pop();
                }
                XmlEvent::StartElement { name, .. } => {
                    let top = match stack.last() {
                        Some(t) => t.clone(),
                        None => {
                            let mut init = vec![false; self.states()];
                            init[self.start] = true;
                            init
                        }
                    };
                    let mut next = self.advance(&top, name);
                    self.closure(&mut next);
                    if next[self.accept] {
                        return true;
                    }
                    stack.push(next);
                }
                XmlEvent::EndElement { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        false
    }
}

fn build(nfa: &mut StreamNfa, expr: &Rpeq, from: usize, to: usize) {
    match expr {
        Rpeq::Empty => nfa.eps[from].push(to),
        Rpeq::Step(l) => nfa.steps[from].push(StepTrans {
            label: l.clone(),
            to,
        }),
        Rpeq::Plus(l) => {
            let m = nfa.new_state();
            nfa.steps[from].push(StepTrans {
                label: l.clone(),
                to: m,
            });
            nfa.steps[m].push(StepTrans {
                label: l.clone(),
                to: m,
            });
            nfa.eps[m].push(to);
        }
        Rpeq::Star(l) => {
            let m = nfa.new_state();
            nfa.eps[from].push(m);
            nfa.steps[m].push(StepTrans {
                label: l.clone(),
                to: m,
            });
            nfa.eps[m].push(to);
        }
        Rpeq::Optional(e) => {
            nfa.eps[from].push(to);
            build(nfa, e, from, to);
        }
        Rpeq::Union(a, b) => {
            build(nfa, a, from, to);
            build(nfa, b, from, to);
        }
        Rpeq::Concat(a, b) => {
            let mid = nfa.new_state();
            build(nfa, a, from, mid);
            build(nfa, b, mid, to);
        }
        Rpeq::Qualified(..) | Rpeq::Following(..) | Rpeq::Preceding(..) => {
            unreachable!("rejected by compile")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spex_xml::reader::parse_events;

    const FIG1: &str = "<a><a><c/></a><b/><c/></a>";

    fn select(query: &str, xml: &str) -> Vec<u64> {
        let q: Rpeq = query.parse().unwrap();
        let nfa = StreamNfa::compile(&q).unwrap();
        let events = parse_events(xml).unwrap();
        nfa.select(&events)
    }

    #[test]
    fn child_chain_selection() {
        // a.c on Fig. 1: the second <c> opens at tick 8.
        assert_eq!(select("a.c", FIG1), vec![8]);
    }

    #[test]
    fn closure_selection() {
        // a+.c+ selects both <c> elements (ticks 3 and 8).
        assert_eq!(select("a+.c+", FIG1), vec![3, 8]);
    }

    #[test]
    fn descendant_selection() {
        assert_eq!(select("_*.c", FIG1), vec![3, 8]);
        assert_eq!(select("_*._", FIG1), vec![1, 2, 3, 6, 8]);
    }

    #[test]
    fn qualifiers_rejected() {
        let q: Rpeq = "a[b]".parse().unwrap();
        assert!(matches!(StreamNfa::compile(&q), Err(QualifiersUnsupported)));
    }

    #[test]
    fn boolean_matching() {
        let q: Rpeq = "_*.b".parse().unwrap();
        let nfa = StreamNfa::compile(&q).unwrap();
        assert!(nfa.matches(&parse_events(FIG1).unwrap()));
        assert!(!nfa.matches(&parse_events("<a><c/></a>").unwrap()));
    }

    #[test]
    fn agrees_with_dom_on_qualifier_free_queries() {
        let xml = "<r><a><b/><c><b/></c></a><b/><d><a><b/></a></d></r>";
        let events = parse_events(xml).unwrap();
        let doc = spex_xml::Document::from_events(events.clone()).unwrap();
        for q in [
            "_",
            "_*._",
            "r.a.b",
            "_*.b",
            "r._.b",
            "r.(a|d).b",
            "r.a?.b",
            "r.a*.b",
        ] {
            let query: Rpeq = q.parse().unwrap();
            let dom: Vec<String> = crate::dom::DomEvaluator::new(&doc).evaluate_fragments(&query);
            let nfa = StreamNfa::compile(&query).unwrap();
            let picked = nfa.select(&events);
            assert_eq!(picked.len(), dom.len(), "count mismatch on {q}");
        }
    }

    #[test]
    fn stack_depth_bounded_by_document_depth() {
        // Memory profile check: the stack is one entry per open element.
        let xml = "<a><b><c><d/></c></b></a>";
        let q: Rpeq = "_*".parse().unwrap();
        let nfa = StreamNfa::compile(&q).unwrap();
        // (Indirect: selection works and nothing panics on deep nesting.)
        let events = parse_events(xml).unwrap();
        assert_eq!(nfa.select(&events).len(), 4);
    }
}
